"""FlowQL tokenizer.

A small regex-driven lexer.  The only subtlety is values: IPv4 literals
with optional prefix masks (``10.0.0.0/8``) must win over plain numbers,
and site paths (``region1/router1``) are identifiers that may contain
slashes, dots, and dashes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import FlowQLSyntaxError

KEYWORDS = {
    "subscribe",
    "select",
    "from",
    "vs",
    "at",
    "where",
    "by",
    "and",
    "time",
    "all",
    "limit",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<IP>\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}(?:/\d{1,2})?)
  | (?P<NUMBER>\d+(?:\.\d+)?)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_./-]*)
  | (?P<STRING>'[^']*')
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<EQUALS>=)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Tokenize FlowQL text; raises on any unrecognized character."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise FlowQLSyntaxError(
                f"unexpected character {text[position]!r} at offset "
                f"{position}",
                position=position,
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "IDENT" and value.lower() in KEYWORDS:
            tokens.append(Token("KEYWORD", value.lower(), position))
        elif kind == "STRING":
            tokens.append(Token("IDENT", value[1:-1], position))
        elif kind != "WS":
            tokens.append(Token(kind, value, position))
        position = match.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens

"""FlowQL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

#: Operators taking no arguments.
NO_ARG_OPERATORS = {"query", "total", "drilldown"}
#: Operators with their required argument counts.
OPERATOR_ARITY = {
    "query": 0,
    "total": 0,
    "drilldown": 0,
    "topk": 1,
    "above": 1,
    "hhh": 1,
    "groupby": 2,
}


@dataclass(frozen=True)
class OpCall:
    """The SELECT clause: operator name plus arguments."""

    name: str
    args: List[Union[float, str]] = field(default_factory=list)


@dataclass(frozen=True)
class TimeSpec:
    """A FROM/VS time period; ``None`` bounds mean "all" on that side."""

    start: Optional[float]
    end: Optional[float]

    @staticmethod
    def all() -> "TimeSpec":
        """The unbounded period (keyword ALL)."""
        return TimeSpec(start=None, end=None)


@dataclass(frozen=True)
class Restriction:
    """One WHERE term: ``feature = value`` with an optional mask level."""

    feature: str
    value: str
    mask: Optional[int]


@dataclass(frozen=True)
class FlowQLQuery:
    """A fully parsed FlowQL query.

    ``subscribe`` marks the standing-query form (``SUBSCRIBE SELECT
    ...``): the same query, but registered with the planner's
    :class:`~repro.query.subscriptions.SubscriptionRegistry` and
    delta-maintained across epoch closes instead of executed once.
    """

    select: OpCall
    time: TimeSpec
    vs_time: Optional[TimeSpec] = None
    sites: List[str] = field(default_factory=list)
    where: List[Restriction] = field(default_factory=list)
    metric: str = "bytes"
    limit: Optional[int] = None
    subscribe: bool = False

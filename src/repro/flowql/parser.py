"""FlowQL recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import FlowQLSyntaxError
from repro.flowql.ast import (
    OPERATOR_ARITY,
    FlowQLQuery,
    OpCall,
    Restriction,
    TimeSpec,
)
from repro.flowql.lexer import Token, tokenize

_METRICS = {"bytes", "packets", "flows"}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers ----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = f"{kind}{f' {text!r}' if text else ''}"
            raise FlowQLSyntaxError(
                f"expected {wanted}, got {token.kind} {token.text!r} at "
                f"offset {token.position}",
                position=token.position,
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token.kind == "KEYWORD" and token.text == word:
            self.advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------

    def parse_query(self) -> FlowQLQuery:
        subscribe = self.accept_keyword("subscribe")
        self.expect("KEYWORD", "select")
        select = self.parse_op_call()
        self.expect("KEYWORD", "from")
        time = self.parse_time_spec()
        vs_time = None
        if self.accept_keyword("vs"):
            vs_time = self.parse_time_spec()
        sites: List[str] = []
        if self.accept_keyword("at"):
            sites = self.parse_site_list()
        where: List[Restriction] = []
        if self.accept_keyword("where"):
            where = self.parse_restrictions()
        metric = "bytes"
        if self.accept_keyword("by"):
            token = self.expect("IDENT")
            if token.text not in _METRICS:
                raise FlowQLSyntaxError(
                    f"unknown metric {token.text!r}; choose from "
                    f"{sorted(_METRICS)}",
                    position=token.position,
                )
            metric = token.text
        limit = None
        if self.accept_keyword("limit"):
            token = self.expect("NUMBER")
            limit = int(float(token.text))
            if limit < 1:
                raise FlowQLSyntaxError(
                    f"LIMIT must be >= 1, got {limit}",
                    position=token.position,
                )
        self.expect("EOF")
        return FlowQLQuery(
            select=select,
            time=time,
            vs_time=vs_time,
            sites=sites,
            where=where,
            metric=metric,
            limit=limit,
            subscribe=subscribe,
        )

    def parse_op_call(self) -> OpCall:
        token = self.expect("IDENT")
        name = token.text.lower()
        if name not in OPERATOR_ARITY:
            raise FlowQLSyntaxError(
                f"unknown operator {token.text!r}; known: "
                f"{sorted(OPERATOR_ARITY)}",
                position=token.position,
            )
        args: List[Union[float, str]] = []
        if self.peek().kind == "LPAREN":
            self.advance()
            while self.peek().kind != "RPAREN":
                arg = self.advance()
                if arg.kind == "NUMBER":
                    args.append(float(arg.text))
                elif arg.kind in ("IDENT", "IP"):
                    args.append(arg.text)
                else:
                    raise FlowQLSyntaxError(
                        f"bad operator argument {arg.text!r} at offset "
                        f"{arg.position}",
                        position=arg.position,
                    )
                if self.peek().kind == "COMMA":
                    self.advance()
            self.expect("RPAREN")
        arity = OPERATOR_ARITY[name]
        if len(args) != arity:
            raise FlowQLSyntaxError(
                f"operator {name!r} takes {arity} argument(s), got "
                f"{len(args)}",
                position=token.position,
            )
        return OpCall(name=name, args=args)

    def parse_time_spec(self) -> TimeSpec:
        if self.accept_keyword("all"):
            return TimeSpec.all()
        self.expect("KEYWORD", "time")
        self.expect("LPAREN")
        start = float(self.expect("NUMBER").text)
        self.expect("COMMA")
        end = float(self.expect("NUMBER").text)
        self.expect("RPAREN")
        if end <= start:
            raise FlowQLSyntaxError(
                f"empty time period TIME({start:g}, {end:g})"
            )
        return TimeSpec(start=start, end=end)

    def parse_site_list(self) -> List[str]:
        sites = [self.expect("IDENT").text]
        while self.peek().kind == "COMMA":
            self.advance()
            sites.append(self.expect("IDENT").text)
        return sites

    def parse_restrictions(self) -> List[Restriction]:
        restrictions = [self.parse_restriction()]
        while self.accept_keyword("and"):
            restrictions.append(self.parse_restriction())
        return restrictions

    def parse_restriction(self) -> Restriction:
        feature = self.expect("IDENT").text
        self.expect("EQUALS")
        token = self.advance()
        if token.kind == "IP":
            if "/" in token.text:
                address, mask_text = token.text.split("/")
                return Restriction(
                    feature=feature, value=address, mask=int(mask_text)
                )
            return Restriction(feature=feature, value=token.text, mask=None)
        if token.kind in ("NUMBER", "IDENT"):
            return Restriction(feature=feature, value=token.text, mask=None)
        raise FlowQLSyntaxError(
            f"bad restriction value {token.text!r} at offset "
            f"{token.position}",
            position=token.position,
        )


def parse(text: str) -> FlowQLQuery:
    """Parse FlowQL text into a :class:`FlowQLQuery`.

    Accepts both the one-shot form (``SELECT ...``) and the standing
    form (``SUBSCRIBE SELECT ...``); the latter sets
    :attr:`FlowQLQuery.subscribe`.
    """
    return _Parser(tokenize(text)).parse_query()

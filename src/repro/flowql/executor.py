"""FlowQL planning/execution split.

Execution is factored into two layers so that *any* component able to
assemble a Flowtree for a query window can answer FlowQL:

* :func:`compile_pattern` / :func:`apply_operator` — the pure
  "plan tail": compile the WHERE clause into a generalized
  :class:`FlowKey` pattern and map the SELECT operator onto the
  corresponding Table II tree operator (including the LIMIT clause).
* :class:`FlowQLExecutor` — the cloud-only front: the FROM/AT clauses
  select FlowDB entries, Merge + Compress collapses them into one tree
  (Diff for ``VS``), then the plan tail runs.

The federated planner (:mod:`repro.query`) reuses the same plan tail
over trees assembled from hierarchy stores, which is what keeps
planner-routed answers node-for-node identical to the cloud path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import FlowQLPlanningError
from repro.flowdb.db import FlowDB
from repro.flows.flowkey import FlowKey
from repro.flows.records import Score
from repro.flows.tree import Flowtree
from repro.flowql.ast import FlowQLQuery, Restriction, TimeSpec
from repro.flowql.parser import parse


@dataclass
class FlowQLResult:
    """The outcome of one FlowQL query.

    Row-producing operators fill ``rows`` (flow text plus the three
    score counters); scalar operators (QUERY, TOTAL) fill ``scalar``
    with a :class:`~repro.flows.records.Score`.
    """

    operator: str
    columns: Tuple[str, ...] = ("flow", "packets", "bytes", "flows")
    rows: List[Tuple[str, int, int, int]] = field(default_factory=list)
    scalar: Optional[Score] = None

    def __len__(self) -> int:
        return len(self.rows)

    def copy(self) -> "FlowQLResult":
        """An independent copy (cached results hand out copies so a
        caller mutating ``rows`` cannot poison the cache)."""
        return FlowQLResult(
            operator=self.operator,
            columns=self.columns,
            rows=list(self.rows),
            scalar=self.scalar,
        )

    # -- wire schema ---------------------------------------------------------

    def to_wire(self) -> dict:
        """The result's JSON-safe wire body (see :mod:`repro.serve.wire`)."""
        return {
            "operator": self.operator,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "scalar": (
                {
                    "packets": self.scalar.packets,
                    "bytes": self.scalar.bytes,
                    "flows": self.scalar.flows,
                }
                if self.scalar is not None
                else None
            ),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "FlowQLResult":
        """Rebuild a result from its wire body (tuple shapes restored,
        so a round-tripped result compares equal field-for-field)."""
        from repro.errors import WireSchemaError

        try:
            scalar = data.get("scalar")
            return cls(
                operator=data["operator"],
                columns=tuple(data["columns"]),
                rows=[
                    (row[0], int(row[1]), int(row[2]), int(row[3]))
                    for row in data.get("rows", [])
                ],
                scalar=(
                    Score(
                        packets=int(scalar["packets"]),
                        bytes=int(scalar["bytes"]),
                        flows=int(scalar["flows"]),
                    )
                    if scalar is not None
                    else None
                ),
            )
        except (KeyError, TypeError, IndexError, ValueError) as exc:
            raise WireSchemaError(f"bad FlowQLResult on the wire: {exc}")


def compile_pattern(
    tree: Flowtree, restrictions: List[Restriction]
) -> Optional[FlowKey]:
    """Compile WHERE restrictions into a generalized key pattern."""
    if not restrictions:
        return None
    schema = tree.schema
    values = [0] * len(schema)
    levels = [0] * len(schema)
    for restriction in restrictions:
        index = schema.index_of(restriction.feature)
        feature = schema.features[index]
        value = feature.parse(restriction.value)
        level = (
            restriction.mask
            if restriction.mask is not None
            else feature.max_level
        )
        values[index] = feature.mask(value, level)
        levels[index] = level
    return FlowKey(schema, tuple(values), tuple(levels))


def _rows(
    operator: str, pairs: List[Tuple[FlowKey, Score]]
) -> FlowQLResult:
    return FlowQLResult(
        operator=operator,
        rows=[
            (str(key), score.packets, score.bytes, score.flows)
            for key, score in pairs
        ],
    )


def apply_operator(tree: Flowtree, query: FlowQLQuery) -> FlowQLResult:
    """Run a parsed query's SELECT operator against an assembled tree.

    This is the source-independent tail of FlowQL execution: the caller
    has already merged (and, for ``VS``, diffed) the relevant summaries
    into ``tree``; this function applies the WHERE pattern, the Table II
    operator, and the LIMIT clause.
    """
    pattern = compile_pattern(tree, query.where)
    operator = query.select.name
    metric = query.metric
    args = query.select.args
    result: Optional[FlowQLResult] = None

    if operator == "total":
        result = FlowQLResult(operator=operator, scalar=tree.total())

    elif operator == "query":
        if pattern is None:
            raise FlowQLPlanningError(
                "QUERY needs a WHERE clause naming the flow"
            )
        result = FlowQLResult(operator=operator, scalar=tree.query(pattern))

    elif operator == "drilldown":
        if pattern is None:
            raise FlowQLPlanningError(
                "DRILLDOWN needs a WHERE clause naming the flow"
            )
        depth = tree.policy.nearest_depth_at_or_above(pattern.levels)
        node_key = tree.policy.key_at(pattern, depth)
        pairs = tree.drilldown(node_key)
        result = _rows(operator, pairs)

    elif operator == "topk":
        pairs = tree.top_k(int(args[0]), metric=metric)
        if pattern is not None:
            pairs = [
                (key, score)
                for key, score in tree.top_k(
                    max(int(args[0]) * 16, 128), metric=metric
                )
                if pattern.contains(key)
            ][: int(args[0])]
        result = _rows(operator, pairs)

    elif operator == "above":
        pairs = tree.above_x(int(args[0]), metric=metric)
        if pattern is not None:
            pairs = [
                (key, score) for key, score in pairs if pattern.contains(key)
            ]
        result = _rows(operator, pairs)

    elif operator == "hhh":
        threshold = float(args[0])
        if threshold < 1.0:
            threshold = threshold * max(1, tree.total().metric(metric))
        results = tree.hhh(int(threshold), metric=metric)
        pairs = [(r.key, r.score) for r in results]
        if pattern is not None:
            pairs = [
                (key, score) for key, score in pairs if pattern.contains(key)
            ]
        result = _rows(operator, pairs)

    elif operator == "groupby":
        feature = str(args[0])
        level = int(float(args[1]))
        pairs = tree.aggregate_by_feature(
            feature, level, metric=metric, within=pattern
        )
        result = _rows(operator, pairs)

    if result is None:
        raise FlowQLPlanningError(f"unhandled operator {operator!r}")
    if query.limit is not None and result.rows:
        result.rows = result.rows[: query.limit]
    return result


class FlowQLExecutor:
    """Executes FlowQL text against one FlowDB instance."""

    def __init__(self, db: FlowDB) -> None:
        self.db = db
        self.queries_executed = 0

    # -- planning helpers ---------------------------------------------------

    def _pattern(
        self, tree: Flowtree, restrictions: List[Restriction]
    ) -> Optional[FlowKey]:
        """Compile WHERE restrictions into a generalized key pattern."""
        return compile_pattern(tree, restrictions)

    def _merged(
        self, query: FlowQLQuery, spec: TimeSpec
    ) -> Flowtree:
        return self.db.merged_tree(
            locations=query.sites or None,
            start=spec.start,
            end=spec.end,
        )

    # -- execution ------------------------------------------------------------

    def execute(self, text: str) -> FlowQLResult:
        """Parse and run one FlowQL query."""
        return self.execute_query(parse(text))

    def execute_query(self, query: FlowQLQuery) -> FlowQLResult:
        """Run a parsed FlowQL query."""
        self.queries_executed += 1
        tree = self._merged(query, query.time)
        if query.vs_time is not None:
            tree = tree.diff(self._merged(query, query.vs_time))
        return apply_operator(tree, query)

    @staticmethod
    def _rows(
        operator: str, pairs: List[Tuple[FlowKey, Score]]
    ) -> FlowQLResult:
        return _rows(operator, pairs)

"""FlowQL planner/executor against a FlowDB.

Planning is thin by design: the FROM/AT clauses select FlowDB entries,
Merge + Compress collapses them into one tree (Diff for ``VS``), the
WHERE clause compiles to a generalized :class:`FlowKey` pattern, and the
SELECT operator maps onto the corresponding Table II tree operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import FlowQLPlanningError
from repro.flowdb.db import FlowDB
from repro.flows.flowkey import FlowKey
from repro.flows.records import Score
from repro.flows.tree import Flowtree
from repro.flowql.ast import FlowQLQuery, Restriction, TimeSpec
from repro.flowql.parser import parse


@dataclass
class FlowQLResult:
    """The outcome of one FlowQL query.

    Row-producing operators fill ``rows`` (flow text plus the three
    score counters); scalar operators (QUERY, TOTAL) fill ``scalar``
    with a :class:`~repro.flows.records.Score`.
    """

    operator: str
    columns: Tuple[str, ...] = ("flow", "packets", "bytes", "flows")
    rows: List[Tuple[str, int, int, int]] = field(default_factory=list)
    scalar: Optional[Score] = None

    def __len__(self) -> int:
        return len(self.rows)


class FlowQLExecutor:
    """Executes FlowQL text against one FlowDB instance."""

    def __init__(self, db: FlowDB) -> None:
        self.db = db
        self.queries_executed = 0

    # -- planning helpers ---------------------------------------------------

    def _pattern(
        self, tree: Flowtree, restrictions: List[Restriction]
    ) -> Optional[FlowKey]:
        """Compile WHERE restrictions into a generalized key pattern."""
        if not restrictions:
            return None
        schema = tree.schema
        values = [0] * len(schema)
        levels = [0] * len(schema)
        for restriction in restrictions:
            index = schema.index_of(restriction.feature)
            feature = schema.features[index]
            value = feature.parse(restriction.value)
            level = (
                restriction.mask
                if restriction.mask is not None
                else feature.max_level
            )
            values[index] = feature.mask(value, level)
            levels[index] = level
        return FlowKey(schema, tuple(values), tuple(levels))

    def _merged(
        self, query: FlowQLQuery, spec: TimeSpec
    ) -> Flowtree:
        return self.db.merged_tree(
            locations=query.sites or None,
            start=spec.start,
            end=spec.end,
        )

    # -- execution ------------------------------------------------------------

    def execute(self, text: str) -> FlowQLResult:
        """Parse and run one FlowQL query."""
        return self.execute_query(parse(text))

    def execute_query(self, query: FlowQLQuery) -> FlowQLResult:
        """Run a parsed FlowQL query."""
        result = self._execute(query)
        if query.limit is not None and result.rows:
            result.rows = result.rows[: query.limit]
        return result

    def _execute(self, query: FlowQLQuery) -> FlowQLResult:
        self.queries_executed += 1
        tree = self._merged(query, query.time)
        if query.vs_time is not None:
            tree = tree.diff(self._merged(query, query.vs_time))
        pattern = self._pattern(tree, query.where)
        operator = query.select.name
        metric = query.metric
        args = query.select.args

        if operator == "total":
            return FlowQLResult(operator=operator, scalar=tree.total())

        if operator == "query":
            if pattern is None:
                raise FlowQLPlanningError(
                    "QUERY needs a WHERE clause naming the flow"
                )
            return FlowQLResult(operator=operator, scalar=tree.query(pattern))

        if operator == "drilldown":
            if pattern is None:
                raise FlowQLPlanningError(
                    "DRILLDOWN needs a WHERE clause naming the flow"
                )
            depth = tree.policy.nearest_depth_at_or_above(pattern.levels)
            node_key = tree.policy.key_at(pattern, depth)
            pairs = tree.drilldown(node_key)
            return self._rows(operator, pairs)

        if operator == "topk":
            pairs = tree.top_k(int(args[0]), metric=metric)
            if pattern is not None:
                pairs = [
                    (key, score)
                    for key, score in tree.top_k(
                        max(int(args[0]) * 16, 128), metric=metric
                    )
                    if pattern.contains(key)
                ][: int(args[0])]
            return self._rows(operator, pairs)

        if operator == "above":
            pairs = tree.above_x(int(args[0]), metric=metric)
            if pattern is not None:
                pairs = [
                    (key, score) for key, score in pairs if pattern.contains(key)
                ]
            return self._rows(operator, pairs)

        if operator == "hhh":
            threshold = float(args[0])
            if threshold < 1.0:
                threshold = threshold * max(1, tree.total().metric(metric))
            results = tree.hhh(int(threshold), metric=metric)
            pairs = [(r.key, r.score) for r in results]
            if pattern is not None:
                pairs = [
                    (key, score) for key, score in pairs if pattern.contains(key)
                ]
            return self._rows(operator, pairs)

        if operator == "groupby":
            feature = str(args[0])
            level = int(float(args[1]))
            pairs = tree.aggregate_by_feature(
                feature, level, metric=metric, within=pattern
            )
            return self._rows(operator, pairs)

        raise FlowQLPlanningError(f"unhandled operator {operator!r}")

    @staticmethod
    def _rows(
        operator: str, pairs: List[Tuple[FlowKey, Score]]
    ) -> FlowQLResult:
        return FlowQLResult(
            operator=operator,
            rows=[
                (str(key), score.packets, score.bytes, score.flows)
                for key, score in pairs
            ],
        )

"""FlowQL: the SQL-like query language over Flowtrees (Section VI).

"With FlowQL the user chooses his operator via a SELECT clause, one or
multiple time periods via a FROM clause, and the feature set via a
WHERE clause."

Grammar (case-insensitive keywords)::

    query  := SELECT op FROM timespec [VS timespec] [AT site {, site}]
              [WHERE feature = value {AND feature = value}] [BY metric]
    op     := QUERY | TOTAL | DRILLDOWN | TOPK(k) | ABOVE(x) | HHH(t)
              | GROUPBY(feature, level)
    timespec := TIME(start, end) | ALL
    value  := number | ip[/mask] | ident

``VS`` selects a second time period and answers over the *difference*
of the two summaries (the Diff operator).  ``HHH(t)`` treats ``t < 1``
as a fraction of total traffic.  Example::

    SELECT TOPK(10) FROM TIME(0, 3600)
        AT region1/router1, region2/router1
        WHERE dst_port = 443 BY bytes
"""

from repro.flowql.lexer import Token, tokenize
from repro.flowql.ast import FlowQLQuery, OpCall, Restriction, TimeSpec
from repro.flowql.parser import parse
from repro.flowql.executor import (
    FlowQLExecutor,
    FlowQLResult,
    apply_operator,
    compile_pattern,
)

__all__ = [
    "tokenize",
    "Token",
    "parse",
    "FlowQLQuery",
    "OpCall",
    "TimeSpec",
    "Restriction",
    "FlowQLExecutor",
    "FlowQLResult",
    "apply_operator",
    "compile_pattern",
]

"""Feature schemas, generalization policies, and flow keys.

A **schema** fixes the ordered feature set of a flow type — the paper's
"5-feature" flows (protocol, source/destination IP, source/destination
port) or "2-feature" flows (e.g. source and destination IP).

A **generalization policy** linearizes the (multi-parent) generalization
lattice over a schema into a canonical chain of *level vectors*.  Each
flow then has exactly one ancestor per depth, which is what makes the
Flowtree a tree rather than a DAG.  Depth 0 is the all-wildcard root and
``policy.depth`` is the fully-specific leaf level.

A **flow key** is a concrete, possibly generalized, assignment of values
to a schema's features.  Keys are immutable and hashable so they can be
used directly as node identities and dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import GranularityError, SchemaError, SchemaMismatchError
from repro.flows.features import Feature, IPv4Feature, PortFeature, ProtocolFeature

#: A projector masks a fully-specific value tuple down to one canonical
#: depth.  Policies precompute one per depth so the Flowtree hot path
#: never rebuilds mask ladders per call.
Projector = Callable[[Sequence[int]], Tuple[int, ...]]


@dataclass(frozen=True)
class FeatureSchema:
    """An ordered, named set of flow features.

    The schema is the unit of compatibility: two summaries can only be
    merged when they were built over the same schema (and policy).
    """

    name: str
    features: Tuple[Feature, ...]

    def __post_init__(self) -> None:
        names = [feature.name for feature in self.features]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate feature names in schema {self.name!r}")

    def __len__(self) -> int:
        return len(self.features)

    def index_of(self, feature_name: str) -> int:
        """Return the position of ``feature_name`` within the schema."""
        for index, feature in enumerate(self.features):
            if feature.name == feature_name:
                return index
        raise SchemaError(
            f"schema {self.name!r} has no feature {feature_name!r}"
        )

    def feature(self, feature_name: str) -> Feature:
        """Return the :class:`Feature` called ``feature_name``."""
        return self.features[self.index_of(feature_name)]

    def max_levels(self) -> Tuple[int, ...]:
        """The level vector of a fully-specific key."""
        return tuple(feature.max_level for feature in self.features)

    def parse_values(self, raw: Mapping[str, str]) -> Tuple[int, ...]:
        """Parse a textual feature map into an ordered value tuple."""
        missing = [f.name for f in self.features if f.name not in raw]
        if missing:
            raise SchemaError(
                f"schema {self.name!r} is missing features {missing}"
            )
        return tuple(feature.parse(raw[feature.name]) for feature in self.features)

    def key(self, **values: Union[int, str]) -> "FlowKey":
        """Build a fully-specific :class:`FlowKey`.

        Values may be given as ints or as feature-domain text (e.g. a
        dotted-quad for an IPv4 feature).
        """
        ordered = []
        for feature in self.features:
            if feature.name not in values:
                raise SchemaError(
                    f"missing value for feature {feature.name!r} "
                    f"of schema {self.name!r}"
                )
            raw = values[feature.name]
            value = feature.parse(raw) if isinstance(raw, str) else raw
            feature.validate(value)
            ordered.append(value)
        extra = set(values) - {f.name for f in self.features}
        if extra:
            raise SchemaError(
                f"unknown features {sorted(extra)} for schema {self.name!r}"
            )
        return FlowKey(self, tuple(ordered), self.max_levels())


@dataclass(frozen=True)
class FlowKey:
    """A concrete, possibly generalized, flow over a schema.

    ``values`` are already masked to ``levels``; construction enforces
    this so equal keys always compare equal.
    """

    schema: FeatureSchema
    values: Tuple[int, ...]
    levels: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.schema) or len(self.levels) != len(
            self.schema
        ):
            raise SchemaError(
                f"key arity {len(self.values)} does not match schema "
                f"{self.schema.name!r} arity {len(self.schema)}"
            )
        masked = tuple(
            feature.mask(value, level)
            for feature, value, level in zip(
                self.schema.features, self.values, self.levels
            )
        )
        if masked != self.values:
            object.__setattr__(self, "values", masked)

    def __hash__(self) -> int:
        return hash((self.schema.name, self.values, self.levels))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        return (
            self.schema.name == other.schema.name
            and self.values == other.values
            and self.levels == other.levels
        )

    def generalize(self, feature_name: str, level: int) -> "FlowKey":
        """Return a copy with ``feature_name`` generalized to ``level``."""
        index = self.schema.index_of(feature_name)
        if level > self.levels[index]:
            raise GranularityError(
                f"cannot specialize {feature_name!r} from level "
                f"{self.levels[index]} to {level}"
            )
        levels = list(self.levels)
        levels[index] = level
        return FlowKey(self.schema, self.values, tuple(levels))

    def with_levels(self, levels: Sequence[int]) -> "FlowKey":
        """Return a copy generalized to the given level vector."""
        for old, new in zip(self.levels, levels):
            if new > old:
                raise GranularityError(
                    "cannot specialize a generalized key "
                    f"(levels {self.levels} -> {tuple(levels)})"
                )
        return FlowKey(self.schema, self.values, tuple(levels))

    def contains(self, other: "FlowKey") -> bool:
        """True if ``other`` is this key or a specialization of it.

        A key ``a.b.c.0/24`` contains every key whose address falls in
        that prefix, feature by feature.
        """
        if self.schema.name != other.schema.name:
            return False
        for feature, value, level, other_value, other_level in zip(
            self.schema.features,
            self.values,
            self.levels,
            other.values,
            other.levels,
        ):
            if level > other_level:
                return False
            if feature.mask(other_value, level) != value:
                return False
        return True

    def feature_value(self, feature_name: str) -> int:
        """The (masked) value of a single feature."""
        return self.values[self.schema.index_of(feature_name)]

    def feature_level(self, feature_name: str) -> int:
        """The mask level of a single feature."""
        return self.levels[self.schema.index_of(feature_name)]

    def is_fully_general(self) -> bool:
        """True for the all-wildcard key."""
        return all(level == 0 for level in self.levels)

    def is_fully_specific(self) -> bool:
        """True if no feature has been generalized."""
        return self.levels == self.schema.max_levels()

    def __str__(self) -> str:
        rendered = ", ".join(
            f"{feature.name}={feature.render(value, level)}"
            for feature, value, level in zip(
                self.schema.features, self.values, self.levels
            )
        )
        return f"<{self.schema.name}: {rendered}>"


class GeneralizationPolicy:
    """A canonical chain of level vectors over a schema.

    The policy turns the generalization lattice into a chain: depth 0 is
    the all-wildcard vector, each subsequent depth specializes exactly one
    feature by a bounded step, and the final depth is fully specific.
    Because bit masks nest, projecting a key to depth ``d`` only needs the
    key's values masked at any deeper depth — which makes walking to a
    parent O(number of features).
    """

    def __init__(self, schema: FeatureSchema, level_vectors: Sequence[Tuple[int, ...]]):
        if not level_vectors:
            raise GranularityError("a policy needs at least one level vector")
        if any(level != 0 for level in level_vectors[0]):
            raise GranularityError("depth 0 must be the all-wildcard vector")
        if tuple(level_vectors[-1]) != schema.max_levels():
            raise GranularityError("the deepest vector must be fully specific")
        for shallow, deep in zip(level_vectors, level_vectors[1:]):
            if any(d < s for s, d in zip(shallow, deep)):
                raise GranularityError(
                    "level vectors must be monotonically specializing: "
                    f"{shallow} -> {deep}"
                )
            if shallow == tuple(deep):
                raise GranularityError(f"duplicate level vector {shallow}")
        self.schema = schema
        self.level_vectors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(vector) for vector in level_vectors
        )
        for vector in self.level_vectors:
            if len(vector) != len(schema):
                raise GranularityError(
                    f"level vector {vector} arity does not match schema "
                    f"{schema.name!r} arity {len(schema)}"
                )
            for feature, level in zip(schema.features, vector):
                if not 0 <= level <= feature.max_level:
                    raise GranularityError(
                        f"level {level} out of range [0, {feature.max_level}] "
                        f"for feature {feature.name!r}"
                    )
        self._depth_by_vector: Dict[Tuple[int, ...], int] = {
            vector: depth for depth, vector in enumerate(self.level_vectors)
        }
        #: one precomputed projector per depth (the ingest hot path
        #: indexes this tuple directly instead of calling project())
        self.projectors: Tuple[Projector, ...] = tuple(
            self._build_projector(vector) for vector in self.level_vectors
        )

    def _build_projector(self, levels: Tuple[int, ...]) -> Projector:
        """Compile one depth's mask ladder into a closure.

        Features that use the stock bit masking collapse into a plain
        per-feature ``value & mask`` table; features with a custom
        :meth:`~repro.flows.features.Feature.mask` keep their bound
        method so overridden semantics are preserved.
        """
        features = self.schema.features
        if all(type(f).mask is Feature.mask for f in features):
            masks = tuple(
                0
                if level == 0
                else (((1 << level) - 1) << (feature.bits - level))
                for feature, level in zip(features, levels)
            )
            # compile an arity-specialized closure (namedtuple-style
            # codegen): unpack once, mask each slot with a literal, no
            # per-call zip/generator machinery
            arity = len(masks)
            if arity == 0:
                return lambda values: ()
            names = [f"v{i}" for i in range(arity)]
            terms = [
                "0" if mask == 0 else f"{name} & {mask}"
                for name, mask in zip(names, masks)
            ]
            trailing = "," if arity == 1 else ""
            source = (
                f"def project(values):\n"
                f"    {', '.join(names)}{trailing} = values\n"
                f"    return ({', '.join(terms)}{trailing})\n"
            )
            namespace: Dict[str, Projector] = {}
            exec(source, namespace)  # noqa: S102 - static, literal-only code
            project = namespace["project"]
        else:
            maskers = tuple(
                (feature.mask, level)
                for feature, level in zip(features, levels)
            )

            def project(
                values: Sequence[int], _maskers=maskers
            ) -> Tuple[int, ...]:
                return tuple(
                    mask(value, level)
                    for value, (mask, level) in zip(values, _maskers)
                )

        return project

    def bitmask_rows(self) -> Optional[Tuple[Tuple[int, ...], ...]]:
        """Per-depth bit masks, when every feature uses stock masking.

        Row ``d`` holds one integer mask per feature such that
        ``value & mask`` equals the feature masked to depth ``d``'s
        level — the same table :meth:`_build_projector` compiles into
        its fast-path closures, exposed flat so a columnar consumer can
        apply a whole depth with one vectorized AND.  Returns ``None``
        when any feature overrides :meth:`~repro.flows.features.Feature.mask`
        (custom semantics must go through the closures).
        """
        features = self.schema.features
        if not all(type(f).mask is Feature.mask for f in features):
            return None
        return tuple(
            tuple(
                0
                if level == 0
                else (((1 << level) - 1) << (feature.bits - level))
                for feature, level in zip(features, vector)
            )
            for vector in self.level_vectors
        )

    @property
    def depth(self) -> int:
        """The depth of fully-specific keys (root is depth 0)."""
        return len(self.level_vectors) - 1

    def levels_at(self, depth: int) -> Tuple[int, ...]:
        """The level vector used at ``depth``."""
        if not 0 <= depth <= self.depth:
            raise GranularityError(
                f"depth {depth} out of range [0, {self.depth}]"
            )
        return self.level_vectors[depth]

    def depth_of(self, levels: Sequence[int]) -> Optional[int]:
        """The canonical depth for a level vector, or None if off-chain."""
        try:
            return self._depth_by_vector.get(levels)  # type: ignore[arg-type]
        except TypeError:  # unhashable (list) input
            return self._depth_by_vector.get(tuple(levels))

    def project(self, values: Sequence[int], depth: int) -> Tuple[int, ...]:
        """Mask a value tuple down to the level vector of ``depth``."""
        if not 0 <= depth <= self.depth:
            raise GranularityError(
                f"depth {depth} out of range [0, {self.depth}]"
            )
        return self.projectors[depth](values)

    def key_at(self, key: FlowKey, depth: int) -> FlowKey:
        """Project a flow key onto the canonical chain at ``depth``."""
        if key.schema.name != self.schema.name:
            raise SchemaMismatchError(
                f"key schema {key.schema.name!r} != policy schema "
                f"{self.schema.name!r}"
            )
        return FlowKey(self.schema, key.values, self.levels_at(depth))

    def nearest_depth_at_or_above(self, levels: Sequence[int]) -> int:
        """The deepest canonical depth that is general enough for ``levels``.

        Used to answer queries for off-chain generalized keys: the
        returned depth's vector has every feature at least as specific as
        requested nowhere — i.e. it only generalizes, never specializes.
        """
        best = 0
        for depth, vector in enumerate(self.level_vectors):
            if all(v <= l for v, l in zip(vector, levels)):
                best = depth
        return best

    def shallowest_covering_depth(self, levels: Sequence[int]) -> int:
        """The shallowest canonical depth at least as specific as ``levels``.

        Nodes at the returned depth can be masked *up* to ``levels``,
        which is how off-chain queries are answered by summation.  The
        fully-specific final vector always qualifies, so this total
        function never fails.
        """
        for depth, vector in enumerate(self.level_vectors):
            if all(v >= l for v, l in zip(vector, levels)):
                return depth
        return self.depth

    def compatible_with(self, other: "GeneralizationPolicy") -> bool:
        """True if two policies produce mergeable trees."""
        return (
            self.schema.name == other.schema.name
            and self.level_vectors == other.level_vectors
        )

    @classmethod
    def build(
        cls,
        schema: FeatureSchema,
        steps: Iterable[Tuple[str, int]],
    ) -> "GeneralizationPolicy":
        """Build a policy from (feature name, new level) specialization steps.

        Steps run from the root downward; each step raises one feature's
        level.  Features never mentioned stay wildcarded until a step
        raises them, and the chain is completed to fully-specific levels
        automatically if the steps stop short.
        """
        current = [0] * len(schema)
        vectors = [tuple(current)]
        for feature_name, level in steps:
            index = schema.index_of(feature_name)
            if level <= current[index]:
                raise GranularityError(
                    f"step ({feature_name!r}, {level}) does not specialize "
                    f"beyond level {current[index]}"
                )
            current[index] = level
            vectors.append(tuple(current))
        if tuple(current) != schema.max_levels():
            for index, feature in enumerate(schema.features):
                if current[index] != feature.max_level:
                    current[index] = feature.max_level
                    vectors.append(tuple(current))
        return cls(schema, vectors)

    @classmethod
    def default_for(cls, schema: FeatureSchema) -> "GeneralizationPolicy":
        """The default chain used throughout the library.

        IPv4 features specialize in /8 increments (interleaved across the
        address features, destination first, to mirror how operators
        drill into traffic), then the protocol, then ports in 8-bit
        increments.  For the 5-tuple this yields a depth-13 chain.
        """
        ip_names = [
            f.name for f in schema.features if isinstance(f, IPv4Feature)
        ]
        proto_names = [
            f.name for f in schema.features if isinstance(f, ProtocolFeature)
        ]
        port_names = [
            f.name for f in schema.features if isinstance(f, PortFeature)
        ]
        other = [
            f
            for f in schema.features
            if f.name not in set(ip_names) | set(proto_names) | set(port_names)
        ]
        steps = []
        for level in (8, 16, 24, 32):
            for name in ip_names:
                steps.append((name, level))
        for name in proto_names:
            steps.append((name, 8))
        for level in (8, 16):
            for name in port_names:
                steps.append((name, level))
        for feature in other:
            steps.append((feature.name, feature.max_level))
        return cls.build(schema, steps)


#: The classic 5-feature flow schema of Section VI.
FIVE_TUPLE = FeatureSchema(
    "five_tuple",
    (
        ProtocolFeature("proto"),
        IPv4Feature("src_ip"),
        IPv4Feature("dst_ip"),
        PortFeature("src_port"),
        PortFeature("dst_port"),
    ),
)

#: A 2-feature schema: source and destination IP.
SRC_DST = FeatureSchema(
    "src_dst",
    (IPv4Feature("src_ip"), IPv4Feature("dst_ip")),
)

#: A 2-feature schema: destination IP and destination port.
DST_IP_PORT = FeatureSchema(
    "dst_ip_port",
    (IPv4Feature("dst_ip"), PortFeature("dst_port")),
)

"""Typed, generalizable flow features.

The paper builds its flow hierarchy on the observation that *"each feature
can be generalized by using a mask, e.g., by moving from an IP to a
prefix"* (Section VI).  A :class:`Feature` therefore bundles three things:

* a name (``"src_ip"``),
* a domain (how raw values are parsed and rendered), and
* a ladder of **mask levels**: level ``max_level`` keeps the full value,
  level 0 collapses everything to a single wildcard.  Level ``n`` of an
  IPv4 feature is exactly the ``/n`` prefix of the address.

Masking is the only operation the Flowtree needs from a feature, which
keeps the feature model open: adding, say, a geographic feature only
requires defining its mask ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GranularityError, SchemaError


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 text into its 32-bit integer value.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise SchemaError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise SchemaError(f"bad IPv4 octet {part!r} in {text!r}") from exc
        if not 0 <= octet <= 255:
            raise SchemaError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Render a 32-bit integer as dotted-quad IPv4 text.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Feature:
    """A named flow attribute with a ladder of generalization levels.

    ``max_level`` is the number of mask bits at full specificity; masking
    to level ``n`` keeps the ``n`` most significant of those bits.  The
    generic implementation covers every fixed-width bit-maskable domain;
    subclasses only customize parsing/rendering.
    """

    name: str
    bits: int

    @property
    def max_level(self) -> int:
        """The level at which no generalization has been applied."""
        return self.bits

    def mask(self, value: int, level: int) -> int:
        """Return ``value`` generalized to ``level`` mask bits."""
        if not 0 <= level <= self.bits:
            raise GranularityError(
                f"level {level} out of range [0, {self.bits}] for feature "
                f"{self.name!r}"
            )
        if level == 0:
            return 0
        keep = ((1 << level) - 1) << (self.bits - level)
        return value & keep

    def parse(self, text: str) -> int:
        """Parse a textual value into the feature's integer domain."""
        try:
            value = int(text)
        except ValueError as exc:
            raise SchemaError(
                f"bad value {text!r} for feature {self.name!r}"
            ) from exc
        self.validate(value)
        return value

    def render(self, value: int, level: int) -> str:
        """Render a (possibly generalized) value for display."""
        if level == 0:
            return "*"
        if level == self.bits:
            return str(value)
        return f"{value}/{level}"

    def validate(self, value: int) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits the domain."""
        if not isinstance(value, int):
            raise SchemaError(
                f"feature {self.name!r} expects int, got {type(value).__name__}"
            )
        if not 0 <= value < (1 << self.bits):
            raise SchemaError(
                f"value {value} out of range for {self.bits}-bit feature "
                f"{self.name!r}"
            )


class IPv4Feature(Feature):
    """A 32-bit IPv4 address feature; level ``n`` is the ``/n`` prefix."""

    def __init__(self, name: str) -> None:
        super().__init__(name=name, bits=32)

    def parse(self, text: str) -> int:
        value = parse_ipv4(text)
        self.validate(value)
        return value

    def render(self, value: int, level: int) -> str:
        if level == 0:
            return "*"
        if level == self.bits:
            return format_ipv4(value)
        return f"{format_ipv4(value)}/{level}"


class PortFeature(Feature):
    """A 16-bit transport-port feature generalized by bit masking."""

    def __init__(self, name: str) -> None:
        super().__init__(name=name, bits=16)


class ProtocolFeature(Feature):
    """An 8-bit IP-protocol feature; in practice used all-or-nothing."""

    _NAMES = {1: "icmp", 6: "tcp", 17: "udp"}
    _NUMBERS = {name: number for number, name in _NAMES.items()}

    def __init__(self, name: str = "proto") -> None:
        super().__init__(name=name, bits=8)

    def parse(self, text: str) -> int:
        lowered = text.strip().lower()
        if lowered in self._NUMBERS:
            return self._NUMBERS[lowered]
        return super().parse(text)

    def render(self, value: int, level: int) -> str:
        if level == 0:
            return "*"
        if level == self.bits and value in self._NAMES:
            return self._NAMES[value]
        return super().render(value, level)

"""Columnar flow-record batches and the vectorized Flowtree walk.

The per-record ingest walk tops out near 36k records/s on one core —
three orders of magnitude short of the line rates the paper's edge
hierarchy must absorb.  This module is the data-parallel half of the
answer (process parallelism is :mod:`repro.parallel`):

* :class:`ColumnarBatch` packs a list of fully-specific
  :class:`~repro.flows.records.FlowRecord` into flat numpy columns
  (key values, packets, bytes, timestamps).  The layout is fixed-width
  int64/float64, so a batch round-trips through a shared-memory slot
  with :meth:`ColumnarBatch.pack_into` / :meth:`ColumnarBatch.unpack_from`
  without pickling.
* :func:`ingest_batch` replays a batch into a
  :class:`~repro.flows.tree.Flowtree` with the per-depth projector walk
  vectorized: records are grouped per canonical depth with one masked
  ``np.unique`` cascade, and group sums land on the nodes in O(distinct
  nodes) python operations instead of O(records × depth).

Bit-exactness is the contract, not an aspiration: the vectorized walk
produces *the same tree, node for node and seq for seq*, as the scalar
:meth:`~repro.flows.tree.Flowtree.add_many` over the same records in
the same order.  Two properties make that possible:

1. **Compression points.**  ``add_many`` only compresses when an insert
   pushes the node count past the bounded overshoot.  A run of records
   whose new-node count keeps the tree at or below the overshoot is
   therefore *pure addition* in both modes — integer sums are
   associative/commutative, so group-sums equal record-by-record sums
   exactly.  The planner groups a window of records once, reads the
   per-record node-birth schedule off the group first-occurrence
   indices, and from it *predicts the exact record* at which the scalar
   loop would cross the overshoot; it applies precisely that prefix,
   compresses where the scalar loop would, and replans the rest
   against the compressed tree.
2. **Creation order.**  ``seq`` (the compression tie-breaker) is
   reproduced by creating each chunk's new nodes sorted by (first
   record index that touches the node, depth) — precisely the order
   the scalar walk discovers them in.

Grouping hashes each row to one uint64 (per-column odd multipliers) and
uniques the hashes; a vectorized equality check against each group's
representative row detects the astronomically-unlikely collision, which
falls back to the exact ``np.unique(axis=0)``.  Either way the result
is exact — hashing is only a fast path.

numpy is optional everywhere: without it (or with a policy whose
features override :meth:`~repro.flows.features.Feature.mask`), encoding
raises :class:`ColumnarEncodeError` and callers fall back to the
existing scalar mask closures.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via HAVE_NUMPY gating
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.errors import SchemaMismatchError
from repro.flows.flowkey import FeatureSchema, FlowKey
from repro.flows.records import FlowRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flows.tree import Flowtree

HAVE_NUMPY = np is not None

#: batches at or below this size take the scalar ``add_many`` walk
#: instead of the window planner: the planner's fixed per-chunk cost
#: (grouping, hashing, mask projection) exceeds its vectorization win
#: below the measured crossover (~512 records on the reference box;
#: 256 keeps a safety margin).  Both paths are bit-identical, so this
#: is purely a latency knob — ``bench_flowtree_hotpath`` pins the
#: crossover so drift shows up in review.
SCALAR_FALLBACK_RECORDS = 256

#: slot header: record count + feature arity, little-endian int64s
_HEADER = struct.Struct("<qq")

#: odd 64-bit multipliers for row hashing; extended multiplicatively for
#: schemas wider than the seed list
_HASH_SEEDS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0xD6E8FEB86659FD93,
)


class ColumnarEncodeError(ValueError):
    """A record list cannot be encoded columnar (caller should fall back).

    Raised for non-:class:`FlowRecord` items, generalized keys, schema
    mismatches, or a missing numpy — all conditions the scalar path
    handles; columnar encoding simply declines them.
    """


def _hash_multipliers(arity: int):
    seeds = list(_HASH_SEEDS)
    step = 0x9E3779B97F4A7C15
    while len(seeds) < arity:
        seeds.append((seeds[-1] * step + 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF | 1)
    return np.array(seeds[:arity], dtype=np.uint64)


class ColumnarBatch:
    """Fully-specific flow records as flat, fixed-width columns.

    ``values`` is an ``(n, arity)`` int64 array of key value tuples;
    ``packets``/``bytes`` are int64 and ``first_seen``/``last_seen``
    float64 columns of length ``n``.  Flow count per record is the
    implicit 1 of :meth:`FlowRecord.score`.
    """

    __slots__ = (
        "schema_name",
        "values",
        "packets",
        "bytes",
        "first_seen",
        "last_seen",
    )

    def __init__(
        self, schema_name, values, packets, nbytes, first_seen, last_seen
    ) -> None:
        self.schema_name = schema_name
        self.values = values
        self.packets = packets
        self.bytes = nbytes
        self.first_seen = first_seen
        self.last_seen = last_seen

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def arity(self) -> int:
        return self.values.shape[1]

    # -- encode / decode ------------------------------------------------

    @classmethod
    def encode(
        cls, records: Sequence[FlowRecord], schema: FeatureSchema
    ) -> "ColumnarBatch":
        """Pack records into columns, validating as the scalar path would.

        Every record must be a :class:`FlowRecord` with a fully-specific
        key over ``schema``; anything else raises
        :class:`ColumnarEncodeError` so the caller can take the scalar
        route (which either ingests it — packet records — or raises the
        scalar path's own, richer error).
        """
        if np is None:
            raise ColumnarEncodeError("numpy is not available")
        name = schema.name
        max_levels = schema.max_levels()
        for record in records:
            if type(record) is not FlowRecord:
                raise ColumnarEncodeError(
                    f"cannot encode {type(record).__name__} columnar"
                )
            key = record.key
            if key.schema.name != name or key.levels != max_levels:
                raise ColumnarEncodeError(
                    "columnar batches need fully-specific keys over "
                    f"schema {name!r}"
                )
        n = len(records)
        arity = len(schema)
        try:
            values = np.fromiter(
                (v for record in records for v in record.key.values),
                dtype=np.int64,
                count=n * arity,
            ).reshape(n, arity)
            packets = np.fromiter(
                (record.packets for record in records), dtype=np.int64, count=n
            )
            nbytes = np.fromiter(
                (record.bytes for record in records), dtype=np.int64, count=n
            )
        except OverflowError as exc:
            # counters past int64 stay on the scalar path (python ints
            # are unbounded there); columnar would silently be wrong
            raise ColumnarEncodeError(str(exc)) from exc
        first_seen = np.fromiter(
            (record.first_seen for record in records), dtype=np.float64, count=n
        )
        last_seen = np.fromiter(
            (record.last_seen for record in records), dtype=np.float64, count=n
        )
        return cls(name, values, packets, nbytes, first_seen, last_seen)

    def decode(self, schema: FeatureSchema) -> List[FlowRecord]:
        """Rebuild the original record list (the encode round-trip)."""
        if schema.name != self.schema_name:
            raise SchemaMismatchError(
                f"batch schema {self.schema_name!r} != schema {schema.name!r}"
            )
        levels = schema.max_levels()
        packets = self.packets.tolist()
        nbytes = self.bytes.tolist()
        first = self.first_seen.tolist()
        last = self.last_seen.tolist()
        return [
            FlowRecord(
                key=FlowKey(schema, tuple(row), levels),
                packets=packets[i],
                bytes=nbytes[i],
                first_seen=first[i],
                last_seen=last[i],
            )
            for i, row in enumerate(self.values.tolist())
        ]

    # -- shared-memory transport ----------------------------------------

    @staticmethod
    def packed_nbytes(n: int, arity: int) -> int:
        """Bytes one packed batch of ``n`` records occupies in a slot."""
        return _HEADER.size + 8 * n * (arity + 4)

    def pack_into(self, buf) -> int:
        """Serialize into a writable buffer; returns bytes written."""
        n = len(self)
        arity = self.arity
        _HEADER.pack_into(buf, 0, n, arity)
        offset = _HEADER.size
        for column in (
            np.ascontiguousarray(self.values).reshape(-1),
            self.packets,
            self.bytes,
            self.first_seen,
            self.last_seen,
        ):
            raw = column.tobytes()
            buf[offset:offset + len(raw)] = raw
            offset += len(raw)
        return offset

    @classmethod
    def unpack_from(cls, schema_name: str, buf) -> "ColumnarBatch":
        """Deserialize a batch packed with :meth:`pack_into`.

        The returned columns are zero-copy views into ``buf`` — drop
        the batch before the underlying slot is reused or unmapped.
        """
        n, arity = _HEADER.unpack_from(buf, 0)
        offset = _HEADER.size

        def column(count, dtype):
            nonlocal offset
            out = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
            offset += 8 * count
            return out

        values = column(n * arity, np.int64).reshape(n, arity)
        packets = column(n, np.int64)
        nbytes = column(n, np.int64)
        first_seen = column(n, np.float64)
        last_seen = column(n, np.float64)
        return cls(schema_name, values, packets, nbytes, first_seen, last_seen)


# ----------------------------------------------------------------------
# the vectorized walk


def _masks_for(tree: "Flowtree"):
    """The policy's mask table as an int64 array, cached on the tree."""
    cached = getattr(tree, "_columnar_masks", False)
    if cached is not False:
        return cached
    masks = None
    if np is not None:
        rows = tree.policy.bitmask_rows()
        if rows is not None:
            masks = np.array(rows, dtype=np.int64)
    tree._columnar_masks = masks
    return masks


def _group_rows(rows, mults):
    """Exact row grouping: (unique rows, first occurrence, inverse).

    Hashes rows to one uint64 each and uniques the hashes; the
    vectorized representative check catches hash collisions (and falls
    back to the exact axis unique), so the grouping is always exact.
    """
    hashes = (rows.astype(np.uint64) * mults).sum(axis=1, dtype=np.uint64)
    _, first, inverse = np.unique(
        hashes, return_index=True, return_inverse=True
    )
    uniq = rows[first]
    if not np.array_equal(uniq[inverse], rows):  # pragma: no cover - ~2^-64
        uniq, first, inverse = np.unique(
            rows, axis=0, return_index=True, return_inverse=True
        )
    return uniq, first, inverse


class _ChunkPlan:
    """Per-depth group sums for one applicable run of records."""

    __slots__ = ("depths", "total")

    def __init__(self, depths, total):
        #: list of (depth, tuples, new_flags, packets, bytes, flows,
        #: first-occurrence index) — python lists, chunk order irrelevant
        self.depths = depths
        self.total = total  # (packets, bytes, flows) chunk totals


class _WindowPlan:
    """One grouped window of records, materializable per prefix.

    Grouping (the expensive part — the masked cascade, hashing, tuple
    building, dict membership) happens once per window; the budgeted
    loop then materializes the exact prefix that fits under the
    overshoot, which only needs cheap prefix-restricted sums.
    """

    __slots__ = ("n", "packets", "nbytes", "depths", "births")

    def __init__(self, n, packets, nbytes, depths, births):
        self.n = n
        self.packets = packets  # window slice, np int64
        self.nbytes = nbytes
        #: per depth, deepest first: (depth, tuples, new_flags, first,
        #: row_inverse, pk, bt, fl) — first/row_inverse/sums are numpy,
        #: sums are full-window cascade totals
        self.depths = depths
        #: sorted window-relative record indices, one per new node
        self.births = births

    def crossing(self, capacity: int) -> int:
        """First record index that pushes births past ``capacity``.

        Returns -1 when the whole window fits (fewer than
        ``capacity + 1`` new nodes).  ``capacity < 0`` means the tree
        is already above the line, so the very first record crosses
        (the scalar loop checks after every record, births or not).
        """
        if capacity < 0:
            return 0
        if len(self.births) <= capacity:
            return -1
        return int(self.births[capacity])

    def materialize(self, r_stop: int) -> _ChunkPlan:
        """The apply-plan for window records ``[0, r_stop]`` inclusive."""
        p = r_stop + 1
        full = p >= self.n
        out = []
        for d, tuples, new_flags, first, row_inverse, pk, bt, fl in self.depths:
            if full:
                out.append(
                    (
                        d,
                        tuples,
                        new_flags,
                        pk.tolist(),
                        bt.tolist(),
                        fl.tolist(),
                        first.tolist(),
                    )
                )
                continue
            keep = np.flatnonzero(first <= r_stop)
            sel = row_inverse[:p]
            groups = len(tuples)
            ppk = np.zeros(groups, dtype=np.int64)
            np.add.at(ppk, sel, self.packets[:p])
            pbt = np.zeros(groups, dtype=np.int64)
            np.add.at(pbt, sel, self.nbytes[:p])
            pfl = np.bincount(sel, minlength=groups)
            idx = keep.tolist()
            out.append(
                (
                    d,
                    [tuples[i] for i in idx],
                    [new_flags[i] for i in idx],
                    ppk[keep].tolist(),
                    pbt[keep].tolist(),
                    pfl[keep].tolist(),
                    first[keep].tolist(),
                )
            )
        total = (
            int(self.packets[:p].sum()),
            int(self.nbytes[:p].sum()),
            p,
        )
        return _ChunkPlan(out, total)


def _plan_window(tree, values, packets, nbytes, lo, hi, masks, mults):
    """Group records ``[lo, hi)`` per canonical depth, deepest first."""
    rows = values[lo:hi]
    n = hi - lo
    depth = masks.shape[0] - 1
    cur_rows, first, inverse = _group_rows(rows, mults)
    groups = len(cur_rows)
    cur_pk = np.zeros(groups, dtype=np.int64)
    np.add.at(cur_pk, inverse, packets[lo:hi])
    cur_bt = np.zeros(groups, dtype=np.int64)
    np.add.at(cur_bt, inverse, nbytes[lo:hi])
    cur_fl = np.bincount(inverse, minlength=groups).astype(np.int64)
    cur_first = first.astype(np.int64)
    cur_inverse = inverse
    nodes = tree._nodes
    depths = []
    new_firsts = []
    d = depth
    while True:
        tuples = [tuple(row) for row in cur_rows.tolist()]
        contains = nodes.__contains__
        new_flags = [not contains((d, t)) for t in tuples]
        if any(new_flags):
            new_firsts.append(cur_first[np.array(new_flags, dtype=bool)])
        depths.append(
            (d, tuples, new_flags, cur_first, cur_inverse, cur_pk, cur_bt, cur_fl)
        )
        if d == 1:
            break
        d -= 1
        # masks nest along the chain, so the parent projection of the
        # already-masked child rows equals projecting the raw rows
        parent_rows = cur_rows & masks[d]
        cur_rows, _, pinv = _group_rows(parent_rows, mults)
        groups = len(cur_rows)
        pk = np.zeros(groups, dtype=np.int64)
        np.add.at(pk, pinv, cur_pk)
        bt = np.zeros(groups, dtype=np.int64)
        np.add.at(bt, pinv, cur_bt)
        fl = np.zeros(groups, dtype=np.int64)
        np.add.at(fl, pinv, cur_fl)
        pfirst = np.full(groups, n, dtype=np.int64)
        np.minimum.at(pfirst, pinv, cur_first)
        cur_pk, cur_bt, cur_fl, cur_first = pk, bt, fl, pfirst
        cur_inverse = pinv[cur_inverse]
    if new_firsts:
        births = np.sort(np.concatenate(new_firsts))
    else:
        births = np.empty(0, dtype=np.int64)
    return _WindowPlan(n, packets[lo:hi], nbytes[lo:hi], depths, births)


def _apply_plan(tree, plan) -> None:
    """Apply one planned chunk: create nodes in scalar order, add sums."""
    nodes = tree._nodes
    projectors = tree._projectors
    # new nodes in (first touching record, depth) order — exactly the
    # order the scalar walk would have created them, so seq matches
    births = [
        (first[i], d, tuples[i])
        for d, tuples, new_flags, _, _, _, first in plan.depths
        for i in range(len(tuples))
        if new_flags[i]
    ]
    births.sort()
    new_node = tree._new_node
    for _, d, values in births:
        parent = nodes[(d - 1, projectors[d - 1](values))]
        new_node(d, values, parent)
    root = tree._root
    tpk, tbt, tfl = plan.total
    root.subtree_packets += tpk
    root.subtree_bytes += tbt
    root.subtree_flows += tfl
    leaf_depth = tree.policy.depth
    for d, tuples, _, pk, bt, fl, _ in plan.depths:
        own = d == leaf_depth
        for i, values in enumerate(tuples):
            node = nodes[(d, values)]
            node.subtree_packets += pk[i]
            node.subtree_bytes += bt[i]
            node.subtree_flows += fl[i]
            if own:
                node.own_packets += pk[i]
                node.own_bytes += bt[i]
                node.own_flows += fl[i]


def ingest_batch(
    tree: "Flowtree", batch: ColumnarBatch, finalize: bool = True
) -> int:
    """Ingest a columnar batch, bit-identically to the scalar path.

    Equivalent to ``tree.ingest(batch.decode(tree.schema))`` — same
    nodes, same seq numbers, same compression passes — but grouped and
    summed with numpy.  ``finalize=False`` skips the trailing
    budget-restoring compress, for callers streaming several chunks of
    one logical batch (the last chunk finalizes).

    Falls back to the scalar walk when the policy's features mask
    customly (no numpy table exists for them).
    """
    if batch.schema_name != tree.schema.name:
        raise SchemaMismatchError(
            f"batch schema {batch.schema_name!r} != tree schema "
            f"{tree.schema.name!r}"
        )
    n = len(batch)
    if n == 0:
        return 0
    masks = _masks_for(tree)
    if masks is None:
        return tree.add_many(
            (
                (record.key, record.score())
                for record in batch.decode(tree.schema)
            ),
            finalize=finalize,
        )
    if masks.shape[0] == 1:
        # degenerate depth-0 chain: every record lands on the root
        root = tree._root
        tpk = int(batch.packets.sum())
        tbt = int(batch.bytes.sum())
        root.subtree_packets += tpk
        root.subtree_bytes += tbt
        root.subtree_flows += n
        root.own_packets += tpk
        root.own_bytes += tbt
        root.own_flows += n
        return n
    if n <= SCALAR_FALLBACK_RECORDS:
        # the window planner's per-chunk overhead (grouping, hashing,
        # mask projection) dominates below the measured crossover; the
        # scalar walk is faster and bit-identical by construction
        return tree.add_many(
            (
                (record.key, record.score())
                for record in batch.decode(tree.schema)
            ),
            finalize=finalize,
        )
    mults = _hash_multipliers(batch.arity)
    values = np.ascontiguousarray(batch.values)
    packets = batch.packets
    nbytes = batch.bytes
    budget = tree.node_budget
    if budget is None:
        window = _plan_window(tree, values, packets, nbytes, 0, n, masks, mults)
        _apply_plan(tree, window.materialize(n - 1))
        return n
    overshoot = budget + max(64, budget // 8)
    target = int(budget * tree.compress_ratio)
    nodes = tree._nodes
    # window sizing: aim a bit past the records a compress cycle can
    # absorb (capacity / births-per-record), so most windows need one
    # plan and the over-planned tail stays a small fraction
    birth_rate = 1.0
    lo = 0
    while lo < n:
        capacity = overshoot - len(nodes)
        guess = int(max(capacity, 64) / birth_rate * 1.25) + 16
        hi = min(n, lo + max(256, guess))
        window = _plan_window(
            tree, values, packets, nbytes, lo, hi, masks, mults
        )
        crossing = window.crossing(capacity)
        if crossing < 0:
            _apply_plan(tree, window.materialize(window.n - 1))
            if len(window.births):
                birth_rate = max(0.05, len(window.births) / window.n)
            lo = hi
            continue
        _apply_plan(tree, window.materialize(crossing))
        # the prefix ended exactly where the scalar loop would compress
        tree.compress(target_nodes=target)
        tree._compressions += 1
        applied = crossing + 1
        birth_rate = max(0.05, (capacity + 1) / applied)
        lo += applied
    if finalize:
        tree._maybe_self_compress()
    return n

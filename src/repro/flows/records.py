"""Raw flow and packet observations, and the popularity score vector.

A router (or the traffic simulator) exports either per-packet samples or
per-flow records.  Both carry a fully-specific :class:`~repro.flows.flowkey.FlowKey`
plus counters.  The Flowtree annotates each node with a *popularity
score*, which the paper defines as "either its packet count, flow count,
byte count, or combinations thereof" — :class:`Score` keeps all three so
any combination can be queried after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.flows.flowkey import FlowKey


@dataclass(frozen=True, slots=True)
class Score:
    """The additive popularity vector: packets, bytes, and flow count.

    Scores form a commutative group under ``+``/``-`` which is what makes
    Flowtree summaries combinable (Merge) and comparable (Diff) across
    time periods and locations.

    Scores are the *external* currency: the Flowtree hot path
    accumulates popularity in plain integer counters on its nodes and
    materializes ``Score`` views only at the API boundary (query
    results, ``node.own``/``folded``/``subtree`` properties), so the
    per-record ingest cost carries no ``Score`` allocations.
    """

    packets: int = 0
    bytes: int = 0
    flows: int = 0

    def __add__(self, other: "Score") -> "Score":
        return Score(
            self.packets + other.packets,
            self.bytes + other.bytes,
            self.flows + other.flows,
        )

    def __sub__(self, other: "Score") -> "Score":
        return Score(
            self.packets - other.packets,
            self.bytes - other.bytes,
            self.flows - other.flows,
        )

    def __neg__(self) -> "Score":
        return Score(-self.packets, -self.bytes, -self.flows)

    def scale(self, factor: Union[int, float]) -> "Score":
        """Scale all counters, e.g. to invert a packet-sampling rate."""
        return Score(
            int(round(self.packets * factor)),
            int(round(self.bytes * factor)),
            int(round(self.flows * factor)),
        )

    def metric(self, name: str) -> int:
        """Fetch one counter by name (``packets``/``bytes``/``flows``)."""
        if name == "packets":
            return self.packets
        if name == "bytes":
            return self.bytes
        if name == "flows":
            return self.flows
        raise ValueError(f"unknown popularity metric {name!r}")

    def is_zero(self) -> bool:
        """True when every counter is zero."""
        return self.packets == 0 and self.bytes == 0 and self.flows == 0

    @staticmethod
    def zero() -> "Score":
        """The additive identity."""
        return Score(0, 0, 0)


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One exported flow: key plus its packet/byte counters and time span.

    ``first_seen``/``last_seen`` are simulation timestamps in seconds.
    """

    key: FlowKey
    packets: int
    bytes: int
    first_seen: float
    last_seen: float

    def __post_init__(self) -> None:
        if self.last_seen < self.first_seen:
            raise ValueError(
                f"flow ends ({self.last_seen}) before it starts "
                f"({self.first_seen})"
            )

    @property
    def duration(self) -> float:
        """The flow's active time span in seconds."""
        return self.last_seen - self.first_seen

    def score(self) -> Score:
        """The record's contribution to a popularity score."""
        return Score(packets=self.packets, bytes=self.bytes, flows=1)


@dataclass(frozen=True, slots=True)
class PacketRecord:
    """One (possibly sampled) packet observation."""

    key: FlowKey
    bytes: int
    timestamp: float
    sampled_1_in: int = 1

    def score(self) -> Score:
        """The packet's score, corrected for the sampling rate.

        A 1-in-N sampled packet stands for N packets of the same size;
        the flow count is deliberately 0 — flow arrivals are only counted
        from :class:`FlowRecord` so packets and flows can be mixed into
        one tree without double counting.
        """
        return Score(packets=1, bytes=self.bytes, flows=0).scale(
            self.sampled_1_in
        )


@dataclass
class EpochStats:
    """Running totals for one ingest epoch, kept by stream consumers."""

    records: int = 0
    packets: int = 0
    bytes: int = 0
    start: float = field(default=float("inf"))
    end: float = field(default=float("-inf"))

    def observe(self, record: FlowRecord) -> None:
        """Fold one flow record into the totals."""
        self.records += 1
        self.packets += record.packets
        self.bytes += record.bytes
        self.start = min(self.start, record.first_seen)
        self.end = max(self.end, record.last_seen)

"""Flowtree: the self-adjusting tree of generalized flows.

This module implements the computing primitive of Section VI with the
eight operators of Table II:

=========  ====================================================
Operator   Method
=========  ====================================================
Merge      :meth:`Flowtree.merge` / :meth:`Flowtree.merged`
Compress   :meth:`Flowtree.compress`
Diff       :meth:`Flowtree.diff`
Query      :meth:`Flowtree.query`
Drilldown  :meth:`Flowtree.drilldown`
Top-k      :meth:`Flowtree.top_k`
Above-x    :meth:`Flowtree.above_x`
HHH        :meth:`Flowtree.hhh`
=========  ====================================================

Structure.  Every observed flow and every canonical generalization of it
is a node; a node's parent is its most-specific canonical generalization
(one step up the :class:`~repro.flows.flowkey.GeneralizationPolicy`
chain).  Each node carries:

* ``own`` — mass inserted directly at this key,
* ``folded`` — mass absorbed from compressed (pruned) descendants, and
* ``subtree`` — the node's *popularity score*: ``own + folded`` plus the
  popularity of all live descendants, maintained incrementally.

Self-adjustment.  The tree enforces a node budget: when an insert pushes
the node count past ``node_budget`` the tree compresses itself by
repeatedly folding the least-popular leaf into its parent, down to
``compress_ratio * node_budget`` nodes.  Popularity mass is never lost —
it only loses specificity — so the root's popularity always equals the
total ingested mass (an invariant the property-based tests pin down).

Hot path.  Ingest is the operation every other subsystem's throughput
rides on, so it is written allocation-light:

* one projected chain per record (the policy's precompiled per-depth
  projectors), reused for node creation, ``own`` update and subtree
  bubbling in a single walk;
* popularity lives in plain integer counters on ``__slots__`` — the
  ``own``/``folded``/``subtree`` :class:`Score` views are materialized
  only at query time;
* batch ingest (:meth:`Flowtree.ingest` / :meth:`Flowtree.add_many`)
  defers the budget check to a bounded overshoot instead of testing it
  per record, and always re-establishes the budget before returning;
* :meth:`Flowtree.compress` keeps its least-popular-leaf min-heap alive
  across passes (entries are revalidated lazily on pop) instead of
  rebuilding it from every node each time.

Fold order is canonicalized to ``(popularity metric, node creation
order)``: among equally light leaves the oldest node folds first.  The
lazy heap reproduces this exactly while popularity is non-decreasing
(always true for flow ingest and merge of non-negative summaries).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GranularityError, SchemaMismatchError
from repro.flows.flowkey import FlowKey, GeneralizationPolicy
from repro.flows.records import FlowRecord, PacketRecord, Score

NodeId = Tuple[int, Tuple[int, ...]]

#: Approximate serialized footprint of one node, used for transfer
#: accounting: depth + per-feature value + three 8-byte counters (twice,
#: for own and folded).
_NODE_BYTES_FIXED = 4 + 2 * 3 * 8
_NODE_BYTES_PER_FEATURE = 4

#: popularity-metric name -> the node attribute holding its subtree counter
_SUBTREE_ATTR = {
    "packets": "subtree_packets",
    "bytes": "subtree_bytes",
    "flows": "subtree_flows",
}


def _subtree_attr(metric_name: str) -> str:
    try:
        return _SUBTREE_ATTR[metric_name]
    except KeyError:
        raise ValueError(
            f"unknown popularity metric {metric_name!r}"
        ) from None


class FlowtreeNode:
    """One generalized flow inside a :class:`Flowtree`.

    Popularity is stored as nine plain integer counters so the ingest
    hot path increments in place; the ``own``/``folded``/``subtree``
    properties expose the same values as immutable :class:`Score` views
    for query-time consumers.  ``seq`` is the node's creation rank
    within its tree — the deterministic tie-breaker for compression.
    """

    __slots__ = (
        "depth",
        "values",
        "seq",
        "parent",
        "own_packets",
        "own_bytes",
        "own_flows",
        "folded_packets",
        "folded_bytes",
        "folded_flows",
        "subtree_packets",
        "subtree_bytes",
        "subtree_flows",
        "children",
    )

    def __init__(
        self,
        depth: int,
        values: Tuple[int, ...],
        seq: int = 0,
        parent: Optional["FlowtreeNode"] = None,
    ) -> None:
        self.depth = depth
        self.values = values
        self.seq = seq
        self.parent = parent
        self.own_packets = 0
        self.own_bytes = 0
        self.own_flows = 0
        self.folded_packets = 0
        self.folded_bytes = 0
        self.folded_flows = 0
        self.subtree_packets = 0
        self.subtree_bytes = 0
        self.subtree_flows = 0
        self.children: Dict[Tuple[int, ...], "FlowtreeNode"] = {}

    @property
    def node_id(self) -> NodeId:
        """The node's identity within its tree."""
        return (self.depth, self.values)

    def is_leaf(self) -> bool:
        """True when the node currently has no live children."""
        return not self.children

    # -- Score views ----------------------------------------------------

    @property
    def own(self) -> Score:
        """Mass inserted directly at this key, as a :class:`Score`."""
        return Score(self.own_packets, self.own_bytes, self.own_flows)

    @own.setter
    def own(self, score: Score) -> None:
        self.own_packets = score.packets
        self.own_bytes = score.bytes
        self.own_flows = score.flows

    @property
    def folded(self) -> Score:
        """Mass absorbed from pruned descendants, as a :class:`Score`."""
        return Score(self.folded_packets, self.folded_bytes, self.folded_flows)

    @folded.setter
    def folded(self, score: Score) -> None:
        self.folded_packets = score.packets
        self.folded_bytes = score.bytes
        self.folded_flows = score.flows

    @property
    def subtree(self) -> Score:
        """The node's popularity score, as a :class:`Score`."""
        return Score(
            self.subtree_packets, self.subtree_bytes, self.subtree_flows
        )

    @subtree.setter
    def subtree(self, score: Score) -> None:
        self.subtree_packets = score.packets
        self.subtree_bytes = score.bytes
        self.subtree_flows = score.flows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlowtreeNode(depth={self.depth}, values={self.values}, "
            f"subtree={self.subtree})"
        )


@dataclass(frozen=True)
class HHHResult:
    """One hierarchical heavy hitter: its key, full popularity score, and
    the *residual* score after discounting already-reported HHH
    descendants (the quantity compared against the threshold)."""

    key: FlowKey
    score: Score
    residual: Score


class Flowtree:
    """A mergeable, compressible summary of a flow stream.

    Parameters
    ----------
    policy:
        The canonical generalization chain.  Trees are only combinable
        when their policies are compatible.
    node_budget:
        Maximum number of live nodes before self-compression kicks in.
        ``None`` disables the budget (the tree grows without bound).
    compress_ratio:
        When self-compression runs it prunes down to
        ``compress_ratio * node_budget`` nodes so that inserts do not
        trigger compression on every call.
    metric:
        Which popularity counter (``packets``/``bytes``/``flows``) drives
        compression decisions and is the default for ranking operators.
    """

    def __init__(
        self,
        policy: GeneralizationPolicy,
        node_budget: Optional[int] = 4096,
        compress_ratio: float = 0.8,
        metric: str = "bytes",
    ) -> None:
        if node_budget is not None and node_budget < policy.depth + 1:
            raise GranularityError(
                f"node budget {node_budget} cannot hold a single root-to-leaf "
                f"chain of depth {policy.depth}"
            )
        if not 0.0 < compress_ratio <= 1.0:
            raise GranularityError(
                f"compress ratio must be in (0, 1], got {compress_ratio}"
            )
        _subtree_attr(metric)  # validate the metric name early
        self.policy = policy
        self.schema = policy.schema
        self.node_budget = node_budget
        self.compress_ratio = compress_ratio
        self.metric = metric
        #: per-depth projectors, cached off the policy for the hot loop
        self._projectors = policy.projectors
        #: (depth, projector) pairs for depths 1..max — the ingest walk
        #: iterates this directly instead of indexing per level
        self._chain = tuple(
            (d, policy.projectors[d]) for d in range(1, policy.depth + 1)
        )
        self._node_bytes = _NODE_BYTES_FIXED + _NODE_BYTES_PER_FEATURE * len(
            self.schema
        )
        self._next_seq = 1
        root = FlowtreeNode(0, self._projectors[0]((0,) * len(self.schema)))
        self._nodes: Dict[NodeId, FlowtreeNode] = {root.node_id: root}
        self._root = root
        self._compressions = 0
        #: persistent least-popular-leaf heap; ``None`` until the first
        #: compression pass builds it (unbudgeted trees never pay for it)
        self._leaf_heap: Optional[List[Tuple[int, int, NodeId]]] = None
        self._heap_attr = _SUBTREE_ATTR[metric]
        #: nodes created since the last compression pass; their heap
        #: entries are deferred to the next pass so they enter at their
        #: then-current popularity instead of a guaranteed-stale zero
        self._heap_pending: List[FlowtreeNode] = []

    # ------------------------------------------------------------------
    # introspection

    @property
    def root(self) -> FlowtreeNode:
        """The all-wildcard root node."""
        return self._root

    @property
    def node_count(self) -> int:
        """Number of live nodes (including the root)."""
        return len(self._nodes)

    @property
    def compressions(self) -> int:
        """How many self-compression passes have run."""
        return self._compressions

    def total(self) -> Score:
        """Total ingested popularity mass (the root's popularity)."""
        return self._root.subtree

    def nodes(self) -> Iterator[FlowtreeNode]:
        """Iterate over all live nodes in unspecified order."""
        return iter(self._nodes.values())

    def key_of(self, node: FlowtreeNode) -> FlowKey:
        """Reconstruct the :class:`FlowKey` a node stands for."""
        return FlowKey(self.schema, node.values, self.policy.levels_at(node.depth))

    def find(self, key: FlowKey) -> Optional[FlowtreeNode]:
        """Look up the node for an on-chain key, if present."""
        depth = self.policy.depth_of(key.levels)
        if depth is None:
            return None
        return self._nodes.get((depth, key.values))

    def estimated_size_bytes(self) -> int:
        """Approximate wire size of the serialized tree.

        Used by the data store and the replication engine for transfer
        accounting.  The per-node cost is fixed by the schema, computed
        once at construction.
        """
        return self._node_bytes * self.node_count

    # ------------------------------------------------------------------
    # ingest

    def add(self, key: FlowKey, score: Score) -> None:
        """Add popularity mass for a key.

        Generalized (on-chain) keys are accepted; mass lands at the key's
        canonical depth and counts toward every ancestor.
        """
        self._add_record(key, score)
        self._maybe_self_compress()

    def add_flow(self, record: FlowRecord) -> None:
        """Ingest one exported flow record."""
        self.add(record.key, record.score())

    def add_packet(self, record: PacketRecord) -> None:
        """Ingest one (possibly sampled) packet observation."""
        self.add(record.key, record.score())

    def ingest(self, records: Iterable[FlowRecord]) -> int:
        """Ingest many flow records; returns how many were consumed.

        The node budget is enforced with a bounded overshoot: inside the
        batch the tree may briefly grow past ``node_budget`` (by at most
        ``max(64, node_budget // 8)`` nodes) before a compression pass
        runs, and the budget always holds again when this returns.
        """
        return self.add_many((record.key, record.score()) for record in records)

    def ingest_columnar(self, batch, finalize: bool = True) -> int:
        """Ingest a :class:`~repro.flows.columnar.ColumnarBatch`.

        Bit-identical to :meth:`ingest` over the decoded records — same
        nodes, seq numbers, and compression passes — but the per-depth
        projector walk runs vectorized over the batch's columns (see
        :func:`repro.flows.columnar.ingest_batch`).  ``finalize=False``
        defers the trailing budget-restoring compress, for callers
        streaming several chunks of one logical batch.
        """
        from repro.flows.columnar import ingest_batch

        return ingest_batch(self, batch, finalize=finalize)

    def add_many(
        self, items: Iterable[Tuple[FlowKey, Score]], finalize: bool = True
    ) -> int:
        """Batched :meth:`add` over ``(key, score)`` pairs.

        Same bounded-overshoot budget behavior as :meth:`ingest`.
        Returns the number of pairs consumed.  ``finalize=False`` skips
        only the final back-to-budget compress (the mid-batch overshoot
        checks still run) so a caller splitting one logical batch across
        several calls compresses exactly as a single call would.
        """
        budget = self.node_budget
        count = 0
        # validation inlined from _add_record: one call layer per record
        # matters at this loop's volume
        schema_name = self.schema.name
        depth_of = self.policy.depth_of
        add_values = self._add_values
        if budget is None:
            for key, score in items:
                if key.schema.name != schema_name:
                    raise SchemaMismatchError(
                        f"key schema {key.schema.name!r} != tree schema "
                        f"{schema_name!r}"
                    )
                depth = depth_of(key.levels)
                if depth is None:
                    raise GranularityError(
                        f"key levels {key.levels} are not on the canonical "
                        f"chain"
                    )
                add_values(
                    key.values, depth, score.packets, score.bytes, score.flows
                )
                count += 1
            return count
        overshoot = budget + max(64, budget // 8)
        nodes = self._nodes
        for key, score in items:
            if key.schema.name != schema_name:
                raise SchemaMismatchError(
                    f"key schema {key.schema.name!r} != tree schema "
                    f"{schema_name!r}"
                )
            depth = depth_of(key.levels)
            if depth is None:
                raise GranularityError(
                    f"key levels {key.levels} are not on the canonical chain"
                )
            add_values(
                key.values, depth, score.packets, score.bytes, score.flows
            )
            count += 1
            if len(nodes) > overshoot:
                self.compress(
                    target_nodes=int(budget * self.compress_ratio)
                )
                self._compressions += 1
        if finalize:
            self._maybe_self_compress()
        return count

    def _add_record(self, key: FlowKey, score: Score) -> None:
        """Validate and apply one insert, without the budget check."""
        if key.schema.name != self.schema.name:
            raise SchemaMismatchError(
                f"key schema {key.schema.name!r} != tree schema "
                f"{self.schema.name!r}"
            )
        depth = self.policy.depth_of(key.levels)
        if depth is None:
            raise GranularityError(
                f"key levels {key.levels} are not on the canonical chain"
            )
        self._add_values(
            key.values, depth, score.packets, score.bytes, score.flows
        )

    def _add_values(
        self,
        values: Sequence[int],
        depth: int,
        packets: int,
        nbytes: int,
        flows: int,
    ) -> None:
        """The single-pass ingest walk.

        Projects the chain once per level and reuses it for node
        creation, subtree bubbling, and the final ``own`` update.  The
        walk descends through child dicts (keyed by projected values)
        rather than the global node index, so no ``(depth, values)``
        key tuples are built per level.
        """
        chain = self._chain if depth == len(self._chain) else self._chain[:depth]
        node = self._root
        node.subtree_packets += packets
        node.subtree_bytes += nbytes
        node.subtree_flows += flows
        for d, project in chain:
            projected = project(values)
            child = node.children.get(projected)
            if child is None:
                child = self._new_node(d, projected, node)
            child.subtree_packets += packets
            child.subtree_bytes += nbytes
            child.subtree_flows += flows
            node = child
        node.own_packets += packets
        node.own_bytes += nbytes
        node.own_flows += flows

    def _new_node(
        self, depth: int, values: Tuple[int, ...], parent: FlowtreeNode
    ) -> FlowtreeNode:
        """Create, register and heap-track one node."""
        node = FlowtreeNode(depth, values, self._next_seq, parent)
        self._next_seq += 1
        self._nodes[(depth, values)] = node
        parent.children[values] = node
        if self._leaf_heap is not None:
            self._heap_pending.append(node)
        return node

    def _ensure_chain(self, values: Sequence[int], depth: int) -> FlowtreeNode:
        """Create any missing ancestors and return the node at ``depth``."""
        parent = self._root
        nodes = self._nodes
        projectors = self._projectors
        for d in range(1, depth + 1):
            projected = projectors[d](values)
            node = nodes.get((d, projected))
            if node is None:
                node = self._new_node(d, projected, parent)
            parent = node
        return parent

    def _bubble(
        self,
        values: Sequence[int],
        depth: int,
        packets: int,
        nbytes: int,
        flows: int,
    ) -> None:
        """Add mass to the subtree totals of the chain down to ``depth``."""
        node = self._root
        node.subtree_packets += packets
        node.subtree_bytes += nbytes
        node.subtree_flows += flows
        nodes = self._nodes
        projectors = self._projectors
        for d in range(1, depth + 1):
            node = nodes[(d, projectors[d](values))]
            node.subtree_packets += packets
            node.subtree_bytes += nbytes
            node.subtree_flows += flows

    # ------------------------------------------------------------------
    # Compress

    def _maybe_self_compress(self) -> None:
        if self.node_budget is not None and self.node_count > self.node_budget:
            self.compress(target_nodes=int(self.node_budget * self.compress_ratio))
            self._compressions += 1

    def compress(
        self,
        target_nodes: Optional[int] = None,
        ratio: Optional[float] = None,
        metric: Optional[str] = None,
    ) -> int:
        """Fold least-popular leaves into their parents (Table II).

        Exactly one of ``target_nodes``/``ratio`` selects the goal; with
        neither given the tree compresses to its budget (or halves, if
        unbudgeted).  Returns the number of nodes removed.  Mass is
        preserved: a folded leaf's popularity moves into its parent's
        ``folded`` counter.

        Leaves fold in ``(metric, creation order)`` order.  The min-heap
        backing that order persists across passes: node creation pushes
        an entry, and entries are revalidated lazily on pop (stale
        popularity re-pushes, dead or non-leaf nodes are discarded), so
        a pass costs O(folds log n) instead of O(live nodes).
        """
        if target_nodes is not None and ratio is not None:
            raise GranularityError("give either target_nodes or ratio, not both")
        if ratio is not None:
            if not 0.0 < ratio <= 1.0:
                raise GranularityError(f"ratio must be in (0, 1], got {ratio}")
            target_nodes = max(1, int(self.node_count * ratio))
        if target_nodes is None:
            target_nodes = (
                int(self.node_budget * self.compress_ratio)
                if self.node_budget is not None
                else max(1, self.node_count // 2)
            )
        metric_name = metric or self.metric
        attr = _subtree_attr(metric_name)
        nodes = self._nodes
        if len(nodes) <= target_nodes:
            return 0

        heap = self._leaf_heap
        if (
            heap is None
            or attr != self._heap_attr
            or len(heap) > 4 * len(nodes) + 1024
        ):
            # first pass, metric switch, or too much accumulated
            # staleness: (re)build from the live leaves
            heap = [
                (getattr(node, attr), node.seq, (node.depth, node.values))
                for node in nodes.values()
                if node.depth > 0 and not node.children
            ]
            heapq.heapify(heap)
            self._leaf_heap = heap
            self._heap_attr = attr
            self._heap_pending.clear()
        elif self._heap_pending:
            # nodes born since the last pass enter at current popularity
            for node in self._heap_pending:
                if not node.children:
                    heapq.heappush(
                        heap,
                        (getattr(node, attr), node.seq, (node.depth, node.values)),
                    )
            self._heap_pending.clear()

        heappop = heapq.heappop
        heappush = heapq.heappush
        removed = 0
        while len(nodes) > target_nodes and heap:
            value, seq, node_id = heappop(heap)
            node = nodes.get(node_id)
            if (
                node is None
                or node.seq != seq
                or node.children
                or node.depth == 0
            ):
                continue
            current = getattr(node, attr)
            if current != value:
                heappush(heap, (current, seq, node_id))
                continue
            parent = node.parent
            parent.folded_packets += node.own_packets + node.folded_packets
            parent.folded_bytes += node.own_bytes + node.folded_bytes
            parent.folded_flows += node.own_flows + node.folded_flows
            del parent.children[node.values]
            del nodes[node_id]
            removed += 1
            if parent.depth > 0 and not parent.children:
                heappush(
                    heap,
                    (getattr(parent, attr), parent.seq, (parent.depth, parent.values)),
                )
        return removed

    def _parent_of(self, node: FlowtreeNode) -> FlowtreeNode:
        if node.parent is not None:
            return node.parent
        projected = self._projectors[node.depth - 1](node.values)
        return self._nodes[(node.depth - 1, projected)]

    # ------------------------------------------------------------------
    # Merge / Diff

    def _check_compatible(self, other: "Flowtree") -> None:
        if not self.policy.compatible_with(other.policy):
            raise SchemaMismatchError(
                "cannot combine Flowtrees with incompatible schemas/policies "
                f"({self.schema.name!r} vs {other.schema.name!r})"
            )

    def _absorb(self, other: "Flowtree", sign: int) -> None:
        """Fold ``other`` in with a top-down walk over paired nodes.

        Because both trees share one canonical chain, a node of
        ``other`` maps onto the node of ``self`` with the same (depth,
        values) — no re-projection is needed, and each pair's subtree
        totals transfer wholesale in one visit (every descendant of
        theirs lands under the paired node of ours).
        """
        stack = [(self._root, other._root)]
        while stack:
            mine, theirs = stack.pop()
            mine.own_packets += sign * theirs.own_packets
            mine.own_bytes += sign * theirs.own_bytes
            mine.own_flows += sign * theirs.own_flows
            mine.folded_packets += sign * theirs.folded_packets
            mine.folded_bytes += sign * theirs.folded_bytes
            mine.folded_flows += sign * theirs.folded_flows
            mine.subtree_packets += sign * theirs.subtree_packets
            mine.subtree_bytes += sign * theirs.subtree_bytes
            mine.subtree_flows += sign * theirs.subtree_flows
            children = mine.children
            for values, their_child in theirs.children.items():
                my_child = children.get(values)
                if my_child is None:
                    my_child = self._new_node(their_child.depth, values, mine)
                stack.append((my_child, their_child))

    def merge(self, other: "Flowtree") -> None:
        """Fold ``other`` into this tree in place (Table II: Merge).

        The paper requires merged trees to share either the time period
        or the location; that bookkeeping lives in the summary wrapper
        (:mod:`repro.core.flowtree`) — the data structure itself only
        requires compatible schemas.
        """
        self._check_compatible(other)
        if other is self:
            other = self.copy()
        self._absorb(other, 1)
        self._maybe_self_compress()

    @classmethod
    def merged(cls, first: "Flowtree", second: "Flowtree") -> "Flowtree":
        """Return ``compress(first ∪ second)`` as a new tree."""
        result = cls(
            first.policy,
            node_budget=first.node_budget,
            compress_ratio=first.compress_ratio,
            metric=first.metric,
        )
        result.merge(first)
        result.merge(second)
        return result

    def diff(self, other: "Flowtree") -> "Flowtree":
        """Subtract ``other``'s popularity from this tree (Table II: Diff).

        The result is unbudgeted and may contain negative scores — that is
        the point: a negative node marks traffic that shrank between the
        two summaries, a positive one traffic that grew.
        """
        self._check_compatible(other)
        result = Flowtree(
            self.policy, node_budget=None, compress_ratio=1.0, metric=self.metric
        )
        result._absorb(self, 1)
        result._absorb(other, -1)
        return result

    # ------------------------------------------------------------------
    # Query / Drilldown / Top-k / Above-x / HHH

    def query(self, key: FlowKey) -> Score:
        """The popularity score of a single flow (Table II: Query).

        On-chain keys resolve to their node directly.  Off-chain
        generalized keys are answered by summing the nodes at the
        shallowest canonical depth specific enough to be masked up to the
        query — mass already folded above that depth is missed, so
        off-chain answers are lower bounds (exact on uncompressed trees).
        """
        if key.schema.name != self.schema.name:
            raise SchemaMismatchError(
                f"key schema {key.schema.name!r} != tree schema "
                f"{self.schema.name!r}"
            )
        node_depth = self.policy.depth_of(key.levels)
        if node_depth is not None:
            node = self._nodes.get((node_depth, key.values))
            return node.subtree if node is not None else Score.zero()
        depth = self.policy.shallowest_covering_depth(key.levels)
        packets = nbytes = flows = 0
        for node in self._nodes.values():
            if node.depth != depth:
                continue
            if key.contains(self.key_of(node)):
                packets += node.subtree_packets
                nbytes += node.subtree_bytes
                flows += node.subtree_flows
        return Score(packets, nbytes, flows)

    def query_with_bound(self, key: FlowKey) -> Tuple[Score, Score]:
        """Point query with deterministic error bounds.

        Returns ``(lower, upper)`` such that the true popularity of the
        (on-chain) key satisfies ``lower <= true <= upper`` whatever
        compression happened.  The lower bound is the live node's
        subtree score (0 if the node is gone); the upper bound adds the
        ``folded`` mass of every live ancestor on the key's path — the
        only places compression can have parked this key's popularity.
        (A compressed-away node may later be *recreated* by new inserts,
        so even a live node's earlier mass can sit in an ancestor's
        fold; the ancestor sum covers that case soundly.)

        This is the quantitative form of "the Flowtree does not provide
        exact summaries [but] allows us to distinguish heavy hitters
        from non-popular flows": bounds are tight exactly where no
        folding happened on the path, and a vanished key is provably no
        heavier than the folds above it.
        """
        if key.schema.name != self.schema.name:
            raise SchemaMismatchError(
                f"key schema {key.schema.name!r} != tree schema "
                f"{self.schema.name!r}"
            )
        depth = self.policy.depth_of(key.levels)
        if depth is None:
            raise GranularityError(
                f"query_with_bound needs an on-chain key, got levels "
                f"{key.levels}"
            )
        node = self._nodes.get((depth, key.values))
        lower = node.subtree if node is not None else Score.zero()
        ancestor_fold = self._root.folded
        for d in range(1, depth):
            projected = self._projectors[d](key.values)
            candidate = self._nodes.get((d, projected))
            if candidate is None:
                break
            ancestor_fold = ancestor_fold + candidate.folded
        return lower, lower + ancestor_fold

    def drilldown(self, key: FlowKey) -> List[Tuple[FlowKey, Score]]:
        """Children of a flow with their scores (Table II: Drilldown)."""
        node = self.find(key)
        if node is None:
            return []
        children = [
            (self.key_of(child), child.subtree)
            for child in node.children.values()
        ]
        children.sort(
            key=lambda pair: (-pair[1].metric(self.metric), pair[0].values)
        )
        return children

    def top_k(
        self,
        k: int,
        depth: Optional[int] = None,
        metric: Optional[str] = None,
    ) -> List[Tuple[FlowKey, Score]]:
        """The ``k`` most popular flows (Table II: Top-k).

        ``depth`` selects the generalization level to rank (default: the
        fully-specific leaf level).  Ties break on key values so results
        are deterministic.
        """
        if k <= 0:
            return []
        depth = self.policy.depth if depth is None else depth
        attr = _subtree_attr(metric or self.metric)
        candidates = [
            node for node in self._nodes.values() if node.depth == depth
        ]
        candidates.sort(key=lambda n: (-getattr(n, attr), n.values))
        return [(self.key_of(node), node.subtree) for node in candidates[:k]]

    def above_x(
        self,
        x: int,
        depth: Optional[int] = None,
        metric: Optional[str] = None,
        include_root: bool = False,
    ) -> List[Tuple[FlowKey, Score]]:
        """All flows with popularity above ``x`` (Table II: Above-x)."""
        attr = _subtree_attr(metric or self.metric)
        results = []
        for node in self._nodes.values():
            if node.depth == 0 and not include_root:
                continue
            if depth is not None and node.depth != depth:
                continue
            if getattr(node, attr) > x:
                results.append((node.values, getattr(node, attr), node))
        results.sort(key=lambda item: (-item[1], item[0]))
        return [(self.key_of(node), node.subtree) for _, _, node in results]

    def aggregate_by_feature(
        self,
        feature_name: str,
        level: int,
        metric: Optional[str] = None,
        within: Optional[FlowKey] = None,
    ) -> List[Tuple[FlowKey, Score]]:
        """Group popularity by one generalized feature.

        Answers questions like "bytes per source /8" or "traffic per
        destination port": nodes at the shallowest canonical depth
        specific enough for ``(feature_name, level)`` are grouped by the
        feature's masked value (all other features wildcarded in the
        returned keys).  ``within`` restricts the aggregation to flows
        under a generalized key — e.g. sources attacking one victim.

        Like off-chain :meth:`query`, results are exact on uncompressed
        trees and lower bounds after compression.
        """
        index = self.schema.index_of(feature_name)
        feature = self.schema.features[index]
        wanted = [0] * len(self.schema)
        wanted[index] = level
        if within is not None:
            wanted = [max(w, l) for w, l in zip(wanted, within.levels)]
        depth = self.policy.shallowest_covering_depth(wanted)
        groups: Dict[Tuple[int, ...], Score] = {}
        metric_name = metric or self.metric
        for node in self._nodes.values():
            if node.depth != depth:
                continue
            if within is not None and not within.contains(self.key_of(node)):
                continue
            group_values = [0] * len(self.schema)
            group_values[index] = feature.mask(node.values[index], level)
            slot = tuple(group_values)
            groups[slot] = groups.get(slot, Score.zero()) + node.subtree
        levels = [0] * len(self.schema)
        levels[index] = level
        results = [
            (FlowKey(self.schema, values, tuple(levels)), score)
            for values, score in groups.items()
        ]
        results.sort(
            key=lambda pair: (-pair[1].metric(metric_name), pair[0].values)
        )
        return results

    def hhh(
        self,
        threshold: int,
        metric: Optional[str] = None,
    ) -> List[HHHResult]:
        """Hierarchical heavy hitters (Table II: HHH).

        Standard discounted definition: walking from the deepest nodes
        upward, a node is an HHH when its popularity *minus the
        popularity of already-reported HHH descendants* meets the
        threshold.  The root is included when the leftover, otherwise
        unattributed, mass is itself substantial.
        """
        metric_name = metric or self.metric
        attr = _subtree_attr(metric_name)
        discounted: Dict[NodeId, int] = {}
        results: List[HHHResult] = []
        for node in sorted(
            self._nodes.values(), key=lambda n: (-n.depth, n.values)
        ):
            discount = discounted.pop(node.node_id, 0)
            residual_value = getattr(node, attr) - discount
            parent_id: Optional[NodeId] = None
            if node.depth > 0:
                parent = self._parent_of(node)
                parent_id = parent.node_id
            if residual_value >= threshold:
                residual = Score(
                    **{
                        field: residual_value if field == metric_name else 0
                        for field in ("packets", "bytes", "flows")
                    }
                )
                results.append(
                    HHHResult(self.key_of(node), node.subtree, residual)
                )
                discount += residual_value
            if parent_id is not None and discount:
                discounted[parent_id] = discounted.get(parent_id, 0) + discount
        results.sort(
            key=lambda r: (-r.residual.metric(metric_name), r.key.values)
        )
        return results

    def subtree(self, key: FlowKey) -> "Flowtree":
        """Extract the summary of one generalized flow as a new tree.

        The result contains the node for ``key`` (projected onto the
        canonical chain) and all its descendants, re-rooted under the
        usual all-wildcard root.  This is how a data store ships a
        *partial* summary in answer to a sub-query — e.g. "give me your
        view of prefix 10.0.0.0/8" — without exporting the whole tree.
        """
        depth = self.policy.depth_of(key.levels)
        if depth is None:
            depth = self.policy.nearest_depth_at_or_above(key.levels)
            key = self.policy.key_at(key, depth)
        result = Flowtree(
            self.policy, node_budget=None, compress_ratio=1.0,
            metric=self.metric,
        )
        anchor = self._nodes.get((depth, key.values))
        if anchor is None:
            return result
        frontier = [anchor]
        while frontier:
            node = frontier.pop()
            contribution = node.own + node.folded
            if not contribution.is_zero():
                result.add(self.key_of(node), contribution)
            frontier.extend(node.children.values())
        return result

    # ------------------------------------------------------------------
    # copy / serialization

    def copy(self) -> "Flowtree":
        """A deep, independent copy of the tree."""
        clone = Flowtree(
            self.policy,
            node_budget=self.node_budget,
            compress_ratio=self.compress_ratio,
            metric=self.metric,
        )
        clone._absorb(self, 1)
        return clone

    def snapshot_state(self) -> dict:
        """An exact structural snapshot for same-process-family transfer.

        Unlike :meth:`to_dict` (a canonical JSON form that forgets
        creation order), this preserves every node's ``seq`` and the
        child-dict insertion order, so a tree restored with
        :meth:`restore_state` compresses, merges, and serializes
        *bit-identically* to the original.  This is the contract
        process-parallel ingest (:mod:`repro.parallel`) relies on when a
        worker ships its epoch tree back to the parent.  The payload is
        plain tuples/ints — picklable without the policy (the restorer
        supplies its own, compatible one).
        """
        return {
            "schema": self.schema.name,
            "node_budget": self.node_budget,
            "compress_ratio": self.compress_ratio,
            "metric": self.metric,
            "next_seq": self._next_seq,
            "compressions": self._compressions,
            "nodes": [
                (
                    node.depth,
                    node.values,
                    node.seq,
                    node.own_packets,
                    node.own_bytes,
                    node.own_flows,
                    node.folded_packets,
                    node.folded_bytes,
                    node.folded_flows,
                )
                for node in sorted(
                    self._nodes.values(), key=lambda n: n.seq
                )
            ],
        }

    @classmethod
    def restore_state(
        cls, policy: GeneralizationPolicy, state: dict
    ) -> "Flowtree":
        """Rebuild the exact tree captured by :meth:`snapshot_state`.

        Nodes are recreated in ``seq`` order — a parent's seq always
        precedes its children's, and creation order *is* dict insertion
        order — so the restored tree's iteration, compression
        tie-breaking, and merge behavior match the original exactly.
        """
        if state["schema"] != policy.schema.name:
            raise SchemaMismatchError(
                f"snapshot schema {state['schema']!r} != policy schema "
                f"{policy.schema.name!r}"
            )
        tree = cls(
            policy,
            node_budget=state["node_budget"],
            compress_ratio=state["compress_ratio"],
            metric=state["metric"],
        )
        nodes = tree._nodes
        projectors = tree._projectors
        created: List[FlowtreeNode] = []
        for entry in state["nodes"]:
            depth, values, seq = entry[0], tuple(entry[1]), entry[2]
            if depth == 0:
                node = tree._root
                node.seq = seq
            else:
                parent = nodes[(depth - 1, projectors[depth - 1](values))]
                node = FlowtreeNode(depth, values, seq, parent)
                nodes[(depth, values)] = node
                parent.children[values] = node
            (
                node.own_packets,
                node.own_bytes,
                node.own_flows,
                node.folded_packets,
                node.folded_bytes,
                node.folded_flows,
            ) = entry[3:9]
            node.subtree_packets = node.own_packets + node.folded_packets
            node.subtree_bytes = node.own_bytes + node.folded_bytes
            node.subtree_flows = node.own_flows + node.folded_flows
            created.append(node)
        # children carry higher seqs than their parents, so one reverse
        # sweep accumulates every subtree bottom-up
        for node in reversed(created):
            parent = node.parent
            if parent is not None:
                parent.subtree_packets += node.subtree_packets
                parent.subtree_bytes += node.subtree_bytes
                parent.subtree_flows += node.subtree_flows
        tree._next_seq = state["next_seq"]
        tree._compressions = state["compressions"]
        return tree

    def to_dict(self) -> dict:
        """A JSON-safe representation, used for export and replication."""
        return {
            "schema": self.schema.name,
            "level_vectors": [list(v) for v in self.policy.level_vectors],
            "node_budget": self.node_budget,
            "compress_ratio": self.compress_ratio,
            "metric": self.metric,
            "nodes": [
                {
                    "depth": node.depth,
                    "values": list(node.values),
                    "own": [node.own_packets, node.own_bytes, node.own_flows],
                    "folded": [
                        node.folded_packets,
                        node.folded_bytes,
                        node.folded_flows,
                    ],
                }
                for node in sorted(
                    self._nodes.values(), key=lambda n: (n.depth, n.values)
                )
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict, policy: GeneralizationPolicy) -> "Flowtree":
        """Rebuild a tree serialized with :meth:`to_dict`.

        The caller supplies the policy (schemas hold feature objects that
        do not round-trip through JSON); its shape is validated against
        the payload.
        """
        if payload["schema"] != policy.schema.name:
            raise SchemaMismatchError(
                f"payload schema {payload['schema']!r} != policy schema "
                f"{policy.schema.name!r}"
            )
        vectors = [tuple(v) for v in payload["level_vectors"]]
        if vectors != list(policy.level_vectors):
            raise SchemaMismatchError(
                "payload level vectors do not match the supplied policy"
            )
        tree = cls(
            policy,
            node_budget=payload["node_budget"],
            compress_ratio=payload["compress_ratio"],
            metric=payload["metric"],
        )
        for entry in sorted(payload["nodes"], key=lambda e: e["depth"]):
            depth = entry["depth"]
            values = tuple(entry["values"])
            own_packets, own_bytes, own_flows = entry["own"]
            folded_packets, folded_bytes, folded_flows = entry["folded"]
            node = tree._ensure_chain(values, depth) if depth else tree._root
            node.own_packets += own_packets
            node.own_bytes += own_bytes
            node.own_flows += own_flows
            node.folded_packets += folded_packets
            node.folded_bytes += folded_bytes
            node.folded_flows += folded_flows
            packets = own_packets + folded_packets
            nbytes = own_bytes + folded_bytes
            flows = own_flows + folded_flows
            if packets or nbytes or flows:
                tree._bubble(values, depth, packets, nbytes, flows)
        return tree

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flowtree(schema={self.schema.name!r}, nodes={self.node_count}, "
            f"total={self.total()})"
        )

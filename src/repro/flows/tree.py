"""Flowtree: the self-adjusting tree of generalized flows.

This module implements the computing primitive of Section VI with the
eight operators of Table II:

=========  ====================================================
Operator   Method
=========  ====================================================
Merge      :meth:`Flowtree.merge` / :meth:`Flowtree.merged`
Compress   :meth:`Flowtree.compress`
Diff       :meth:`Flowtree.diff`
Query      :meth:`Flowtree.query`
Drilldown  :meth:`Flowtree.drilldown`
Top-k      :meth:`Flowtree.top_k`
Above-x    :meth:`Flowtree.above_x`
HHH        :meth:`Flowtree.hhh`
=========  ====================================================

Structure.  Every observed flow and every canonical generalization of it
is a node; a node's parent is its most-specific canonical generalization
(one step up the :class:`~repro.flows.flowkey.GeneralizationPolicy`
chain).  Each node carries:

* ``own`` — mass inserted directly at this key,
* ``folded`` — mass absorbed from compressed (pruned) descendants, and
* ``subtree`` — the node's *popularity score*: ``own + folded`` plus the
  popularity of all live descendants, maintained incrementally.

Self-adjustment.  The tree enforces a node budget: when an insert pushes
the node count past ``node_budget`` the tree compresses itself by
repeatedly folding the least-popular leaf into its parent, down to
``compress_ratio * node_budget`` nodes.  Popularity mass is never lost —
it only loses specificity — so the root's popularity always equals the
total ingested mass (an invariant the property-based tests pin down).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GranularityError, SchemaMismatchError
from repro.flows.flowkey import FlowKey, GeneralizationPolicy
from repro.flows.records import FlowRecord, PacketRecord, Score

NodeId = Tuple[int, Tuple[int, ...]]

#: Approximate serialized footprint of one node, used for transfer
#: accounting: depth + per-feature value + three 8-byte counters (twice,
#: for own and folded).
_NODE_BYTES_FIXED = 4 + 2 * 3 * 8
_NODE_BYTES_PER_FEATURE = 4


class FlowtreeNode:
    """One generalized flow inside a :class:`Flowtree`."""

    __slots__ = ("depth", "values", "own", "folded", "subtree", "children")

    def __init__(self, depth: int, values: Tuple[int, ...]) -> None:
        self.depth = depth
        self.values = values
        self.own = Score.zero()
        self.folded = Score.zero()
        self.subtree = Score.zero()
        self.children: Dict[Tuple[int, ...], "FlowtreeNode"] = {}

    @property
    def node_id(self) -> NodeId:
        """The node's identity within its tree."""
        return (self.depth, self.values)

    def is_leaf(self) -> bool:
        """True when the node currently has no live children."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlowtreeNode(depth={self.depth}, values={self.values}, "
            f"subtree={self.subtree})"
        )


@dataclass(frozen=True)
class HHHResult:
    """One hierarchical heavy hitter: its key, full popularity score, and
    the *residual* score after discounting already-reported HHH
    descendants (the quantity compared against the threshold)."""

    key: FlowKey
    score: Score
    residual: Score


class Flowtree:
    """A mergeable, compressible summary of a flow stream.

    Parameters
    ----------
    policy:
        The canonical generalization chain.  Trees are only combinable
        when their policies are compatible.
    node_budget:
        Maximum number of live nodes before self-compression kicks in.
        ``None`` disables the budget (the tree grows without bound).
    compress_ratio:
        When self-compression runs it prunes down to
        ``compress_ratio * node_budget`` nodes so that inserts do not
        trigger compression on every call.
    metric:
        Which popularity counter (``packets``/``bytes``/``flows``) drives
        compression decisions and is the default for ranking operators.
    """

    def __init__(
        self,
        policy: GeneralizationPolicy,
        node_budget: Optional[int] = 4096,
        compress_ratio: float = 0.8,
        metric: str = "bytes",
    ) -> None:
        if node_budget is not None and node_budget < policy.depth + 1:
            raise GranularityError(
                f"node budget {node_budget} cannot hold a single root-to-leaf "
                f"chain of depth {policy.depth}"
            )
        if not 0.0 < compress_ratio <= 1.0:
            raise GranularityError(
                f"compress ratio must be in (0, 1], got {compress_ratio}"
            )
        Score.zero().metric(metric)  # validate the metric name early
        self.policy = policy
        self.schema = policy.schema
        self.node_budget = node_budget
        self.compress_ratio = compress_ratio
        self.metric = metric
        root = FlowtreeNode(0, self.policy.project((0,) * len(self.schema), 0))
        self._nodes: Dict[NodeId, FlowtreeNode] = {root.node_id: root}
        self._root = root
        self._compressions = 0

    # ------------------------------------------------------------------
    # introspection

    @property
    def root(self) -> FlowtreeNode:
        """The all-wildcard root node."""
        return self._root

    @property
    def node_count(self) -> int:
        """Number of live nodes (including the root)."""
        return len(self._nodes)

    @property
    def compressions(self) -> int:
        """How many self-compression passes have run."""
        return self._compressions

    def total(self) -> Score:
        """Total ingested popularity mass (the root's popularity)."""
        return self._root.subtree

    def nodes(self) -> Iterator[FlowtreeNode]:
        """Iterate over all live nodes in unspecified order."""
        return iter(self._nodes.values())

    def key_of(self, node: FlowtreeNode) -> FlowKey:
        """Reconstruct the :class:`FlowKey` a node stands for."""
        return FlowKey(self.schema, node.values, self.policy.levels_at(node.depth))

    def find(self, key: FlowKey) -> Optional[FlowtreeNode]:
        """Look up the node for an on-chain key, if present."""
        depth = self.policy.depth_of(key.levels)
        if depth is None:
            return None
        return self._nodes.get((depth, key.values))

    def estimated_size_bytes(self) -> int:
        """Approximate wire size of the serialized tree.

        Used by the data store and the replication engine for transfer
        accounting.
        """
        per_node = _NODE_BYTES_FIXED + _NODE_BYTES_PER_FEATURE * len(self.schema)
        return per_node * self.node_count

    # ------------------------------------------------------------------
    # ingest

    def add(self, key: FlowKey, score: Score) -> None:
        """Add popularity mass for a key.

        Generalized (on-chain) keys are accepted; mass lands at the key's
        canonical depth and counts toward every ancestor.
        """
        if key.schema.name != self.schema.name:
            raise SchemaMismatchError(
                f"key schema {key.schema.name!r} != tree schema "
                f"{self.schema.name!r}"
            )
        depth = self.policy.depth_of(key.levels)
        if depth is None:
            raise GranularityError(
                f"key levels {key.levels} are not on the canonical chain"
            )
        node = self._ensure_chain(key.values, depth)
        node.own = node.own + score
        self._bubble(node.values, depth, score)
        self._maybe_self_compress()

    def add_flow(self, record: FlowRecord) -> None:
        """Ingest one exported flow record."""
        self.add(record.key, record.score())

    def add_packet(self, record: PacketRecord) -> None:
        """Ingest one (possibly sampled) packet observation."""
        self.add(record.key, record.score())

    def ingest(self, records: Iterable[FlowRecord]) -> int:
        """Ingest many flow records; returns how many were consumed."""
        count = 0
        for record in records:
            self.add_flow(record)
            count += 1
        return count

    def _ensure_chain(self, values: Sequence[int], depth: int) -> FlowtreeNode:
        """Create any missing ancestors and return the node at ``depth``."""
        parent = self._root
        for d in range(1, depth + 1):
            projected = self.policy.project(values, d)
            node = self._nodes.get((d, projected))
            if node is None:
                node = FlowtreeNode(d, projected)
                self._nodes[node.node_id] = node
                parent.children[projected] = node
            parent = node
        return parent

    def _bubble(self, values: Sequence[int], depth: int, score: Score) -> None:
        """Add ``score`` to the subtree totals of the node and ancestors."""
        for d in range(depth + 1):
            projected = self.policy.project(values, d)
            self._nodes[(d, projected)].subtree = (
                self._nodes[(d, projected)].subtree + score
            )

    # ------------------------------------------------------------------
    # Compress

    def _maybe_self_compress(self) -> None:
        if self.node_budget is not None and self.node_count > self.node_budget:
            self.compress(target_nodes=int(self.node_budget * self.compress_ratio))
            self._compressions += 1

    def compress(
        self,
        target_nodes: Optional[int] = None,
        ratio: Optional[float] = None,
        metric: Optional[str] = None,
    ) -> int:
        """Fold least-popular leaves into their parents (Table II).

        Exactly one of ``target_nodes``/``ratio`` selects the goal; with
        neither given the tree compresses to its budget (or halves, if
        unbudgeted).  Returns the number of nodes removed.  Mass is
        preserved: a folded leaf's popularity moves into its parent's
        ``folded`` counter.
        """
        if target_nodes is not None and ratio is not None:
            raise GranularityError("give either target_nodes or ratio, not both")
        if ratio is not None:
            if not 0.0 < ratio <= 1.0:
                raise GranularityError(f"ratio must be in (0, 1], got {ratio}")
            target_nodes = max(1, int(self.node_count * ratio))
        if target_nodes is None:
            target_nodes = (
                int(self.node_budget * self.compress_ratio)
                if self.node_budget is not None
                else max(1, self.node_count // 2)
            )
        metric_name = metric or self.metric
        if self.node_count <= target_nodes:
            return 0

        counter = itertools.count()
        heap: List[Tuple[int, int, NodeId]] = []
        for node in self._nodes.values():
            if node.depth > 0 and node.is_leaf():
                heapq.heappush(
                    heap,
                    (node.subtree.metric(metric_name), next(counter), node.node_id),
                )
        removed = 0
        while self.node_count > target_nodes and heap:
            _, _, node_id = heapq.heappop(heap)
            node = self._nodes.get(node_id)
            if node is None or not node.is_leaf() or node.depth == 0:
                continue
            parent = self._parent_of(node)
            parent.folded = parent.folded + node.own + node.folded
            del parent.children[node.values]
            del self._nodes[node_id]
            removed += 1
            if parent.depth > 0 and parent.is_leaf():
                heapq.heappush(
                    heap,
                    (
                        parent.subtree.metric(metric_name),
                        next(counter),
                        parent.node_id,
                    ),
                )
        return removed

    def _parent_of(self, node: FlowtreeNode) -> FlowtreeNode:
        projected = self.policy.project(node.values, node.depth - 1)
        return self._nodes[(node.depth - 1, projected)]

    # ------------------------------------------------------------------
    # Merge / Diff

    def _check_compatible(self, other: "Flowtree") -> None:
        if not self.policy.compatible_with(other.policy):
            raise SchemaMismatchError(
                "cannot combine Flowtrees with incompatible schemas/policies "
                f"({self.schema.name!r} vs {other.schema.name!r})"
            )

    def merge(self, other: "Flowtree") -> None:
        """Fold ``other`` into this tree in place (Table II: Merge).

        The paper requires merged trees to share either the time period
        or the location; that bookkeeping lives in the summary wrapper
        (:mod:`repro.core.flowtree`) — the data structure itself only
        requires compatible schemas.
        """
        self._check_compatible(other)
        if other is self:
            other = self.copy()
        for node in sorted(other._nodes.values(), key=lambda n: n.depth):
            if node.depth == 0:
                self._root.own = self._root.own + node.own
                self._root.folded = self._root.folded + node.folded
                self._root.subtree = self._root.subtree + node.subtree
                continue
            mine = self._ensure_chain(node.values, node.depth)
            mine.own = mine.own + node.own
            mine.folded = mine.folded + node.folded
            contribution = node.own + node.folded
            if not contribution.is_zero():
                # bubble only up to depth-1: node.subtree at depth 0 was
                # already added wholesale above.
                for d in range(1, node.depth + 1):
                    projected = self.policy.project(node.values, d)
                    target = self._nodes[(d, projected)]
                    target.subtree = target.subtree + contribution
        self._maybe_self_compress()

    @classmethod
    def merged(cls, first: "Flowtree", second: "Flowtree") -> "Flowtree":
        """Return ``compress(first ∪ second)`` as a new tree."""
        result = cls(
            first.policy,
            node_budget=first.node_budget,
            compress_ratio=first.compress_ratio,
            metric=first.metric,
        )
        result.merge(first)
        result.merge(second)
        return result

    def diff(self, other: "Flowtree") -> "Flowtree":
        """Subtract ``other``'s popularity from this tree (Table II: Diff).

        The result is unbudgeted and may contain negative scores — that is
        the point: a negative node marks traffic that shrank between the
        two summaries, a positive one traffic that grew.
        """
        self._check_compatible(other)
        result = Flowtree(
            self.policy, node_budget=None, compress_ratio=1.0, metric=self.metric
        )
        for source, sign in ((self, 1), (other, -1)):
            for node in sorted(source._nodes.values(), key=lambda n: n.depth):
                own = node.own if sign > 0 else -node.own
                folded = node.folded if sign > 0 else -node.folded
                if node.depth == 0:
                    result._root.own = result._root.own + own
                    result._root.folded = result._root.folded + folded
                    result._root.subtree = (
                        result._root.subtree + own + folded
                    )
                    continue
                mine = result._ensure_chain(node.values, node.depth)
                mine.own = mine.own + own
                mine.folded = mine.folded + folded
                contribution = own + folded
                if not contribution.is_zero():
                    result._bubble(node.values, node.depth, contribution)
        return result

    # ------------------------------------------------------------------
    # Query / Drilldown / Top-k / Above-x / HHH

    def query(self, key: FlowKey) -> Score:
        """The popularity score of a single flow (Table II: Query).

        On-chain keys resolve to their node directly.  Off-chain
        generalized keys are answered by summing the nodes at the
        shallowest canonical depth specific enough to be masked up to the
        query — mass already folded above that depth is missed, so
        off-chain answers are lower bounds (exact on uncompressed trees).
        """
        if key.schema.name != self.schema.name:
            raise SchemaMismatchError(
                f"key schema {key.schema.name!r} != tree schema "
                f"{self.schema.name!r}"
            )
        node_depth = self.policy.depth_of(key.levels)
        if node_depth is not None:
            node = self._nodes.get((node_depth, key.values))
            return node.subtree if node is not None else Score.zero()
        depth = self.policy.shallowest_covering_depth(key.levels)
        total = Score.zero()
        for node in self._nodes.values():
            if node.depth != depth:
                continue
            if key.contains(self.key_of(node)):
                total = total + node.subtree
        return total

    def query_with_bound(self, key: FlowKey) -> Tuple[Score, Score]:
        """Point query with deterministic error bounds.

        Returns ``(lower, upper)`` such that the true popularity of the
        (on-chain) key satisfies ``lower <= true <= upper`` whatever
        compression happened.  The lower bound is the live node's
        subtree score (0 if the node is gone); the upper bound adds the
        ``folded`` mass of every live ancestor on the key's path — the
        only places compression can have parked this key's popularity.
        (A compressed-away node may later be *recreated* by new inserts,
        so even a live node's earlier mass can sit in an ancestor's
        fold; the ancestor sum covers that case soundly.)

        This is the quantitative form of "the Flowtree does not provide
        exact summaries [but] allows us to distinguish heavy hitters
        from non-popular flows": bounds are tight exactly where no
        folding happened on the path, and a vanished key is provably no
        heavier than the folds above it.
        """
        if key.schema.name != self.schema.name:
            raise SchemaMismatchError(
                f"key schema {key.schema.name!r} != tree schema "
                f"{self.schema.name!r}"
            )
        depth = self.policy.depth_of(key.levels)
        if depth is None:
            raise GranularityError(
                f"query_with_bound needs an on-chain key, got levels "
                f"{key.levels}"
            )
        node = self._nodes.get((depth, key.values))
        lower = node.subtree if node is not None else Score.zero()
        ancestor_fold = self._root.folded
        for d in range(1, depth):
            projected = self.policy.project(key.values, d)
            candidate = self._nodes.get((d, projected))
            if candidate is None:
                break
            ancestor_fold = ancestor_fold + candidate.folded
        return lower, lower + ancestor_fold

    def drilldown(self, key: FlowKey) -> List[Tuple[FlowKey, Score]]:
        """Children of a flow with their scores (Table II: Drilldown)."""
        node = self.find(key)
        if node is None:
            return []
        children = [
            (self.key_of(child), child.subtree)
            for child in node.children.values()
        ]
        children.sort(
            key=lambda pair: (-pair[1].metric(self.metric), pair[0].values)
        )
        return children

    def top_k(
        self,
        k: int,
        depth: Optional[int] = None,
        metric: Optional[str] = None,
    ) -> List[Tuple[FlowKey, Score]]:
        """The ``k`` most popular flows (Table II: Top-k).

        ``depth`` selects the generalization level to rank (default: the
        fully-specific leaf level).  Ties break on key values so results
        are deterministic.
        """
        if k <= 0:
            return []
        depth = self.policy.depth if depth is None else depth
        metric_name = metric or self.metric
        candidates = [
            node for node in self._nodes.values() if node.depth == depth
        ]
        candidates.sort(key=lambda n: (-n.subtree.metric(metric_name), n.values))
        return [(self.key_of(node), node.subtree) for node in candidates[:k]]

    def above_x(
        self,
        x: int,
        depth: Optional[int] = None,
        metric: Optional[str] = None,
        include_root: bool = False,
    ) -> List[Tuple[FlowKey, Score]]:
        """All flows with popularity above ``x`` (Table II: Above-x)."""
        metric_name = metric or self.metric
        results = []
        for node in self._nodes.values():
            if node.depth == 0 and not include_root:
                continue
            if depth is not None and node.depth != depth:
                continue
            if node.subtree.metric(metric_name) > x:
                results.append((self.key_of(node), node.subtree))
        results.sort(
            key=lambda pair: (-pair[1].metric(metric_name), pair[0].values)
        )
        return results

    def aggregate_by_feature(
        self,
        feature_name: str,
        level: int,
        metric: Optional[str] = None,
        within: Optional[FlowKey] = None,
    ) -> List[Tuple[FlowKey, Score]]:
        """Group popularity by one generalized feature.

        Answers questions like "bytes per source /8" or "traffic per
        destination port": nodes at the shallowest canonical depth
        specific enough for ``(feature_name, level)`` are grouped by the
        feature's masked value (all other features wildcarded in the
        returned keys).  ``within`` restricts the aggregation to flows
        under a generalized key — e.g. sources attacking one victim.

        Like off-chain :meth:`query`, results are exact on uncompressed
        trees and lower bounds after compression.
        """
        index = self.schema.index_of(feature_name)
        feature = self.schema.features[index]
        wanted = [0] * len(self.schema)
        wanted[index] = level
        if within is not None:
            wanted = [max(w, l) for w, l in zip(wanted, within.levels)]
        depth = self.policy.shallowest_covering_depth(wanted)
        groups: Dict[Tuple[int, ...], Score] = {}
        metric_name = metric or self.metric
        for node in self._nodes.values():
            if node.depth != depth:
                continue
            if within is not None and not within.contains(self.key_of(node)):
                continue
            group_values = [0] * len(self.schema)
            group_values[index] = feature.mask(node.values[index], level)
            slot = tuple(group_values)
            groups[slot] = groups.get(slot, Score.zero()) + node.subtree
        levels = [0] * len(self.schema)
        levels[index] = level
        results = [
            (FlowKey(self.schema, values, tuple(levels)), score)
            for values, score in groups.items()
        ]
        results.sort(
            key=lambda pair: (-pair[1].metric(metric_name), pair[0].values)
        )
        return results

    def hhh(
        self,
        threshold: int,
        metric: Optional[str] = None,
    ) -> List[HHHResult]:
        """Hierarchical heavy hitters (Table II: HHH).

        Standard discounted definition: walking from the deepest nodes
        upward, a node is an HHH when its popularity *minus the
        popularity of already-reported HHH descendants* meets the
        threshold.  The root is included when the leftover, otherwise
        unattributed, mass is itself substantial.
        """
        metric_name = metric or self.metric
        discounted: Dict[NodeId, int] = {}
        results: List[HHHResult] = []
        for node in sorted(
            self._nodes.values(), key=lambda n: (-n.depth, n.values)
        ):
            discount = discounted.pop(node.node_id, 0)
            residual_value = node.subtree.metric(metric_name) - discount
            parent_id: Optional[NodeId] = None
            if node.depth > 0:
                parent = self._parent_of(node)
                parent_id = parent.node_id
            if residual_value >= threshold:
                residual = Score(
                    **{
                        field: residual_value if field == metric_name else 0
                        for field in ("packets", "bytes", "flows")
                    }
                )
                results.append(
                    HHHResult(self.key_of(node), node.subtree, residual)
                )
                discount += residual_value
            if parent_id is not None and discount:
                discounted[parent_id] = discounted.get(parent_id, 0) + discount
        results.sort(
            key=lambda r: (-r.residual.metric(metric_name), r.key.values)
        )
        return results

    def subtree(self, key: FlowKey) -> "Flowtree":
        """Extract the summary of one generalized flow as a new tree.

        The result contains the node for ``key`` (projected onto the
        canonical chain) and all its descendants, re-rooted under the
        usual all-wildcard root.  This is how a data store ships a
        *partial* summary in answer to a sub-query — e.g. "give me your
        view of prefix 10.0.0.0/8" — without exporting the whole tree.
        """
        depth = self.policy.depth_of(key.levels)
        if depth is None:
            depth = self.policy.nearest_depth_at_or_above(key.levels)
            key = self.policy.key_at(key, depth)
        result = Flowtree(
            self.policy, node_budget=None, compress_ratio=1.0,
            metric=self.metric,
        )
        anchor = self._nodes.get((depth, key.values))
        if anchor is None:
            return result
        frontier = [anchor]
        while frontier:
            node = frontier.pop()
            contribution = node.own + node.folded
            if not contribution.is_zero():
                result.add(self.key_of(node), contribution)
            frontier.extend(node.children.values())
        return result

    # ------------------------------------------------------------------
    # copy / serialization

    def copy(self) -> "Flowtree":
        """A deep, independent copy of the tree."""
        clone = Flowtree(
            self.policy,
            node_budget=self.node_budget,
            compress_ratio=self.compress_ratio,
            metric=self.metric,
        )
        for node in sorted(self._nodes.values(), key=lambda n: n.depth):
            target = (
                clone._ensure_chain(node.values, node.depth)
                if node.depth
                else clone._root
            )
            target.own = node.own
            target.folded = node.folded
            target.subtree = node.subtree
        return clone

    def to_dict(self) -> dict:
        """A JSON-safe representation, used for export and replication."""
        return {
            "schema": self.schema.name,
            "level_vectors": [list(v) for v in self.policy.level_vectors],
            "node_budget": self.node_budget,
            "compress_ratio": self.compress_ratio,
            "metric": self.metric,
            "nodes": [
                {
                    "depth": node.depth,
                    "values": list(node.values),
                    "own": [node.own.packets, node.own.bytes, node.own.flows],
                    "folded": [
                        node.folded.packets,
                        node.folded.bytes,
                        node.folded.flows,
                    ],
                }
                for node in sorted(
                    self._nodes.values(), key=lambda n: (n.depth, n.values)
                )
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict, policy: GeneralizationPolicy) -> "Flowtree":
        """Rebuild a tree serialized with :meth:`to_dict`.

        The caller supplies the policy (schemas hold feature objects that
        do not round-trip through JSON); its shape is validated against
        the payload.
        """
        if payload["schema"] != policy.schema.name:
            raise SchemaMismatchError(
                f"payload schema {payload['schema']!r} != policy schema "
                f"{policy.schema.name!r}"
            )
        vectors = [tuple(v) for v in payload["level_vectors"]]
        if vectors != list(policy.level_vectors):
            raise SchemaMismatchError(
                "payload level vectors do not match the supplied policy"
            )
        tree = cls(
            policy,
            node_budget=payload["node_budget"],
            compress_ratio=payload["compress_ratio"],
            metric=payload["metric"],
        )
        for entry in sorted(payload["nodes"], key=lambda e: e["depth"]):
            depth = entry["depth"]
            values = tuple(entry["values"])
            own = Score(*entry["own"])
            folded = Score(*entry["folded"])
            node = tree._ensure_chain(values, depth) if depth else tree._root
            node.own = node.own + own
            node.folded = node.folded + folded
            contribution = own + folded
            if not contribution.is_zero():
                tree._bubble(values, depth, contribution)
        return tree

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flowtree(schema={self.schema.name!r}, nodes={self.node_count}, "
            f"total={self.total()})"
        )

"""Generalized network flows and the Flowtree data structure.

This package implements the flow model of Section VI of the paper:

* **Features** (:mod:`repro.flows.features`) — typed flow attributes
  (IPv4 address, transport port, protocol) that can each be *generalized*
  by applying a mask, e.g. an IP address generalizes to a prefix.
* **Schemas and keys** (:mod:`repro.flows.flowkey`) — ordered feature sets
  such as the classic 5-tuple, and concrete (possibly generalized) flow
  keys over them.
* **Records** (:mod:`repro.flows.records`) — raw flow/packet observations
  as produced by routers or the traffic simulator.
* **Flowtree** (:mod:`repro.flows.tree`) — the self-adjusting tree of
  generalized flows with the eight operators of Table II (Merge, Compress,
  Diff, Query, Drilldown, Top-k, Above-x, HHH).
* **Columnar batches** (:mod:`repro.flows.columnar`) — flow records as
  flat numpy columns plus a vectorized, bit-identical Flowtree ingest;
  the shared-memory currency of process-parallel ingest
  (:mod:`repro.parallel`).
"""

from repro.flows.columnar import (
    HAVE_NUMPY,
    ColumnarBatch,
    ColumnarEncodeError,
)

from repro.flows.features import (
    Feature,
    IPv4Feature,
    PortFeature,
    ProtocolFeature,
    format_ipv4,
    parse_ipv4,
)
from repro.flows.flowkey import (
    FIVE_TUPLE,
    SRC_DST,
    DST_IP_PORT,
    FeatureSchema,
    FlowKey,
    GeneralizationPolicy,
)
from repro.flows.records import FlowRecord, PacketRecord, Score
from repro.flows.tree import Flowtree, FlowtreeNode, HHHResult

__all__ = [
    "Feature",
    "IPv4Feature",
    "PortFeature",
    "ProtocolFeature",
    "parse_ipv4",
    "format_ipv4",
    "FeatureSchema",
    "FlowKey",
    "GeneralizationPolicy",
    "FIVE_TUPLE",
    "SRC_DST",
    "DST_IP_PORT",
    "FlowRecord",
    "PacketRecord",
    "Score",
    "Flowtree",
    "FlowtreeNode",
    "HHHResult",
    "ColumnarBatch",
    "ColumnarEncodeError",
    "HAVE_NUMPY",
]

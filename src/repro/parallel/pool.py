"""The sharded ingest pool: per-site worker processes + shm batches.

Topology: the pool owns ``min(workers, sites)`` forked worker
processes; each ingest site is assigned to exactly one worker
(round-robin), and that worker holds the site's Flowtree *exclusively*
— no locks, no shared mutable state, the paper's shard-per-core recipe.

Transport: one :class:`multiprocessing.shared_memory.SharedMemory`
block per worker, laid out as a small control region (int64 progress
counters the worker owns and the parent samples for observability)
followed by a ring of fixed-size slots.  A submission is encoded to a
:class:`~repro.flows.columnar.ColumnarBatch` and packed into a free
slot — no pickling on the hot path; only the tiny ``("batch", site,
slot, n, final)`` descriptor crosses the command pipe.  Records that
cannot be encoded columnar (packet records, exotic key types) fall
back to a pickled ``("raw", …)`` message on the same pipe, so ordering
is preserved either way.

Determinism: per site, the worker applies exactly the submitted chunk
boundaries in submission order, using the ``finalize`` flag so a
submission split across slots compresses exactly like one serial
``add_many`` call.  ``flush()`` is the epoch barrier: it drains every
worker, returns per-site shard summaries (tree state + epoch
bookkeeping), and resets the shard trees for the next epoch.

Fault handling: a worker that dies mid-epoch (e.g. an injected
``crash=`` fault from :class:`~repro.faults.plan.FaultPlan`) is
respawned and the parent's per-epoch batch log is replayed to it in
order, reproducing the lost shard state bit-for-bit; the crash point
that already fired is retired so replay completes.
"""

from __future__ import annotations

import os
import struct
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaMismatchError, TransferError
from repro.flows.columnar import HAVE_NUMPY, ColumnarBatch, ColumnarEncodeError
from repro.flows.flowkey import GeneralizationPolicy
from repro.flows.records import FlowRecord, PacketRecord
from repro.flows.tree import Flowtree
from repro.parallel.config import ParallelIngestConfig

#: exit code of an injected worker crash (distinguishes faults from bugs)
CRASH_EXIT_CODE = 17

#: int64 progress counters at the head of each worker's shm block
_CTRL = struct.Struct("<4q")  # batches_done, records_done, busy_ns, flushes
_CTRL_BYTES = 64


@dataclass(frozen=True)
class SiteShardSpec:
    """Per-site tree parameters a worker builds its shard from."""

    node_budget: Optional[int] = 4096
    compress_ratio: float = 0.8
    metric: str = "bytes"


@dataclass
class WorkerStats:
    """One worker's progress, sampled lock-free from its shm counters."""

    worker: int
    pid: Optional[int]
    alive: bool
    sites: Tuple[str, ...]
    batches_submitted: int = 0
    records_submitted: int = 0
    batches_done: int = 0
    records_done: int = 0
    busy_seconds: float = 0.0
    queue_depth: int = 0
    restarts: int = 0
    replayed_batches: int = 0


# ----------------------------------------------------------------------
# worker side


class _SiteShard:
    """One site's exclusive state inside a worker process."""

    __slots__ = (
        "policy",
        "spec",
        "tree",
        "items",
        "epoch_start",
        "epoch_end",
        "opened_at",
        "batches",
    )

    def __init__(self, policy: GeneralizationPolicy, spec: SiteShardSpec):
        self.policy = policy
        self.spec = spec
        self.tree = self._new_tree()
        self.reset_epoch()

    def _new_tree(self) -> Flowtree:
        return Flowtree(
            self.policy,
            node_budget=self.spec.node_budget,
            compress_ratio=self.spec.compress_ratio,
            metric=self.spec.metric,
        )

    def reset_epoch(self) -> None:
        self.tree = self._new_tree()
        self.items = 0
        self.epoch_start: Optional[float] = None
        self.epoch_end: Optional[float] = None
        self.opened_at: Optional[float] = None
        self.batches = 0

    def configure(self, spec: SiteShardSpec) -> None:
        self.spec = spec
        if self.items == 0:
            self.tree = self._new_tree()
        else:
            # mid-epoch resize mirrors FlowtreePrimitive.set_granularity
            self.tree.node_budget = spec.node_budget
            if (
                spec.node_budget is not None
                and self.tree.node_count > spec.node_budget
            ):
                self.tree.compress(target_nodes=spec.node_budget)

    def _observe(self, first: float, last: float, count: int) -> None:
        if self.opened_at is None:
            self.opened_at = first
        if self.epoch_start is None or first < self.epoch_start:
            self.epoch_start = first
        if self.epoch_end is None or last > self.epoch_end:
            self.epoch_end = last
        self.items += count

    def apply_columnar(self, batch: ColumnarBatch, final: bool) -> int:
        n = len(batch)
        if n:
            # serial ingest timestamps every record with first_seen, so
            # both epoch bounds come from the first_seen column
            self._observe(
                float(batch.first_seen[0]),
                float(batch.first_seen.max()),
                n,
            )
            first_min = float(batch.first_seen.min())
            if first_min < self.epoch_start:  # type: ignore[operator]
                self.epoch_start = first_min
            self.tree.ingest_columnar(batch, finalize=final)
        return n

    def apply_raw(self, timed_items: Sequence[Tuple[Any, float]], final: bool) -> int:
        pairs = []
        first = last = None
        for item, timestamp in timed_items:
            pairs.append((item.key, item.score()))
            if first is None or timestamp < first:
                first = timestamp
            if last is None or timestamp > last:
                last = timestamp
        if not pairs:
            return 0
        if self.opened_at is None:
            self.opened_at = timed_items[0][1]
        if self.epoch_start is None or first < self.epoch_start:
            self.epoch_start = first
        if self.epoch_end is None or last > self.epoch_end:
            self.epoch_end = last
        self.items += len(pairs)
        self.tree.add_many(pairs, finalize=final)
        return len(pairs)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self.tree.snapshot_state(),
            "items": self.items,
            "epoch_start": self.epoch_start,
            "epoch_end": self.epoch_end,
            "opened_at": self.opened_at,
        }


def _worker_main(
    cmd_recv,
    res_send,
    shm_name: str,
    slot_bytes: int,
    policy: GeneralizationPolicy,
    specs: Dict[str, SiteShardSpec],
    free_sem,
    base_epoch: int,
    crash_points: Dict[str, frozenset],
) -> None:
    """Worker loop: drain commands, own the shard trees, reply on flush."""
    # attaching re-registers the segment with the resource tracker
    # (bpo-39959), but fork children share the parent's tracker process
    # and its cache is a set, so the duplicate registration is harmless
    # — the parent's unlink clears the single entry
    shm = SharedMemory(name=shm_name)
    buf = shm.buf
    schema_name = policy.schema.name
    shards = {site: _SiteShard(policy, spec) for site, spec in specs.items()}
    epoch = base_epoch
    errors: List[str] = []
    batches_done = 0
    records_done = 0
    busy_ns = 0
    flushes = 0
    try:
        while True:
            message = cmd_recv.recv()
            kind = message[0]
            if kind == "batch" or kind == "raw":
                site = message[1]
                shard = shards[site]
                crashes = crash_points.get(site)
                if crashes and (epoch, shard.batches) in crashes:
                    os._exit(CRASH_EXIT_CODE)
                shard.batches += 1
                # CPU clock, not wall clock: on an oversubscribed host
                # the worker gets descheduled mid-batch, and busy time
                # must mean "CPU spent ingesting" for records/busy to be
                # a per-core capacity rather than a time-slicing artifact
                started = time.process_time_ns()
                try:
                    if kind == "batch":
                        _, _, slot, final = message
                        offset = _CTRL_BYTES + slot * slot_bytes
                        batch = ColumnarBatch.unpack_from(
                            schema_name, buf[offset:offset + slot_bytes]
                        )
                        records_done += shard.apply_columnar(batch, final)
                        del batch  # drop the shm views before release
                        free_sem.release()
                    else:
                        _, _, timed_items, final = message
                        records_done += shard.apply_raw(timed_items, final)
                except Exception as exc:  # surface at flush, keep draining
                    errors.append(f"{site}: {exc!r}")
                    if kind == "batch":
                        free_sem.release()
                busy_ns += time.process_time_ns() - started
                batches_done += 1
                _CTRL.pack_into(
                    buf, 0, batches_done, records_done, busy_ns, flushes
                )
            elif kind == "config":
                _, site, spec = message
                shards[site].configure(spec)
            elif kind == "flush":
                summaries = {
                    site: shard.snapshot()
                    for site, shard in shards.items()
                    if shard.items
                }
                res_send.send(("flushed", message[1], summaries, errors))
                errors = []
                for shard in shards.values():
                    shard.reset_epoch()
                epoch += 1
                flushes += 1
                _CTRL.pack_into(
                    buf, 0, batches_done, records_done, busy_ns, flushes
                )
            elif kind == "stop":
                break
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        del buf
        shm.close()


# ----------------------------------------------------------------------
# parent side


class _WorkerChannel:
    """Parent-side handle on one worker: process, shm ring, pipes."""

    def __init__(
        self,
        ctx,
        index: int,
        sites: Tuple[str, ...],
        policy: GeneralizationPolicy,
        specs: Dict[str, SiteShardSpec],
        config: ParallelIngestConfig,
        slot_bytes: int,
        base_epoch: int,
        crash_points: Dict[str, frozenset],
    ) -> None:
        self.index = index
        self.sites = sites
        self.slot_bytes = slot_bytes
        self.slots = config.slots_per_worker
        self.shm = SharedMemory(
            create=True, size=_CTRL_BYTES + self.slots * slot_bytes
        )
        self.shm.buf[:_CTRL_BYTES] = bytes(_CTRL_BYTES)
        self.free_sem = ctx.Semaphore(self.slots)
        self.cmd_recv_end, self.cmd_send = ctx.Pipe(duplex=False)
        self.res_recv, self.res_send_end = ctx.Pipe(duplex=False)
        self.next_slot = 0
        self.batches_submitted = 0
        self.records_submitted = 0
        self.restarts = 0
        self.replayed_batches = 0
        #: current-epoch submissions, for crash replay: ("batch", site,
        #: packed bytes, final) or ("raw", site, timed_items, final)
        self.log: List[Tuple] = []
        self.process = ctx.Process(
            target=_worker_main,
            args=(
                self.cmd_recv_end,
                self.res_send_end,
                self.shm.name,
                slot_bytes,
                policy,
                {site: specs[site] for site in sites},
                self.free_sem,
                base_epoch,
                {
                    site: crash_points[site]
                    for site in sites
                    if crash_points.get(site)
                },
            ),
            daemon=True,
        )
        self.process.start()

    def ctrl(self) -> Tuple[int, int, int, int]:
        return _CTRL.unpack_from(self.shm.buf, 0)

    def close(self) -> None:
        for end in (
            self.cmd_send,
            self.cmd_recv_end,
            self.res_recv,
            self.res_send_end,
        ):
            try:
                end.close()
            except OSError:  # pragma: no cover - already closed
                pass
        try:
            self.shm.close()
            self.shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


class ShardedIngestPool:
    """Per-site worker processes fed by shared-memory columnar batches.

    ``sites`` maps each ingest-site label to its
    :class:`SiteShardSpec`; iteration order fixes the (deterministic)
    round-robin assignment of sites to workers.  ``crash_points`` maps
    site labels to ``(epoch, batch)`` pairs at which the owning worker
    self-terminates — the hook :class:`~repro.faults.plan.FaultPlan`
    uses for fault drills.
    """

    def __init__(
        self,
        policy: GeneralizationPolicy,
        sites: Mapping[str, SiteShardSpec],
        config: Optional[ParallelIngestConfig] = None,
        base_epoch: int = 0,
        crash_points: Optional[Mapping[str, Iterable[Tuple[int, int]]]] = None,
        generation: int = 0,
    ) -> None:
        if not sites:
            raise ValueError("a sharded ingest pool needs at least one site")
        self.policy = policy
        self.schema = policy.schema
        self.config = config or ParallelIngestConfig()
        #: topology generation this pool was forked under; the runtime
        #: drains and replaces a pool whose generation lags the model's
        self.generation = generation
        self._specs = dict(sites)
        self._epoch = base_epoch
        self._crash_points: Dict[str, frozenset] = {
            site: frozenset(points)
            for site, points in (crash_points or {}).items()
        }
        self._closed = False
        worker_count = min(self.config.workers, len(self._specs))
        assignment: List[List[str]] = [[] for _ in range(worker_count)]
        for i, site in enumerate(self._specs):
            assignment[i % worker_count].append(site)
        self._site_worker: Dict[str, int] = {
            site: w for w, names in enumerate(assignment) for site in names
        }
        slot_bytes = ColumnarBatch.packed_nbytes(
            self.config.slot_records, len(self.schema)
        )
        self._ctx = get_context("fork")
        self._channels: List[_WorkerChannel] = [
            _WorkerChannel(
                self._ctx,
                w,
                tuple(names),
                policy,
                self._specs,
                self.config,
                slot_bytes,
                base_epoch,
                self._crash_points,
            )
            for w, names in enumerate(assignment)
        ]

    # -- introspection ----------------------------------------------------

    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    @property
    def workers(self) -> int:
        return len(self._channels)

    @property
    def epoch(self) -> int:
        return self._epoch

    def worker_stats(self) -> List[WorkerStats]:
        """Per-worker progress (shm counters + parent-side bookkeeping)."""
        out = []
        for channel in self._channels:
            done_batches, done_records, busy_ns, _ = channel.ctrl()
            out.append(
                WorkerStats(
                    worker=channel.index,
                    pid=channel.process.pid,
                    alive=channel.process.is_alive(),
                    sites=channel.sites,
                    batches_submitted=channel.batches_submitted,
                    records_submitted=channel.records_submitted,
                    batches_done=done_batches,
                    records_done=done_records,
                    busy_seconds=busy_ns / 1e9,
                    queue_depth=max(
                        0, channel.batches_submitted - done_batches
                    ),
                    restarts=channel.restarts,
                    replayed_batches=channel.replayed_batches,
                )
            )
        return out

    # -- submission -------------------------------------------------------

    def submit(self, site: str, records: Sequence[Any]) -> int:
        """Ship one ingest batch to the site's worker.

        The batch is encoded columnar and split across slot-sized
        chunks marked as one logical batch; records the columnar layout
        cannot carry (packet records, generalized keys, out-of-range
        counters) travel as one pickled raw message instead.  Returns
        the record count.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        channel = self._channel_for(site)
        records = list(records)
        if not records:
            return 0
        if HAVE_NUMPY:
            try:
                batch = ColumnarBatch.encode(records, self.schema)
            except ColumnarEncodeError:
                batch = None
        else:
            batch = None
        if batch is None:
            for record in records:
                if not isinstance(record, (FlowRecord, PacketRecord)):
                    raise SchemaMismatchError(
                        "parallel ingest cannot ship "
                        f"{type(record).__name__} records"
                    )
            timed = [
                (
                    record,
                    record.first_seen
                    if isinstance(record, FlowRecord)
                    else record.timestamp,
                )
                for record in records
            ]
            self._send_logged(channel, ("raw", site, timed, True))
            channel.records_submitted += len(records)
            return len(records)
        n = len(batch)
        step = self.config.slot_records
        lo = 0
        while lo < n:
            hi = min(n, lo + step)
            chunk = ColumnarBatch(
                batch.schema_name,
                batch.values[lo:hi],
                batch.packets[lo:hi],
                batch.bytes[lo:hi],
                batch.first_seen[lo:hi],
                batch.last_seen[lo:hi],
            )
            self._submit_chunk(channel, site, chunk, final=hi == n)
            lo = hi
        channel.records_submitted += n
        return n

    def _submit_chunk(
        self, channel: _WorkerChannel, site: str, chunk: ColumnarBatch, final: bool
    ) -> None:
        channel = self._acquire_slot(channel)
        slot = channel.next_slot
        channel.next_slot = (slot + 1) % channel.slots
        offset = _CTRL_BYTES + slot * channel.slot_bytes
        view = channel.shm.buf[offset:offset + channel.slot_bytes]
        written = chunk.pack_into(view)
        packed = bytes(view[:written])
        del view
        self._send_logged(
            channel, ("batch", site, slot, final), replay=("batch", site, packed, final)
        )

    def _acquire_slot(self, channel: _WorkerChannel) -> _WorkerChannel:
        """Block for a free slot; returns the live (possibly respawned)
        channel, since a revive mid-wait replaces the channel object."""
        while not channel.free_sem.acquire(timeout=self.config.poll_seconds):
            if not channel.process.is_alive():
                self._revive(channel)
                channel = self._channels[channel.index]
        return channel

    def _send_logged(
        self, channel: _WorkerChannel, message: Tuple, replay: Optional[Tuple] = None
    ) -> None:
        channel.log.append(replay if replay is not None else message)
        channel.batches_submitted += 1
        try:
            channel.cmd_send.send(message)
        except (BrokenPipeError, OSError):
            self._revive(channel)  # replay already covers this message

    # -- epoch barrier ----------------------------------------------------

    def flush(self) -> Dict[str, Dict[str, Any]]:
        """Drain every worker and collect per-site shard summaries.

        The epoch barrier: blocks until each worker has applied its
        queued batches, returns ``{site: {"state", "items",
        "epoch_start", "epoch_end", "opened_at"}}`` for every site that
        ingested anything, and resets the shard trees for the next
        epoch.  A worker found dead is respawned and its epoch replayed
        first, so the summaries are complete even across crashes.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        summaries: Dict[str, Dict[str, Any]] = {}
        errors: List[str] = []
        for index in range(len(self._channels)):
            reply = self._flush_channel(self._channels[index])
            summaries.update(reply[2])
            errors.extend(reply[3])
            # a revive mid-flush swaps the channel object; clear the
            # live one so replayed batches aren't replayed twice
            self._channels[index].log.clear()
        self._epoch += 1
        if errors:
            raise SchemaMismatchError(
                "parallel ingest rejected records: " + "; ".join(errors)
            )
        return summaries

    def _flush_channel(self, channel: _WorkerChannel):
        try:
            channel.cmd_send.send(("flush", self._epoch))
        except (BrokenPipeError, OSError):
            self._revive(channel)
            channel = self._channels[channel.index]
            channel.cmd_send.send(("flush", self._epoch))
        deadline = time.monotonic() + self.config.flush_timeout
        while True:
            if channel.res_recv.poll(self.config.poll_seconds):
                try:
                    return channel.res_recv.recv()
                except EOFError:
                    pass  # died between poll and recv
            if not channel.process.is_alive():
                self._revive(channel)
                channel = self._channels[channel.index]
                channel.cmd_send.send(("flush", self._epoch))
                deadline = time.monotonic() + self.config.flush_timeout
            elif time.monotonic() > deadline:
                raise TransferError(
                    f"ingest worker {channel.index} did not flush within "
                    f"{self.config.flush_timeout}s"
                )

    def sync_site(self, site: str, spec: SiteShardSpec) -> None:
        """Propagate adapted tree parameters (budget, ratio, metric)."""
        self._specs[site] = spec
        channel = self._channel_for(site)
        try:
            channel.cmd_send.send(("config", site, spec))
        except (BrokenPipeError, OSError):
            self._revive(channel)  # respawn picks up the updated spec

    # -- fault recovery ---------------------------------------------------

    def _revive(self, channel: _WorkerChannel) -> None:
        """Respawn a dead worker and replay its current epoch."""
        channel.process.join(timeout=self.config.flush_timeout)
        replay = list(channel.log)
        restarts = channel.restarts + 1
        replayed = channel.replayed_batches + len(replay)
        records_submitted = channel.records_submitted
        # the crash point consumed itself; retire this epoch's points so
        # the replayed batches aren't shot down again
        for site in channel.sites:
            points = self._crash_points.get(site)
            if points:
                self._crash_points[site] = frozenset(
                    point for point in points if point[0] != self._epoch
                )
        channel.close()
        fresh = _WorkerChannel(
            self._ctx,
            channel.index,
            channel.sites,
            self.policy,
            self._specs,
            self.config,
            channel.slot_bytes,
            self._epoch,
            self._crash_points,
        )
        fresh.restarts = restarts
        fresh.replayed_batches = replayed
        fresh.records_submitted = records_submitted
        self._channels[channel.index] = fresh
        for entry in replay:
            kind, site, payload, final = entry
            if kind == "batch":
                self._replay_packed(fresh, site, payload, final)
            else:
                self._send_logged(fresh, ("raw", site, payload, final))

    def _replay_packed(
        self, fresh: _WorkerChannel, site: str, packed: bytes, final: bool
    ) -> None:
        self._acquire_slot(fresh)
        slot = fresh.next_slot
        fresh.next_slot = (slot + 1) % fresh.slots
        offset = _CTRL_BYTES + slot * fresh.slot_bytes
        fresh.shm.buf[offset:offset + len(packed)] = packed
        self._send_logged(
            fresh, ("batch", site, slot, final), replay=("batch", site, packed, final)
        )

    def _channel_for(self, site: str) -> _WorkerChannel:
        try:
            return self._channels[self._site_worker[site]]
        except KeyError as exc:
            raise KeyError(
                f"site {site!r} is not sharded; known: {sorted(self._specs)}"
            ) from exc

    # -- lifecycle --------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the workers and release shm; idempotent."""
        if self._closed:
            return
        self._closed = True
        for channel in self._channels:
            try:
                channel.cmd_send.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            channel.process.join(timeout=self.config.flush_timeout)
            if channel.process.is_alive():  # pragma: no cover - hung worker
                channel.process.terminate()
                channel.process.join(timeout=5)
            channel.close()

    def __enter__(self) -> "ShardedIngestPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass

"""Tunables of the sharded ingest pool."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelIngestConfig:
    """How a :class:`~repro.parallel.pool.ShardedIngestPool` is sized.

    ``workers`` is an upper bound — the pool never spawns more workers
    than it has sites, since a worker owns whole sites (that ownership
    is what makes the trees lock-free).  ``slot_records`` bounds one
    shared-memory slot; larger submissions are split into slot-sized
    chunks that the worker treats as one logical batch (compression
    checkpoints stay where serial ingest would put them).
    """

    workers: int = 2
    #: records per shared-memory slot (one slot carries one chunk); kept
    #: large because the vectorized walk amortizes its per-chunk group
    #: costs — on duplicate-heavy streams an 8k slot re-pays grouping
    #: for nearly every flow per chunk and halves worker throughput.
    #: Slots are sparse until written (~72 B/record when full).
    slot_records: int = 65_536
    #: slots per worker ring; submission blocks when all are in flight
    slots_per_worker: int = 4
    #: seconds to wait on a worker (slot acquire / flush reply) between
    #: liveness checks; a dead worker is respawned and replayed
    poll_seconds: float = 0.5
    #: give up on an unresponsive-but-alive worker after this long
    flush_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("parallel ingest needs at least 1 worker")
        if self.slot_records < 1:
            raise ValueError("slot_records must be positive")
        if self.slots_per_worker < 1:
            raise ValueError("slots_per_worker must be positive")

"""Process-parallel sharded ingest (the multi-core half of fast ingest).

The vectorized columnar walk (:mod:`repro.flows.columnar`) removes the
per-record python overhead; this package removes the single-core limit.
A :class:`ShardedIngestPool` owns one OS process per shard of ingest
sites — each worker holds its sites' Flowtrees *exclusively*, so there
is no locking anywhere on the hot path — and feeds them columnar record
batches through pickle-free shared-memory ring buffers.

Determinism is the contract: per site, workers apply exactly the batch
boundaries the caller submitted, in submission order, so the resulting
trees (and every downstream number: root mass, WAN bytes, volume
accounting) are bit-identical to serial ingest.  A crashed worker is
respawned and its current epoch replayed from the parent's batch log,
preserving that guarantee across faults.
"""

from repro.parallel.config import ParallelIngestConfig
from repro.parallel.pool import (
    ShardedIngestPool,
    SiteShardSpec,
    WorkerStats,
)

__all__ = [
    "ParallelIngestConfig",
    "ShardedIngestPool",
    "SiteShardSpec",
    "WorkerStats",
]

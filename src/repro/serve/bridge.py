"""Serving-plane metric families over :mod:`repro.obs`.

One :class:`ServeMetrics` per :class:`~repro.serve.plane.ServePlane`
registers the ``repro_serve_*`` families on the runtime's existing
metrics registry, so ``repro metrics`` / the gateway's ``/v1/metrics``
exposition carries the serving plane next to the data plane.  All of
these are event-fed (a latency distribution or a queue-depth peak
cannot be reconstructed from totals), which is why they live at the
serving call sites rather than behind a collector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observability import Observability

REQUESTS_TOTAL = "repro_serve_requests_total"
REQUEST_SECONDS = "repro_serve_request_seconds"
QUEUE_DEPTH = "repro_serve_queue_depth"
QUEUE_PEAK = "repro_serve_queue_peak"
REJECTIONS_TOTAL = "repro_serve_rejections_total"
ROUTING_INVALIDATIONS = "repro_serve_routing_invalidations_total"

#: latency buckets tuned for sub-millisecond cached answers up to
#: multi-second degraded fan-outs
_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0,
)


class ServeMetrics:
    """Event-fed serving metrics; a no-op shell when obs is disabled."""

    def __init__(self, obs: "Observability") -> None:
        self.enabled = obs.enabled
        if not self.enabled:
            return
        registry = obs.registry
        self.requests = registry.counter(
            REQUESTS_TOTAL,
            "Requests served per node, by outcome "
            "(ok, degraded, error, rejected)",
            ("node", "status"),
        )
        self.latency = registry.histogram(
            REQUEST_SECONDS,
            "End-to-end request latency per serving node",
            ("node",),
            buckets=_LATENCY_BUCKETS,
        )
        self.queue_depth = registry.gauge(
            QUEUE_DEPTH,
            "Live request-queue depth per serving node",
            ("node",),
        )
        self.queue_peak = registry.gauge(
            QUEUE_PEAK,
            "High-water request-queue depth per serving node",
            ("node",),
        )
        self.rejections = registry.counter(
            REJECTIONS_TOTAL,
            "Requests shed, by mechanism (admission, backpressure)",
            ("scope",),
        )
        self.routing_invalidations = registry.counter(
            ROUTING_INVALIDATIONS,
            "Gateway routing-table rebuilds forced by topology "
            "generation bumps",
        )

    # -- recording (each guarded so disabled obs costs one branch) ----------

    def request(self, node: str, status: str, seconds: float) -> None:
        if not self.enabled:
            return
        self.requests.labels(node=node, status=status).inc()
        self.latency.labels(node=node).observe(seconds)

    def set_queue_depth(self, node: str, depth: int, peak: int) -> None:
        if not self.enabled:
            return
        self.queue_depth.labels(node=node).set(depth)
        self.queue_peak.labels(node=node).set(peak)

    def rejection(self, scope: str) -> None:
        if not self.enabled:
            return
        self.rejections.labels(scope=scope).inc()

    def routing_invalidation(self) -> None:
        if not self.enabled:
            return
        self.routing_invalidations.labels().inc()

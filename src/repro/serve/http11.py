"""A deliberately small asyncio HTTP/1.1 layer.

The serving plane needs exactly four HTTP features — request lines,
headers, ``Content-Length`` JSON bodies, and keep-alive — and nothing
the container doesn't already ship, so this module implements them
directly on asyncio streams instead of pulling in a framework.  Both
the servers (:mod:`repro.serve.server`, :mod:`repro.serve.gateway`)
and the in-loop client the gateway/benchmark use are built on it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.errors import ServeError

#: maximum header block / body size accepted (a simulation guard, not
#: a hardening claim)
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class Request:
    """One parsed inbound request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> object:
        """The body parsed as JSON (``None`` when empty)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}")


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Request]:
    """Parse one request off a keep-alive stream; ``None`` on EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between keep-alive requests
        raise ServeError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ServeError("request head exceeds the stream limit")
    if len(head) > MAX_HEADER_BYTES:
        raise ServeError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ServeError(f"malformed request line {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ServeError(f"request body too large ({length} B)")
    body = await reader.readexactly(length) if length else b""
    return Request(method.upper(), path, headers, body)


def response_bytes(
    status: int,
    body: object = None,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one JSON (or empty) keep-alive response."""
    payload = (
        b""
        if body is None
        else json.dumps(body, separators=(",", ":")).encode("utf-8")
    )
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: keep-alive",
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload


class HTTPConnection:
    """One keep-alive client connection inside the event loop.

    The gateway holds one per node server; the closed-loop benchmark
    holds one per simulated client.  ``request`` serializes use of the
    connection (HTTP/1.1 without pipelining), reconnecting lazily when
    the peer closed it.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def _ensure(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        body: object = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], object]:
        """Send one request; returns ``(status, headers, json_body)``."""
        payload = (
            b""
            if body is None
            else json.dumps(body, separators=(",", ":")).encode("utf-8")
        )
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: keep-alive",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        wire = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        async with self._lock:
            for attempt in (0, 1):
                await self._ensure()
                try:
                    self._writer.write(wire)
                    await self._writer.drain()
                    return await self._read_response()
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    # a keep-alive peer may close between requests;
                    # reconnect once before giving up
                    await self.close()
                    if attempt:
                        raise ServeError(
                            f"connection to {self.host}:{self.port} failed"
                        )
        raise AssertionError("unreachable")  # pragma: no cover

    async def _read_response(self) -> Tuple[int, Dict[str, str], object]:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            status = int(lines[0].split(" ", 2)[1])
        except (IndexError, ValueError):
            raise ServeError(f"malformed status line {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        parsed = json.loads(raw.decode("utf-8")) if raw else None
        return status, headers, parsed


class HTTPConnectionPool:
    """A grow-on-demand pool of keep-alive connections to one peer.

    One :class:`HTTPConnection` serializes its requests (HTTP/1.1
    without pipelining), so a gateway fronting many concurrent clients
    holds a pool per node: each in-flight forward checks out an idle
    connection — or opens a fresh one — and returns it afterwards.
    That keeps the node's *queue* the concurrency bottleneck, not a
    single gateway socket; backpressure stays observable end to end.
    """

    def __init__(self, host: str, port: int, max_idle: int = 32) -> None:
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self._idle: list = []

    async def request(
        self,
        method: str,
        path: str,
        body: object = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], object]:
        connection = (
            self._idle.pop()
            if self._idle
            else HTTPConnection(self.host, self.port)
        )
        try:
            response = await connection.request(
                method, path, body=body, headers=headers
            )
        except BaseException:
            await connection.close()
            raise
        if len(self._idle) < self.max_idle:
            self._idle.append(connection)
        else:
            await connection.close()
        return response

    async def close(self) -> None:
        while self._idle:
            await self._idle.pop().close()

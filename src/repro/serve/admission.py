"""Per-client token-bucket admission control for the gateway.

The in-network resource-allocation line of work (Benoit et al. in
PAPERS.md) argues serving nodes must *shed* load they cannot absorb
rather than queue it into uselessness.  The gateway therefore meters
every client with a token bucket: ``rate_per_s`` tokens refill
continuously up to a ``burst`` ceiling, each admitted request spends
one, and an empty bucket yields an HTTP 429 whose ``Retry-After`` is
the exact time until the next token — so well-behaved closed-loop
clients converge on the sustainable rate instead of retry-storming.

The bucket map is bounded: a bucket idle for longer than one full
refill-to-burst interval holds exactly ``burst`` tokens — the same
state a brand-new bucket starts with — so evicting it is lossless, and
a hard ``max_clients`` cap (LRU) keeps one-shot client churn (load
tests, scrapers rotating ids) from growing the map without limit.

The clock is injectable (tests pin it); production uses
``time.monotonic``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """One client's budget: ``burst`` tokens, refilled at ``rate_per_s``."""

    __slots__ = ("rate_per_s", "burst", "tokens", "updated_at")

    def __init__(
        self, rate_per_s: float, burst: float, now: float
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def try_acquire(self, now: float) -> Tuple[bool, float]:
        """Spend one token; returns ``(admitted, retry_after_s)``."""
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_s)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate_per_s <= 0.0:
            return False, 60.0  # rate 0: effectively blocked; retry late
        return False, (1.0 - self.tokens) / self.rate_per_s


class AdmissionController:
    """Per-client token buckets, bounded by idle-eviction and an LRU cap.

    ``_buckets`` is kept in least-recently-admitted order (each admit
    re-inserts the client's bucket at the back), so both bounds evict
    from the dict front in O(1) amortized:

    * **Idle eviction** — a bucket untouched for one refill-to-burst
      interval (``burst / rate_per_s`` seconds) has refilled completely;
      dropping it and re-creating it later yields the identical bucket,
      so the eviction never changes an admission decision.
    * **LRU cap** — ``max_clients`` bounds the map even under
      pathological churn of never-idle clients.  Evicting a *non*-idle
      bucket can forgive a partially drained budget, which is the usual
      LRU trade: bounded memory for worst-case slack of one burst.
    """

    def __init__(
        self,
        rate_per_s: float = 200.0,
        burst: float = 50.0,
        clock: Optional[Callable[[], float]] = None,
        max_clients: int = 4096,
    ) -> None:
        if rate_per_s < 0 or burst < 1:
            raise ValueError(
                "admission needs rate_per_s >= 0 and burst >= 1; got "
                f"rate_per_s={rate_per_s}, burst={burst}"
            )
        if max_clients < 1:
            raise ValueError(
                f"admission needs max_clients >= 1, got {max_clients}"
            )
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.max_clients = max_clients
        self.clock = clock or time.monotonic
        self._buckets: Dict[str, TokenBucket] = {}
        #: census counters the gateway metrics export
        self.admitted = 0
        self.rejected = 0
        self.evicted = 0

    @property
    def _idle_ttl_s(self) -> float:
        """Seconds of idleness after which a bucket is fully refilled."""
        if self.rate_per_s <= 0.0:
            # rate 0 never refills; fall back to a long explicit ttl so
            # blocked clients still age out eventually
            return 3600.0
        return self.burst / self.rate_per_s

    def _evict(self, now: float) -> None:
        ttl = self._idle_ttl_s
        while self._buckets:
            front = next(iter(self._buckets))
            bucket = self._buckets[front]
            if (
                len(self._buckets) > self.max_clients
                or now - bucket.updated_at >= ttl
            ):
                del self._buckets[front]
                self.evicted += 1
            else:
                break  # LRU order: everything behind is fresher

    def admit(self, client_id: str) -> Tuple[bool, float]:
        """Meter one request; returns ``(admitted, retry_after_s)``."""
        now = self.clock()
        bucket = self._buckets.pop(client_id, None)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_s, self.burst, now)
        # re-insert at the back: dict order is recency order
        self._buckets[client_id] = bucket
        self._evict(now)
        admitted, retry_after = bucket.try_acquire(now)
        if admitted:
            self.admitted += 1
        else:
            self.rejected += 1
        return admitted, retry_after

    def clients(self) -> int:
        """How many distinct clients currently hold a bucket."""
        return len(self._buckets)

"""Per-client token-bucket admission control for the gateway.

The in-network resource-allocation line of work (Benoit et al. in
PAPERS.md) argues serving nodes must *shed* load they cannot absorb
rather than queue it into uselessness.  The gateway therefore meters
every client with a token bucket: ``rate_per_s`` tokens refill
continuously up to a ``burst`` ceiling, each admitted request spends
one, and an empty bucket yields an HTTP 429 whose ``Retry-After`` is
the exact time until the next token — so well-behaved closed-loop
clients converge on the sustainable rate instead of retry-storming.

The clock is injectable (tests pin it); production uses
``time.monotonic``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """One client's budget: ``burst`` tokens, refilled at ``rate_per_s``."""

    __slots__ = ("rate_per_s", "burst", "tokens", "updated_at")

    def __init__(
        self, rate_per_s: float, burst: float, now: float
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def try_acquire(self, now: float) -> Tuple[bool, float]:
        """Spend one token; returns ``(admitted, retry_after_s)``."""
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_s)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate_per_s <= 0.0:
            return False, 60.0  # rate 0: effectively blocked; retry late
        return False, (1.0 - self.tokens) / self.rate_per_s


class AdmissionController:
    """Per-client token buckets with shared rate/burst defaults."""

    def __init__(
        self,
        rate_per_s: float = 200.0,
        burst: float = 50.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate_per_s < 0 or burst < 1:
            raise ValueError(
                "admission needs rate_per_s >= 0 and burst >= 1; got "
                f"rate_per_s={rate_per_s}, burst={burst}"
            )
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.clock = clock or time.monotonic
        self._buckets: Dict[str, TokenBucket] = {}
        #: census counters the gateway metrics export
        self.admitted = 0
        self.rejected = 0

    def admit(self, client_id: str) -> Tuple[bool, float]:
        """Meter one request; returns ``(admitted, retry_after_s)``."""
        now = self.clock()
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = self._buckets[client_id] = TokenBucket(
                self.rate_per_s, self.burst, now
            )
        admitted, retry_after = bucket.try_acquire(now)
        if admitted:
            self.admitted += 1
        else:
            self.rejected += 1
        return admitted, retry_after

    def clients(self) -> int:
        """How many distinct clients have been metered."""
        return len(self._buckets)

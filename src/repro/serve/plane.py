"""`repro serve`: the networked FlowQL serving plane.

:class:`ServePlane` stands up the whole serving fabric for one
:class:`~repro.runtime.runtime.HierarchyRuntime` on a single asyncio
event loop: one :class:`~repro.serve.server.NodeServer` per
store-bearing hierarchy node plus a root coordinator, fronted by one
:class:`~repro.serve.gateway.FlowQLGateway`.  The simulation runs
everything in-process over loopback TCP — real sockets, real HTTP
framing, real backpressure — while the data plane itself (partition
reads, merges, cache, replication feed) stays the federated planner,
serialized through one executor thread so that a remote answer is
byte-for-byte the answer an in-process ``runtime.query`` returns.

Use it asynchronously from an event loop (the benchmark does)::

    plane = ServePlane(runtime)
    await plane.start()
    ...
    await plane.stop()

or synchronously from blocking code (the CLI and ``FlowQLClient``
tests do)::

    with ServePlane(runtime) as plane:
        endpoint = plane.start_background()
        client = FlowQLClient(endpoint=endpoint)
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ServeError
from repro.query.plan import QueryOutcome
from repro.serve.admission import AdmissionController
from repro.serve.bridge import ServeMetrics
from repro.serve.gateway import FlowQLGateway
from repro.serve.server import NodeServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runtime import HierarchyRuntime


class ServePlane:
    """Every serving endpoint of one runtime, on one event loop."""

    def __init__(
        self,
        runtime: "HierarchyRuntime",
        host: str = "127.0.0.1",
        gateway_port: int = 0,
        queue_limit: int = 64,
        workers_per_node: int = 1,
        timeout_s: float = 5.0,
        admission_rate_per_s: float = 200.0,
        admission_burst: float = 50.0,
        admission_max_clients: int = 4096,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        if queue_limit < 1 or workers_per_node < 1 or timeout_s <= 0:
            raise ServeError(
                "ServePlane needs queue_limit >= 1, workers_per_node "
                ">= 1, timeout_s > 0"
            )
        self.runtime = runtime
        self.host = host
        self.gateway_port = gateway_port
        self.queue_limit = queue_limit
        self.workers_per_node = workers_per_node
        self.timeout_s = timeout_s
        self.admission = admission or AdmissionController(
            rate_per_s=admission_rate_per_s,
            burst=admission_burst,
            max_clients=admission_max_clients,
        )
        self.metrics = ServeMetrics(runtime.obs)
        #: the one thread the planner executes on: queries from every
        #: node server serialize here, which both models the shared
        #: data plane and keeps the planner/cache single-threaded
        self.data_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-data"
        )
        #: label → NodeServer, root coordinator included
        self.nodes: Dict[str, NodeServer] = {}
        self.root_label = runtime.hierarchy.root.location.path
        self.gateway = FlowQLGateway(self, host=host)
        #: unhandled (HTTP 500) failures — the benchmark gate pins 0
        self.server_errors = 0
        self._started = False
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._build_nodes()

    def _build_nodes(self) -> None:
        runtime = self.runtime
        self.nodes[self.root_label] = NodeServer(
            self,
            self.root_label,
            runtime.hierarchy.root.location.path,
            host=self.host,
        )
        for level in runtime.store_levels():
            for label, store in runtime.stores_at_level(level).items():
                self.nodes[label] = NodeServer(
                    self, label, store.location.path, host=self.host
                )

    # -- the data plane hop --------------------------------------------------

    def generation(self) -> int:
        """The runtime's live topology generation."""
        model = getattr(self.runtime, "model", None)
        return 0 if model is None else model.generation

    def execute_on_node(
        self, label: str, query_text: str, trace_id: str
    ) -> QueryOutcome:
        """Run one query on behalf of a node (data-executor thread).

        The ``serve`` span wraps the planner's own ``query`` span, so a
        trace shows gateway-routed requests as
        ``serve(node, trace) -> query(route, cache)`` — the propagated
        trace id is what stitches the two HTTP hops together.
        """
        with self.runtime.obs.span(
            "serve", node=label, trace=trace_id
        ) as span:
            outcome = self.runtime.planner.execute(query_text)
            span.set_attr("degraded", outcome.is_degraded)
        return outcome

    # -- lifecycle (async) ---------------------------------------------------

    async def start(self) -> None:
        """Boot every node server, then the gateway."""
        if self._started:
            raise ServeError("serve plane already started")
        for server in self.nodes.values():
            await server.start()
        await self.gateway.start()
        self._started = True

    async def stop(self) -> None:
        if not self._started:
            return
        await self.gateway.stop()
        for server in self.nodes.values():
            await server.stop()
        self._started = False

    # -- lifecycle (blocking callers) ----------------------------------------

    def start_background(self) -> str:
        """Run the plane's event loop in a daemon thread.

        Returns the gateway endpoint URL.  For the CLI and synchronous
        clients; async callers should ``await plane.start()`` on their
        own loop instead.
        """
        if self._thread is not None:
            raise ServeError("serve plane already running in background")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        boot_error: list = []

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.start())
            except Exception as exc:  # noqa: BLE001 - reported to caller
                boot_error.append(exc)
                started.set()
                return
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30):
            raise ServeError("serve plane failed to start in 30s")
        if boot_error:
            self._thread.join(timeout=5)
            self._thread = None
            raise ServeError(f"serve plane boot failed: {boot_error[0]}")
        return self.endpoint

    def close(self) -> None:
        """Stop the background plane (no-op when never started)."""
        if self._thread is not None and self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.stop(), self._loop
            )
            future.result(timeout=30)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop.close()
            self._thread = None
            self._loop = None
        self.data_executor.shutdown(wait=True)

    def __enter__(self) -> "ServePlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    @property
    def endpoint(self) -> str:
        """The gateway URL (valid once started)."""
        return self.gateway.endpoint

    def census(self) -> dict:
        """A JSON-able snapshot of the plane (gateway ``/healthz``)."""
        return {
            "status": "ok",
            "generation": self.generation(),
            "gateway_port": self.gateway.port,
            "root": self.root_label,
            "nodes": {
                label: {
                    "port": server.port,
                    "path": server.path,
                    "requests": server.requests_served,
                    "queue_peak": server.queue_peak,
                    "backpressure_rejections": (
                        server.backpressure_rejections
                    ),
                    "timeouts": server.timeouts,
                }
                for label, server in sorted(self.nodes.items())
            },
            "admission": {
                "clients": self.admission.clients(),
                "admitted": self.admission.admitted,
                "rejected": self.admission.rejected,
                "evicted": self.admission.evicted,
                "rate_per_s": self.admission.rate_per_s,
                "burst": self.admission.burst,
                "max_clients": self.admission.max_clients,
            },
            "subscriptions": (
                self.runtime.planner.subscriptions.census()
            ),
            "routing": {
                "entries": len(self.gateway.routing),
                "hits": self.gateway.routing.hits,
                "misses": self.gateway.routing.misses,
                "invalidations": self.gateway.routing.invalidations,
            },
            "requests_routed": self.gateway.requests_routed,
            "server_errors": self.server_errors,
        }

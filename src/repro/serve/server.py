"""One HTTP serving endpoint per hierarchy node.

A :class:`NodeServer` is the *serving resource* in front of one
store-bearing hierarchy node (or the root coordinator): an asyncio
HTTP/1.1 listener with a bounded request queue and a fixed worker
count.  In this in-process simulation every node server shares one
event loop and executes through the plane's serialized data-plane
executor (the federated planner performs the actual partition reads,
exactly as an in-process query would — which is what makes remote
answers answer-identical to local ones); what the node server models
is the *capacity* of that node's front door:

* **Backpressure** — a full queue refuses immediately with HTTP 429
  and a ``Retry-After`` derived from the queue's observed drain rate,
  instead of absorbing unbounded work.
* **Timeouts** — a request that exceeds the plane's deadline degrades
  to a *partial* :class:`~repro.query.plan.QueryOutcome` (HTTP 200
  with a :class:`~repro.query.plan.Degradation` naming this node in
  ``attempted_paths``) rather than hanging the client.
* **Observability** — per-node request/latency/queue-depth metric
  families plus a ``serve`` span per executed query, linked to the
  gateway hop through the propagated trace id.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Optional

from repro.errors import ReproError, ServeError
from repro.flowql.executor import FlowQLResult
from repro.flowql.parser import parse
from repro.flows.records import Score
from repro.query.plan import (
    ROUTE_FEDERATED,
    Degradation,
    QueryOutcome,
    QueryPlan,
)
from repro.serve import wire
from repro.serve.http11 import Request, read_request, response_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.plane import ServePlane


def timeout_outcome(
    query_text: str, node_label: str, node_path: str, timeout_s: float
) -> QueryOutcome:
    """The honest partial answer for a query that blew its deadline."""
    query = parse(query_text)
    degradation = Degradation()
    degradation.note(
        node_label,
        None,
        f"timeout after {timeout_s:g}s at node {node_label!r}",
        attempted=[node_path],
    )
    plan = QueryPlan(
        route=ROUTE_FEDERATED,
        window=(query.time.start, query.time.end),
        sites=list(query.sites),
    )
    # scalar operators answer an honest zero Score, row operators an
    # honest empty row set — same shape a fully-outaged planner returns
    operator = query.select.name
    scalar = Score() if operator in ("total", "query") else None
    return QueryOutcome(
        result=FlowQLResult(operator=operator, scalar=scalar),
        plan=plan,
        degradation=degradation,
    )


class NodeServer:
    """The bounded HTTP front door of one hierarchy node."""

    def __init__(
        self,
        plane: "ServePlane",
        label: str,
        path: str,
        host: str = "127.0.0.1",
    ) -> None:
        self.plane = plane
        #: root-relative site label ("network1/region1/router1", or the
        #: root's name for the coordinator)
        self.label = label
        #: absolute hierarchy node path (lands in attempted_paths)
        self.path = path
        self.host = host
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._workers: list = []
        #: queue census for the benchmark's backpressure stats
        self.queue_peak = 0
        self.backpressure_rejections = 0
        self.requests_served = 0
        self.timeouts = 0
        #: decaying estimate of one request's service time (seeds the
        #: Retry-After hint on backpressure refusals)
        self._service_estimate_s = 0.005

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.plane.queue_limit)
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, 0, backlog=1024
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._workers = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.plane.workers_per_node)
        ]

    async def stop(self) -> None:
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._workers = []
        if self._queue is not None:
            # resolve anything still queued so no handler hangs forever
            while not self._queue.empty():
                _text, _trace, future = self._queue.get_nowait()
                if not future.done():
                    future.set_result(
                        response_bytes(
                            503,
                            wire.encode_error(
                                ServeError("node server shut down")
                            ),
                        )
                    )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServeError as exc:
                    writer.write(
                        response_bytes(400, wire.encode_error(exc))
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
        except (ConnectionError, OSError):  # peer went away mid-write
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, request: Request) -> bytes:
        if request.method == "GET" and request.path == "/healthz":
            return response_bytes(
                200,
                {
                    "status": "ok",
                    "node": self.label,
                    "queue_depth": self._queue.qsize(),
                    "generation": self.plane.generation(),
                },
            )
        if request.method == "POST" and request.path == "/v1/query":
            return await self._handle_query(request)
        if request.path in ("/healthz", "/v1/query"):
            return response_bytes(
                405, wire.encode_error(ServeError("method not allowed"))
            )
        return response_bytes(
            404,
            wire.encode_error(
                ServeError(f"unknown path {request.path!r}")
            ),
        )

    async def _handle_query(self, request: Request) -> bytes:
        try:
            body = request.json()
        except ServeError as exc:
            return response_bytes(400, wire.encode_error(exc))
        if not isinstance(body, dict) or not isinstance(
            body.get("query"), str
        ):
            return response_bytes(
                400,
                wire.encode_error(
                    ServeError('query body needs {"query": "<flowql>"}')
                ),
            )
        trace_id = request.headers.get("x-repro-trace", "")
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        try:
            self._queue.put_nowait((body["query"], trace_id, future))
        except asyncio.QueueFull:
            self.backpressure_rejections += 1
            self.plane.metrics.rejection("backpressure")
            self.plane.metrics.request(self.label, "rejected", 0.0)
            # the whole queue must drain before a retry can be enqueued
            retry_after = max(
                0.001,
                self.plane.queue_limit * self._service_estimate_s,
            )
            return response_bytes(
                429,
                wire.encode_rejection("backpressure", retry_after),
                # RFC 9110: the header is integer delta-seconds; the
                # exact float rides in the rejection body
                headers={
                    "Retry-After": wire.retry_after_header(retry_after)
                },
            )
        self._note_queue_depth()
        return await future

    # -- execution -----------------------------------------------------------

    def _note_queue_depth(self) -> None:
        depth = self._queue.qsize()
        self.queue_peak = max(self.queue_peak, depth)
        self.plane.metrics.set_queue_depth(
            self.label, depth, self.queue_peak
        )

    async def _worker(self) -> None:
        while True:
            query_text, trace_id, future = await self._queue.get()
            started = time.perf_counter()
            try:
                response = await self._execute(query_text, trace_id)
            except asyncio.CancelledError:
                if not future.done():
                    future.set_result(
                        response_bytes(
                            503,
                            wire.encode_error(
                                ServeError("node server shutting down")
                            ),
                        )
                    )
                raise
            except ReproError as exc:
                self.plane.metrics.request(
                    self.label, "error", time.perf_counter() - started
                )
                response = response_bytes(400, wire.encode_error(exc))
            except Exception as exc:  # noqa: BLE001 - the 500 boundary
                self.plane.server_errors += 1
                self.plane.metrics.request(
                    self.label, "error", time.perf_counter() - started
                )
                response = response_bytes(
                    500,
                    wire.encode_error(
                        ServeError(
                            f"internal error at {self.label!r}: "
                            f"{type(exc).__name__}: {exc}"
                        )
                    ),
                )
            elapsed = time.perf_counter() - started
            self._service_estimate_s = (
                0.8 * self._service_estimate_s + 0.2 * elapsed
            )
            if not future.done():
                future.set_result(response)
            self._queue.task_done()
            self._note_queue_depth()

    async def _execute(self, query_text: str, trace_id: str) -> bytes:
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        call = loop.run_in_executor(
            self.plane.data_executor,
            self.plane.execute_on_node,
            self.label,
            query_text,
            trace_id,
        )
        try:
            outcome = await asyncio.wait_for(
                call, timeout=self.plane.timeout_s
            )
        except asyncio.TimeoutError:
            self.timeouts += 1
            outcome = timeout_outcome(
                query_text, self.label, self.path, self.plane.timeout_s
            )
        self.requests_served += 1
        status = "degraded" if outcome.is_degraded else "ok"
        self.plane.metrics.request(
            self.label, status, time.perf_counter() - started
        )
        return response_bytes(200, wire.encode_outcome(outcome))

"""The FlowQL gateway: one public door, routed to the cheapest node.

:class:`FlowQLGateway` is the load balancer clients actually talk to.
Per request it:

1. **Meters the client** through the per-client token-bucket
   :class:`~repro.serve.admission.AdmissionController`; over-rate
   clients get HTTP 429 with an exact ``Retry-After`` and never touch
   a node queue.
2. **Routes** to the shallowest covering node, reusing the federated
   planner's coverage logic (:meth:`FederatedQueryPlanner.plan`): a
   query the root FlowDB covers lands on the root coordinator, a
   single-site drilldown lands on that site's own node server, and a
   multi-site fan-out lands on the root (which coordinates the fan-out
   exactly as the in-process planner would).  Decisions are cached in
   a :class:`RoutingTable` stamped with the topology generation —
   a live reconfiguration between epochs invalidates the table the
   same way it invalidates the :class:`~repro.datastore.cache.
   QueryCache`.
3. **Forwards** over a keep-alive loopback connection, propagating the
   query span across the hop via the ``X-Repro-Trace`` header, and
   relays the node's response (including its 429 backpressure
   refusals) untouched.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import ReproError, ServeError
from repro.flowql.parser import parse
from repro.query.plan import ROUTE_CLOUD
from repro.serve import wire
from repro.serve.http11 import (
    HTTPConnectionPool,
    Request,
    read_request,
    response_bytes,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.plane import ServePlane


class RoutingTable:
    """Query-text → node-label decisions, keyed to a topology generation.

    A reconfig (join/leave/split/merge/migrate) changes which stores
    exist and what they cover, so every cached decision made under the
    previous shape is discarded the first time the table is consulted
    at the new generation.
    """

    def __init__(self) -> None:
        self.generation: Optional[int] = None
        self._entries: Dict[str, str] = {}
        #: how many generation bumps forced a rebuild (tests/bench)
        self.invalidations = 0
        self.hits = 0
        self.misses = 0

    def _sync_generation(self, generation: int) -> None:
        if self.generation is None:
            self.generation = generation
        elif generation != self.generation:
            self._entries.clear()
            self.generation = generation
            self.invalidations += 1

    def lookup(self, key: str, generation: int) -> Optional[str]:
        self._sync_generation(generation)
        node = self._entries.get(key)
        if node is None:
            self.misses += 1
        else:
            self.hits += 1
        return node

    def record(self, key: str, generation: int, node: str) -> None:
        self._sync_generation(generation)
        self._entries[key] = node

    def __len__(self) -> int:
        return len(self._entries)


class FlowQLGateway:
    """The admission-controlled, coverage-routed front of the plane."""

    def __init__(
        self, plane: "ServePlane", host: str = "127.0.0.1"
    ) -> None:
        self.plane = plane
        self.host = host
        self.port: Optional[int] = None
        self.routing = RoutingTable()
        self._server: Optional[asyncio.AbstractServer] = None
        #: one keep-alive connection pool per node label, so forwards
        #: to the same node can be in flight concurrently
        self._connections: Dict[str, HTTPConnectionPool] = {}
        self._trace_ids = itertools.count(1)
        self.requests_routed = 0
        self.admission_rejections = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.plane.gateway_port,
            backlog=1024,  # thousands of clients may connect at once
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        for connection in self._connections.values():
            await connection.close()
        self._connections.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def endpoint(self) -> str:
        """The URL clients point ``FlowQLClient`` at."""
        if self.port is None:
            raise ServeError("gateway not started")
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServeError as exc:
                    writer.write(
                        response_bytes(400, wire.encode_error(exc))
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, request: Request) -> bytes:
        if request.method == "GET" and request.path == "/healthz":
            return response_bytes(200, self.plane.census())
        if request.method == "GET" and request.path == "/v1/metrics":
            return response_bytes(
                200, self.plane.runtime.obs.registry.snapshot()
            )
        if request.method == "POST" and request.path == "/v1/query":
            return await self._handle_query(request)
        if request.method == "POST" and request.path == "/v1/subscribe":
            return await self._handle_subscribe(request)
        if (
            request.method == "POST"
            and request.path == "/v1/subscribe/poll"
        ):
            return await self._handle_subscribe_poll(request)
        if (
            request.method == "POST"
            and request.path == "/v1/subscribe/cancel"
        ):
            return await self._handle_subscribe_cancel(request)
        return response_bytes(
            404,
            wire.encode_error(
                ServeError(f"unknown path {request.path!r}")
            ),
        )

    # -- the query hop -------------------------------------------------------

    async def _handle_query(self, request: Request) -> bytes:
        try:
            body = request.json()
        except ServeError as exc:
            return response_bytes(400, wire.encode_error(exc))
        if not isinstance(body, dict) or not isinstance(
            body.get("query"), str
        ):
            return response_bytes(
                400,
                wire.encode_error(
                    ServeError('query body needs {"query": "<flowql>"}')
                ),
            )
        client_id = str(
            body.get("client_id")
            or request.headers.get("x-repro-client")
            or "anonymous"
        )
        admitted, retry_after = self.plane.admission.admit(client_id)
        if not admitted:
            self.admission_rejections += 1
            self.plane.metrics.rejection("admission")
            return response_bytes(
                429,
                wire.encode_rejection("admission", retry_after),
                # RFC 9110: the header is integer delta-seconds; the
                # exact float rides in the rejection body
                headers={
                    "Retry-After": wire.retry_after_header(retry_after)
                },
            )
        query_text = body["query"]
        try:
            node = self._route(query_text)
        except ReproError as exc:
            return response_bytes(400, wire.encode_error(exc))
        trace_id = (
            request.headers.get("x-repro-trace")
            or f"g{next(self._trace_ids)}"
        )
        self.requests_routed += 1
        try:
            status, headers, payload = await self._forward(
                node, query_text, client_id, trace_id
            )
        except ServeError as exc:
            return response_bytes(503, wire.encode_error(exc))
        relay_headers = {"X-Repro-Node": node, "X-Repro-Trace": trace_id}
        if "retry-after" in headers:
            relay_headers["Retry-After"] = headers["retry-after"]
        return response_bytes(status, payload, headers=relay_headers)

    # -- standing queries ----------------------------------------------------
    #
    # Subscriptions are runtime-global state (the planner's registry),
    # not per-node capacity, so the gateway serves them directly rather
    # than forwarding: registration runs on the plane's serialized data
    # executor (it performs planner reads), while long-poll *waits* run
    # on the loop's default executor so a thousand idle pollers cannot
    # starve the one data-plane thread.

    #: ceiling on one long-poll wait; clients just poll again
    MAX_POLL_WAIT_S = 30.0

    async def _handle_subscribe(self, request: Request) -> bytes:
        try:
            body = request.json()
        except ServeError as exc:
            return response_bytes(400, wire.encode_error(exc))
        if not isinstance(body, dict) or not isinstance(
            body.get("query"), str
        ):
            return response_bytes(
                400,
                wire.encode_error(
                    ServeError(
                        'subscribe body needs {"query": "<flowql>"}'
                    )
                ),
            )
        client_id = str(
            body.get("client_id")
            or request.headers.get("x-repro-client")
            or "anonymous"
        )
        admitted, retry_after = self.plane.admission.admit(client_id)
        if not admitted:
            self.admission_rejections += 1
            self.plane.metrics.rejection("admission")
            return response_bytes(
                429,
                wire.encode_rejection("admission", retry_after),
                headers={
                    "Retry-After": wire.retry_after_header(retry_after)
                },
            )
        registry = self.plane.runtime.planner.subscriptions
        loop = asyncio.get_running_loop()
        try:
            subscription = await loop.run_in_executor(
                self.plane.data_executor, registry.register, body["query"]
            )
        except ReproError as exc:
            return response_bytes(400, wire.encode_error(exc))
        return response_bytes(
            200,
            wire.encode_subscribed(
                subscription.id, subscription.latest()
            ),
        )

    async def _handle_subscribe_poll(self, request: Request) -> bytes:
        try:
            body = request.json()
        except ServeError as exc:
            return response_bytes(400, wire.encode_error(exc))
        if not isinstance(body, dict) or not isinstance(
            body.get("subscription_id"), str
        ):
            return response_bytes(
                400,
                wire.encode_error(
                    ServeError(
                        "poll body needs "
                        '{"subscription_id": "...", "cursor": <seq>}'
                    )
                ),
            )
        try:
            cursor = int(body.get("cursor", 0))
            timeout_s = min(
                float(body.get("timeout_s", 0.0)), self.MAX_POLL_WAIT_S
            )
        except (TypeError, ValueError):
            return response_bytes(
                400,
                wire.encode_error(
                    ServeError("cursor/timeout_s must be numbers")
                ),
            )
        registry = self.plane.runtime.planner.subscriptions
        loop = asyncio.get_running_loop()
        updates, resync, known = await loop.run_in_executor(
            None,  # the default pool: waits must not hold the data thread
            registry.wait_for,
            body["subscription_id"],
            cursor,
            timeout_s,
        )
        if not known:
            return response_bytes(
                404,
                wire.encode_error(
                    ServeError(
                        "unknown subscription "
                        f"{body['subscription_id']!r} (cancelled, or "
                        "registered against a previous server run)"
                    )
                ),
            )
        next_cursor = updates[-1].seq if updates else cursor
        return response_bytes(
            200, wire.encode_updates(updates, next_cursor, resync)
        )

    async def _handle_subscribe_cancel(self, request: Request) -> bytes:
        try:
            body = request.json()
        except ServeError as exc:
            return response_bytes(400, wire.encode_error(exc))
        if not isinstance(body, dict) or not isinstance(
            body.get("subscription_id"), str
        ):
            return response_bytes(
                400,
                wire.encode_error(
                    ServeError(
                        'cancel body needs {"subscription_id": "..."}'
                    )
                ),
            )
        registry = self.plane.runtime.planner.subscriptions
        cancelled = registry.cancel(body["subscription_id"])
        return response_bytes(200, {"cancelled": cancelled})

    def _route(self, query_text: str) -> str:
        """The serving node for one query (cached per generation)."""
        generation = self.plane.generation()
        before = self.routing.invalidations
        cached = self.routing.lookup(query_text, generation)
        if self.routing.invalidations > before:
            self.plane.metrics.routing_invalidation()
        if cached is not None:
            return cached
        plan = self.plane.runtime.planner.plan(parse(query_text))
        if plan.route == ROUTE_CLOUD or len(plan.sites) != 1:
            # the root coordinates cloud answers and multi-site fan-outs
            node = self.plane.root_label
        else:
            node = plan.sites[0]
        if node not in self.plane.nodes:
            node = self.plane.root_label
        self.routing.record(query_text, generation, node)
        return node

    async def _forward(
        self, node: str, query_text: str, client_id: str, trace_id: str
    ) -> Tuple[int, Dict[str, str], object]:
        connection = self._connections.get(node)
        if connection is None:
            server = self.plane.nodes[node]
            connection = self._connections[node] = HTTPConnectionPool(
                server.host, server.port
            )
        return await connection.request(
            "POST",
            "/v1/query",
            body={"query": query_text, "client_id": client_id},
            headers={
                "X-Repro-Trace": trace_id,
                "X-Repro-Client": client_id,
            },
        )

"""The serving plane's versioned JSON wire schema.

Every payload that crosses an HTTP hop — gateway to node, node back to
gateway, gateway back to the client — is one *envelope*::

    {"wire_version": 1, "kind": "<kind>", "body": {...}}

Kinds:

* ``outcome`` — a full :class:`~repro.query.plan.QueryOutcome`
  (result + plan + cache provenance + degradation), built from the
  ``to_wire``/``from_wire`` pairs the query types themselves carry, so
  a remote answer rebuilds into the *same* typed object an in-process
  call returns — callers cannot tell the difference.
* ``error`` — a typed failure (FlowQL syntax/planning error, internal
  server fault) with the exception class name, message, and — for
  degraded-path failures — the node paths that were attempted.
* ``rejected`` — an admission-control or backpressure refusal with the
  server's ``retry_after_s`` hint.  The exact (possibly fractional)
  float lives in the body; the HTTP ``Retry-After`` header carries the
  RFC 9110 rendering from :func:`retry_after_header` — an *integer*
  number of seconds, rounded up, never 0 on a rejection.
* ``subscribed`` — the acknowledgement of a ``/v1/subscribe``
  registration: the subscription id plus its first update when the
  standing query materialized immediately.
* ``updates`` — a batch of
  :class:`~repro.query.subscriptions.SubscriptionUpdate` snapshots from
  a ``/v1/subscribe/poll`` long-poll, with the cursor the client should
  resume from and a ``resync`` flag when the cursor had fallen out of
  the server's replay ring.

Version handling is strict: decoders accept exactly
:data:`WIRE_VERSION` and raise :class:`~repro.errors.WireSchemaError`
on anything else, because a silently misdecoded partial answer is
worse than a loud protocol error.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import (
    AdmissionError,
    FlowQLPlanningError,
    FlowQLSyntaxError,
    ReproError,
    ServeError,
    WireSchemaError,
)
from repro.query.plan import QueryOutcome
from repro.query.subscriptions import SubscriptionUpdate

#: The one wire version this build speaks.
WIRE_VERSION = 1

KIND_OUTCOME = "outcome"
KIND_ERROR = "error"
KIND_REJECTED = "rejected"
KIND_SUBSCRIBED = "subscribed"
KIND_UPDATES = "updates"

_KINDS = (
    KIND_OUTCOME,
    KIND_ERROR,
    KIND_REJECTED,
    KIND_SUBSCRIBED,
    KIND_UPDATES,
)

#: error-body ``type`` values that rebuild into specific exceptions
_ERROR_TYPES = {
    "FlowQLSyntaxError": FlowQLSyntaxError,
    "FlowQLPlanningError": FlowQLPlanningError,
    "WireSchemaError": WireSchemaError,
    "ServeError": ServeError,
}


def envelope(kind: str, body: dict) -> dict:
    """Wrap one wire body in the versioned envelope."""
    return {"wire_version": WIRE_VERSION, "kind": kind, "body": body}


def open_envelope(data: object) -> tuple:
    """Validate an envelope; returns ``(kind, body)`` or raises."""
    if not isinstance(data, dict):
        raise WireSchemaError(
            f"wire envelope must be an object, got {type(data).__name__}"
        )
    version = data.get("wire_version")
    if version != WIRE_VERSION:
        raise WireSchemaError(
            f"unsupported wire_version {version!r} "
            f"(this build speaks {WIRE_VERSION})"
        )
    kind = data.get("kind")
    body = data.get("body")
    if kind not in _KINDS:
        raise WireSchemaError(f"unknown envelope kind {kind!r}")
    if not isinstance(body, dict):
        raise WireSchemaError("envelope body must be an object")
    return kind, body


# -- outcomes ----------------------------------------------------------------


def encode_outcome(outcome: QueryOutcome) -> dict:
    """A query outcome as a complete wire envelope."""
    return envelope(KIND_OUTCOME, outcome.to_wire())


def decode_outcome(data: object) -> QueryOutcome:
    """Rebuild a :class:`QueryOutcome` from an ``outcome`` envelope."""
    kind, body = open_envelope(data)
    if kind != KIND_OUTCOME:
        raise WireSchemaError(
            f"expected an outcome envelope, got kind {kind!r}"
        )
    return QueryOutcome.from_wire(body)


# -- errors ------------------------------------------------------------------


def encode_error(
    error: BaseException, attempted_paths: Optional[list] = None
) -> dict:
    """A typed failure as a wire envelope (for 4xx/5xx bodies)."""
    return envelope(
        KIND_ERROR,
        {
            "type": type(error).__name__,
            "message": str(error),
            "attempted_paths": list(attempted_paths or []),
        },
    )


def decode_error(body: dict) -> ReproError:
    """Rebuild the closest typed exception from an ``error`` body."""
    error_type = _ERROR_TYPES.get(body.get("type", ""), ServeError)
    message = body.get("message", "remote error")
    attempted = body.get("attempted_paths") or []
    if attempted:
        message = f"{message} (attempted: {', '.join(attempted)})"
    if error_type is FlowQLSyntaxError:
        return FlowQLSyntaxError(message)
    return error_type(message)


# -- subscriptions -----------------------------------------------------------


def encode_subscribed(
    subscription_id: str, first: Optional[SubscriptionUpdate]
) -> dict:
    """A subscription registration ack as a wire envelope."""
    return envelope(
        KIND_SUBSCRIBED,
        {
            "subscription_id": subscription_id,
            "first": first.to_wire() if first is not None else None,
        },
    )


def decode_subscribed(
    data: object,
) -> Tuple[str, Optional[SubscriptionUpdate]]:
    """``(subscription_id, first_update_or_None)`` from the ack."""
    kind, body = open_envelope(data)
    if kind != KIND_SUBSCRIBED:
        raise WireSchemaError(
            f"expected a subscribed envelope, got kind {kind!r}"
        )
    try:
        first = body.get("first")
        return (
            body["subscription_id"],
            SubscriptionUpdate.from_wire(first)
            if first is not None
            else None,
        )
    except KeyError as exc:
        raise WireSchemaError(f"bad subscribed body on the wire: {exc}")


def encode_updates(
    updates: List[SubscriptionUpdate], cursor: int, resync: bool
) -> dict:
    """A long-poll batch as a wire envelope.

    ``cursor`` is the sequence number the client should poll from next;
    ``resync`` warns that the client's previous cursor had aged out of
    the replay ring, so the batch starts at a snapshot newer than the
    gap (snapshots are complete, so only history is lost).
    """
    return envelope(
        KIND_UPDATES,
        {
            "updates": [update.to_wire() for update in updates],
            "cursor": cursor,
            "resync": resync,
        },
    )


def decode_updates(
    data: object,
) -> Tuple[List[SubscriptionUpdate], int, bool]:
    """``(updates, next_cursor, resync)`` from an ``updates`` envelope."""
    kind, body = open_envelope(data)
    if kind != KIND_UPDATES:
        raise WireSchemaError(
            f"expected an updates envelope, got kind {kind!r}"
        )
    try:
        return (
            [
                SubscriptionUpdate.from_wire(update)
                for update in body.get("updates", [])
            ],
            int(body.get("cursor", 0)),
            bool(body.get("resync", False)),
        )
    except (TypeError, ValueError) as exc:
        raise WireSchemaError(f"bad updates body on the wire: {exc}")


# -- rejections --------------------------------------------------------------


def retry_after_header(retry_after_s: float) -> str:
    """The RFC 9110 ``Retry-After`` rendering of a retry hint.

    The header grammar is ``delay-seconds = 1*DIGIT`` — an integer;
    fractional values like ``0.050`` are invalid and real client stacks
    parse them as 0 (retry immediately) or drop them.  Round *up* so a
    rejecting server never advertises a zero wait; the exact float
    still rides in the rejection body for clients that speak the wire
    schema.
    """
    return str(max(1, math.ceil(retry_after_s)))


def encode_rejection(reason: str, retry_after_s: float) -> dict:
    """An admission/backpressure refusal as a wire envelope."""
    return envelope(
        KIND_REJECTED,
        {"reason": reason, "retry_after_s": retry_after_s},
    )


def decode_rejection(body: dict) -> AdmissionError:
    """Rebuild the typed refusal a 429 body describes."""
    reason = body.get("reason", "admission")
    retry_after = float(body.get("retry_after_s", 1.0))
    return AdmissionError(
        f"request rejected ({reason}); retry after {retry_after:g}s",
        retry_after_s=retry_after,
        reason=reason,
    )

"""The serving plane's versioned JSON wire schema.

Every payload that crosses an HTTP hop — gateway to node, node back to
gateway, gateway back to the client — is one *envelope*::

    {"wire_version": 1, "kind": "<kind>", "body": {...}}

Kinds:

* ``outcome`` — a full :class:`~repro.query.plan.QueryOutcome`
  (result + plan + cache provenance + degradation), built from the
  ``to_wire``/``from_wire`` pairs the query types themselves carry, so
  a remote answer rebuilds into the *same* typed object an in-process
  call returns — callers cannot tell the difference.
* ``error`` — a typed failure (FlowQL syntax/planning error, internal
  server fault) with the exception class name, message, and — for
  degraded-path failures — the node paths that were attempted.
* ``rejected`` — an admission-control or backpressure refusal with the
  server's ``retry_after_s`` hint (also sent as the HTTP
  ``Retry-After`` header).

Version handling is strict: decoders accept exactly
:data:`WIRE_VERSION` and raise :class:`~repro.errors.WireSchemaError`
on anything else, because a silently misdecoded partial answer is
worse than a loud protocol error.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import (
    AdmissionError,
    FlowQLPlanningError,
    FlowQLSyntaxError,
    ReproError,
    ServeError,
    WireSchemaError,
)
from repro.query.plan import QueryOutcome

#: The one wire version this build speaks.
WIRE_VERSION = 1

KIND_OUTCOME = "outcome"
KIND_ERROR = "error"
KIND_REJECTED = "rejected"

#: error-body ``type`` values that rebuild into specific exceptions
_ERROR_TYPES = {
    "FlowQLSyntaxError": FlowQLSyntaxError,
    "FlowQLPlanningError": FlowQLPlanningError,
    "WireSchemaError": WireSchemaError,
    "ServeError": ServeError,
}


def envelope(kind: str, body: dict) -> dict:
    """Wrap one wire body in the versioned envelope."""
    return {"wire_version": WIRE_VERSION, "kind": kind, "body": body}


def open_envelope(data: object) -> tuple:
    """Validate an envelope; returns ``(kind, body)`` or raises."""
    if not isinstance(data, dict):
        raise WireSchemaError(
            f"wire envelope must be an object, got {type(data).__name__}"
        )
    version = data.get("wire_version")
    if version != WIRE_VERSION:
        raise WireSchemaError(
            f"unsupported wire_version {version!r} "
            f"(this build speaks {WIRE_VERSION})"
        )
    kind = data.get("kind")
    body = data.get("body")
    if kind not in (KIND_OUTCOME, KIND_ERROR, KIND_REJECTED):
        raise WireSchemaError(f"unknown envelope kind {kind!r}")
    if not isinstance(body, dict):
        raise WireSchemaError("envelope body must be an object")
    return kind, body


# -- outcomes ----------------------------------------------------------------


def encode_outcome(outcome: QueryOutcome) -> dict:
    """A query outcome as a complete wire envelope."""
    return envelope(KIND_OUTCOME, outcome.to_wire())


def decode_outcome(data: object) -> QueryOutcome:
    """Rebuild a :class:`QueryOutcome` from an ``outcome`` envelope."""
    kind, body = open_envelope(data)
    if kind != KIND_OUTCOME:
        raise WireSchemaError(
            f"expected an outcome envelope, got kind {kind!r}"
        )
    return QueryOutcome.from_wire(body)


# -- errors ------------------------------------------------------------------


def encode_error(
    error: BaseException, attempted_paths: Optional[list] = None
) -> dict:
    """A typed failure as a wire envelope (for 4xx/5xx bodies)."""
    return envelope(
        KIND_ERROR,
        {
            "type": type(error).__name__,
            "message": str(error),
            "attempted_paths": list(attempted_paths or []),
        },
    )


def decode_error(body: dict) -> ReproError:
    """Rebuild the closest typed exception from an ``error`` body."""
    error_type = _ERROR_TYPES.get(body.get("type", ""), ServeError)
    message = body.get("message", "remote error")
    attempted = body.get("attempted_paths") or []
    if attempted:
        message = f"{message} (attempted: {', '.join(attempted)})"
    if error_type is FlowQLSyntaxError:
        return FlowQLSyntaxError(message)
    return error_type(message)


# -- rejections --------------------------------------------------------------


def encode_rejection(reason: str, retry_after_s: float) -> dict:
    """An admission/backpressure refusal as a wire envelope."""
    return envelope(
        KIND_REJECTED,
        {"reason": reason, "retry_after_s": retry_after_s},
    )


def decode_rejection(body: dict) -> AdmissionError:
    """Rebuild the typed refusal a 429 body describes."""
    reason = body.get("reason", "admission")
    retry_after = float(body.get("retry_after_s", 1.0))
    return AdmissionError(
        f"request rejected ({reason}); retry after {retry_after:g}s",
        retry_after_s=retry_after,
        reason=reason,
    )

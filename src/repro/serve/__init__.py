"""The networked FlowQL serving plane (``repro serve``).

The paper's hierarchies are *queried from outside*: operators and apps
drill down against whichever node answers cheapest.  This package
turns the in-process query plane into a served one — per-node asyncio
HTTP servers behind an admission-controlled gateway, speaking a
versioned JSON wire schema — while
:class:`~repro.client.FlowQLClient` keeps the programming model
identical to a local call.

* :class:`ServePlane` — boots one :class:`NodeServer` per
  store-bearing node plus a root coordinator and one
  :class:`FlowQLGateway`, on one event loop.
* :class:`FlowQLGateway` / :class:`RoutingTable` — coverage-based
  routing (the federated planner's logic), per-client token-bucket
  admission, topology-generation invalidation.
* :class:`NodeServer` — bounded queue, backpressure 429s, deadline
  degradation to partial outcomes.
* :mod:`repro.serve.wire` — the versioned envelope every hop speaks.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.gateway import FlowQLGateway, RoutingTable
from repro.serve.plane import ServePlane
from repro.serve.server import NodeServer
from repro.serve.wire import (
    WIRE_VERSION,
    decode_outcome,
    encode_outcome,
)

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "FlowQLGateway",
    "RoutingTable",
    "ServePlane",
    "NodeServer",
    "WIRE_VERSION",
    "encode_outcome",
    "decode_outcome",
]

"""Prometheus-style text exposition (and its inverse, for tests).

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.
MetricsRegistry` into the plain-text format every scraper understands:
``# HELP``/``# TYPE`` headers, one ``name{label="value"} value`` line
per series, and cumulative ``_bucket``/``_sum``/``_count`` lines per
histogram.  :func:`parse_prometheus` reads that text back into a flat
``{(name, frozenset(labels)): value}`` mapping so tests can round-trip
exact counter values through the CLI output.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (collects first)."""
    lines = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {family.help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.series():
            labels = _labels_text(family.labelnames, labelvalues)
            if isinstance(child, Histogram):
                for bound, count in child.cumulative_buckets():
                    bucket_labels = _labels_text(
                        family.labelnames + ("le",),
                        labelvalues + (_format_value(bound),),
                    )
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{labels} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


#: A parsed series key: (metric name, frozenset of (label, value) pairs).
SeriesKey = Tuple[str, FrozenSet[Tuple[str, str]]]


def _parse_labels(text: str) -> FrozenSet[Tuple[str, str]]:
    pairs = []
    rest = text
    while rest:
        name, rest = rest.split("=", 1)
        if not rest.startswith('"'):
            raise ValueError(f"malformed label value after {name!r}")
        value_chars = []
        index = 1
        while index < len(rest):
            char = rest[index]
            if char == "\\" and index + 1 < len(rest):
                escaped = rest[index + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped, escaped)
                )
                index += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            index += 1
        pairs.append((name.strip(), "".join(value_chars)))
        rest = rest[index + 1:].lstrip(",")
    return frozenset(pairs)


def parse_prometheus(text: str) -> Dict[SeriesKey, float]:
    """Parse exposition text into ``{(name, labels): value}``.

    Histogram ``_bucket``/``_sum``/``_count`` lines parse as ordinary
    series under their suffixed names.  Comment lines are skipped.
    """
    series: Dict[SeriesKey, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_and_labels, _, value_text = line.rpartition(" ")
        if "{" in name_and_labels:
            name, labels_text = name_and_labels.split("{", 1)
            labels = _parse_labels(labels_text.rstrip("}"))
        else:
            name, labels = name_and_labels, frozenset()
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
        series[(name, labels)] = value
    return series

"""Span trees for epoch rollups and planner queries.

A :class:`Tracer` builds one tree of :class:`Span` objects per traced
operation: ``close_epoch`` roots fan into per-store rollup spans, which
fan into transfer-attempt spans (failed attempts carry the
``TransferError`` reason); ``query`` roots carry the route and cache
verdict and fan into per-store partial-fetch spans.  Finished roots
land in a bounded ring buffer — observability must never become the
mega-dataset problem it measures.

Disabled tracers hand out the shared :data:`NULL_SPAN`, whose methods
are no-ops, so instrumented code paths stay branch-free and the
uninstrumented benchmark baseline is honest.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One timed operation, with attributes and child spans."""

    __slots__ = (
        "name", "attrs", "children", "status", "error",
        "_started", "_ended",
    )

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs)
        self.children: List["Span"] = []
        self.status = STATUS_OK
        self.error: Optional[str] = None
        self._started = time.perf_counter()
        self._ended: Optional[float] = None

    # -- recording -----------------------------------------------------------

    def set_attr(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def fail(self, reason: str) -> None:
        """Mark the span failed without raising."""
        self.status = STATUS_ERROR
        self.error = reason

    def finish(self) -> None:
        if self._ended is None:
            self._ended = time.perf_counter()

    # -- reading -------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds (through now while still open)."""
        end = self._ended if self._ended is not None else time.perf_counter()
        return end - self._started

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> dict:
        """A JSON-able view of the subtree."""
        node = {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1000, 4),
            "status": self.status,
        }
        if self.error is not None:
            node["error"] = self.error
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def render(self, indent: int = 0) -> str:
        """An indented, human-readable subtree."""
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(self.attrs.items())
        )
        flag = "" if self.status == STATUS_OK else f" !{self.error}"
        line = (
            f"{'  ' * indent}{self.name} "
            f"[{self.duration_s * 1000:.2f} ms]"
            f"{' ' + attrs if attrs else ''}{flag}"
        )
        return "\n".join(
            [line] + [child.render(indent + 1) for child in self.children]
        )


class _NullSpan:
    """The do-nothing span a disabled tracer hands out."""

    __slots__ = ()
    name = "<disabled>"
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    status = STATUS_OK
    error = None
    duration_s = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def fail(self, reason: str) -> None:
        pass

    def finish(self) -> None:
        pass

    def walk(self):
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []


#: Shared no-op span; identity-comparable so tests can assert on it.
NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees and keeps the most recent finished roots."""

    def __init__(self, enabled: bool = True, max_traces: int = 64) -> None:
        self.enabled = enabled
        self._stack: List[Span] = []
        self._finished: Deque[Span] = deque(maxlen=max_traces)

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Open one span under the current one (or as a new root)."""
        if not self.enabled:
            yield NULL_SPAN
            return
        span = Span(name, **attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            if span.status == STATUS_OK:
                span.fail(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            span.finish()
            self._stack.pop()
            if not self._stack:
                self._finished.append(span)

    # -- reading -------------------------------------------------------------

    def traces(self, name: Optional[str] = None) -> List[Span]:
        """Finished root spans, oldest first (optionally by name)."""
        roots = list(self._finished)
        if name is not None:
            roots = [root for root in roots if root.name == name]
        return roots

    def last(self, name: Optional[str] = None) -> Optional[Span]:
        """The most recent finished root (optionally by name)."""
        roots = self.traces(name)
        return roots[-1] if roots else None

    def clear(self) -> None:
        """Drop every finished trace."""
        self._finished.clear()

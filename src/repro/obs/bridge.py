"""Wires a :class:`HierarchyRuntime` into a metrics registry.

:func:`install_runtime_metrics` registers every metric family the
``repro metrics`` exposition promises and one *collector* that syncs
the sourced families — per-level volume from
:class:`~repro.runtime.stats.VolumeStats`, per-link traffic from the
fabric, cache hit/miss counts, pending-export depth, and per-store
ingest totals — from their authoritative in-process counters at
collection time.  Nothing here runs on the hot path: the sync happens
only when somebody asks for the exposition/snapshot, which is how the
instrumented runtime stays within the <5% overhead budget while the
exposition can never drift from the numbers the tests pin.

Only the latency histograms (rollup, ingest, query) are event-fed from
the instrumented call sites, because a latency distribution cannot be
reconstructed from totals after the fact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.observability import Observability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runtime import HierarchyRuntime

#: Event-fed histogram family names (referenced by the call sites).
ROLLUP_SECONDS = "repro_rollup_seconds"
INGEST_SECONDS = "repro_ingest_seconds"
QUERY_SECONDS = "repro_query_seconds"


def install_runtime_metrics(
    obs: Observability, runtime: "HierarchyRuntime"
) -> None:
    """Register the runtime's metric families and their collector."""
    if not obs.enabled:
        return
    registry = obs.registry

    # -- per-level volume (sourced from VolumeStats) --------------------------
    raw_bytes = registry.counter(
        "repro_raw_bytes_total",
        "Raw bytes ingested at each hierarchy level",
        ("level",),
    )
    raw_items = registry.counter(
        "repro_raw_items_total",
        "Raw records ingested at each hierarchy level",
        ("level",),
    )
    summary_bytes = registry.counter(
        "repro_summary_bytes_total",
        "Summary bytes entering (in) and leaving (out) each level",
        ("level", "direction"),
    )
    exports = registry.counter(
        "repro_exports_total",
        "Summary exports by outcome: delivered, parked, recovered",
        ("level", "outcome"),
    )
    transfer_attempts = registry.counter(
        "repro_transfer_attempts_total",
        "Rollup transfer attempts per level (including retries)",
        ("level",),
    )
    transfer_failures = registry.counter(
        "repro_transfer_failures_total",
        "Rollup transfer attempts refused by the fault plan",
        ("level",),
    )
    retried_bytes = registry.counter(
        "repro_retried_bytes_total",
        "Bytes re-sent in retry/redelivery attempts per level",
        ("level",),
    )
    queries_served = registry.counter(
        "repro_queries_served_total",
        "Federated queries answered (at least partially) per level",
        ("level",),
    )
    query_bytes = registry.counter(
        "repro_query_bytes_total",
        "Partial-result bytes shipped to the query plane per level",
        ("level",),
    )

    # -- runtime-wide accounting ----------------------------------------------
    epochs_closed = registry.counter(
        "repro_epochs_closed_total", "Epoch closes completed"
    )
    flowdb_bytes = registry.counter(
        "repro_flowdb_exported_bytes_total",
        "Summary bytes delivered into FlowDB at the root",
    )
    flowdb_summaries = registry.counter(
        "repro_flowdb_exported_summaries_total",
        "Summaries delivered into FlowDB at the root",
    )
    queries_total = registry.counter(
        "repro_queries_total",
        "FlowQL queries by route (cloud, federated, cached, degraded)",
        ("route",),
    )

    # -- fabric links (sourced from Link fields) ------------------------------
    fabric_carried = registry.counter(
        "repro_fabric_carried_bytes_total",
        "Bytes delivered across each fabric link",
        ("link",),
    )
    fabric_wasted = registry.counter(
        "repro_fabric_wasted_bytes_total",
        "Bytes burned by failed transfer attempts on each link",
        ("link",),
    )
    fabric_attempts = registry.counter(
        "repro_fabric_hop_attempts_total",
        "Hop traversals attempted on each link",
        ("link",),
    )
    fabric_failures = registry.counter(
        "repro_fabric_hop_failures_total",
        "Hop traversals refused by the fault plan on each link",
        ("link",),
    )

    # -- query cache (sourced from QueryCache counters) -----------------------
    cache_events = registry.counter(
        "repro_query_cache_events_total",
        "Query cache lookups by result (hit, miss, uncacheable)",
        ("result",),
    )
    cache_entries = registry.gauge(
        "repro_query_cache_entries", "Live entries in the query cache"
    )

    # -- pending exports (sourced from the park queues) -----------------------
    pending = registry.gauge(
        "repro_exports_pending",
        "Parked exports awaiting redelivery, by origin site",
        ("site",),
    )
    pending_bytes = registry.gauge(
        "repro_exports_pending_bytes",
        "Bytes parked awaiting redelivery, by origin site",
        ("site",),
    )

    # -- per-store ingest (sourced from DataStore.ingest_stats) ---------------
    store_items = registry.counter(
        "repro_store_ingest_items_total",
        "Items ingested into each store",
        ("site",),
    )
    store_bytes = registry.counter(
        "repro_store_ingest_bytes_total",
        "Bytes ingested into each store",
        ("site",),
    )

    # -- parallel ingest workers (sourced from the pool's shm counters) -------
    worker_queue = registry.gauge(
        "repro_parallel_queue_depth",
        "Batches submitted to an ingest worker but not yet applied",
        ("worker",),
    )
    worker_records = registry.counter(
        "repro_parallel_worker_records_total",
        "Records applied by each ingest worker",
        ("worker",),
    )
    worker_busy = registry.counter(
        "repro_parallel_worker_busy_seconds_total",
        "Seconds each ingest worker spent applying batches",
        ("worker",),
    )
    worker_restarts = registry.counter(
        "repro_parallel_worker_restarts_total",
        "Times each ingest worker was respawned after a crash",
        ("worker",),
    )
    worker_replays = registry.counter(
        "repro_parallel_replayed_batches_total",
        "Batches replayed to respawned ingest workers",
        ("worker",),
    )

    # -- elastic topology (sourced from the TopologyModel) --------------------
    topology_generation = registry.gauge(
        "repro_topology_generation",
        "Live topology generation (bumped by every reconfiguration)",
    )
    reconfig_ops = registry.counter(
        "repro_reconfig_total",
        "Live reconfiguration ops applied, by op",
        ("op",),
    )
    reconfig_migrated = registry.counter(
        "repro_reconfig_migrated_bytes_total",
        "Summary and partition bytes migrated by reconfiguration ops",
    )
    reconfig_pending = registry.gauge(
        "repro_reconfig_pending_migrations",
        "Migration summaries parked on pending queues awaiting redelivery",
    )

    # -- storage engine / durability (sourced from engine.stats()) ------------
    storage_records = registry.gauge(
        "repro_storage_records",
        "Summary records held by the storage engine",
    )
    storage_segments = registry.gauge(
        "repro_storage_segments",
        "Sealed segments the storage engine currently lists",
    )
    storage_segment_bytes = registry.gauge(
        "repro_storage_segment_bytes",
        "On-disk bytes across the engine's sealed segments",
    )
    storage_manifest_writes = registry.counter(
        "repro_storage_manifest_writes_total",
        "Manifest checkpoints committed by the storage engine",
    )
    storage_compactions = registry.counter(
        "repro_storage_compactions_total",
        "Segment compactions run by the storage engine",
    )
    storage_reclaimed = registry.counter(
        "repro_storage_reclaimed_bytes_total",
        "Bytes reclaimed by segment compactions",
    )
    storage_restarts = registry.counter(
        "repro_storage_restarts_total",
        "Store/runtime kill+recover drills executed",
    )
    storage_recoveries = registry.counter(
        "repro_storage_recoveries_total",
        "Full recoveries (open-from-manifest or whole-runtime restart)",
    )
    storage_recovered_records = registry.counter(
        "repro_storage_recovered_records_total",
        "FlowDB records re-indexed from the engine during recoveries",
    )

    # -- event-fed latency histograms (observed at the call sites) ------------
    registry.histogram(
        ROLLUP_SECONDS,
        "Wall-clock seconds one epoch close spent per level",
        ("level",),
    )
    registry.histogram(
        INGEST_SECONDS,
        "Wall-clock seconds per raw ingest batch, by level",
        ("level",),
    )
    registry.histogram(
        QUERY_SECONDS,
        "Wall-clock seconds per planner query, by route",
        ("route",),
    )

    def collect() -> None:
        stats = runtime.stats
        for volume in stats.levels():
            level = volume.level
            raw_bytes.labels(level=level).set_from_source(volume.raw_bytes)
            raw_items.labels(level=level).set_from_source(volume.raw_items)
            summary_bytes.labels(
                level=level, direction="in"
            ).set_from_source(volume.summary_bytes_in)
            summary_bytes.labels(
                level=level, direction="out"
            ).set_from_source(volume.summary_bytes_out)
            exports.labels(
                level=level, outcome="delivered"
            ).set_from_source(volume.exports)
            exports.labels(level=level, outcome="parked").set_from_source(
                volume.exports_parked
            )
            exports.labels(
                level=level, outcome="recovered"
            ).set_from_source(volume.exports_recovered)
            transfer_attempts.labels(level=level).set_from_source(
                volume.transfer_attempts
            )
            transfer_failures.labels(level=level).set_from_source(
                volume.transfer_failures
            )
            retried_bytes.labels(level=level).set_from_source(
                volume.retried_bytes
            )
            queries_served.labels(level=level).set_from_source(
                volume.queries_served
            )
            query_bytes.labels(level=level).set_from_source(
                volume.query_bytes_out
            )
        epochs_closed.labels().set_from_source(stats.epochs_closed)
        flowdb_bytes.labels().set_from_source(stats.exported_bytes)
        flowdb_summaries.labels().set_from_source(stats.exported_summaries)
        queries_total.labels(route="cloud").set_from_source(
            stats.queries_cloud
        )
        queries_total.labels(route="federated").set_from_source(
            stats.queries_federated
        )
        queries_total.labels(route="cached").set_from_source(
            stats.queries_cached
        )
        queries_total.labels(route="degraded").set_from_source(
            stats.queries_degraded
        )
        for link in runtime.fabric.links():
            name = f"{link.upper.path}|{link.lower.path}"
            fabric_carried.labels(link=name).set_from_source(
                link.bytes_carried
            )
            fabric_wasted.labels(link=name).set_from_source(
                link.wasted_bytes
            )
            fabric_attempts.labels(link=name).set_from_source(link.attempts)
            fabric_failures.labels(link=name).set_from_source(link.failures)
        cache = runtime.planner.cache
        if cache is not None:
            cache_events.labels(result="hit").set_from_source(cache.hits)
            cache_events.labels(result="miss").set_from_source(cache.misses)
            cache_events.labels(result="uncacheable").set_from_source(
                cache.uncacheable
            )
            cache_entries.labels().set(len(cache))
        for path, queue in runtime._pending.items():
            site = runtime._labels.get(path, path)
            pending.labels(site=site).set(len(queue))
            pending_bytes.labels(site=site).set(queue.pending_bytes)
        for store in runtime.stores():
            site = runtime._labels[store.location.path]
            store_items.labels(site=site).set_from_source(
                store.ingest_stats.items
            )
            store_bytes.labels(site=site).set_from_source(
                store.ingest_stats.bytes
            )
        model = getattr(runtime, "model", None)
        if model is not None:
            topology_generation.labels().set(model.generation)
            for op, count in model.ledger.op_counts.items():
                reconfig_ops.labels(op=op).set_from_source(count)
            reconfig_migrated.labels().set_from_source(
                model.ledger.migrated_bytes
            )
            reconfig_pending.labels().set(len(model.ledger.pending))
        engine = getattr(runtime, "engine", None)
        if engine is not None:
            engine_stats = engine.stats()
            storage_records.labels().set(engine_stats["records"])
            storage_segments.labels().set(engine_stats["segments"])
            storage_segment_bytes.labels().set(
                engine_stats["segment_bytes"]
            )
            storage_manifest_writes.labels().set_from_source(
                engine_stats["manifest_writes"]
            )
            storage_compactions.labels().set_from_source(
                engine_stats["compactions"]
            )
            storage_reclaimed.labels().set_from_source(
                engine_stats["reclaimed_bytes"]
            )
            storage_restarts.labels().set_from_source(runtime._restarts)
            storage_recoveries.labels().set_from_source(
                runtime._recoveries
            )
            storage_recovered_records.labels().set_from_source(
                runtime._recovered_records
            )
        pool = getattr(runtime, "_pool", None)
        if pool is not None:
            for ws in pool.worker_stats():
                worker = str(ws.worker)
                worker_queue.labels(worker=worker).set(ws.queue_depth)
                worker_records.labels(worker=worker).set_from_source(
                    ws.records_done
                )
                worker_busy.labels(worker=worker).set_from_source(
                    ws.busy_seconds
                )
                worker_restarts.labels(worker=worker).set_from_source(
                    ws.restarts
                )
                worker_replays.labels(worker=worker).set_from_source(
                    ws.replayed_batches
                )

    registry.add_collector(collect)

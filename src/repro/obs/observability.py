"""The single handle instrumented code holds: registry + tracer.

:class:`Observability` bundles one :class:`~repro.obs.metrics.
MetricsRegistry` and one :class:`~repro.obs.tracing.Tracer` behind an
``enabled`` flag.  The runtime, planner, and fabric take this object
(or build an enabled one by default) and never check the flag
themselves: a disabled instance hands out no-op spans and keeps the
registry empty of collectors, so the disabled path is the honest
uninstrumented baseline that ``bench_obs.py`` compares against.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class Observability:
    """Metrics registry and tracer for one runtime instance."""

    def __init__(
        self,
        enabled: bool = True,
        max_traces: int = 64,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.tracer = Tracer(enabled=enabled, max_traces=max_traces)

    @classmethod
    def disabled(cls) -> "Observability":
        """An instance whose spans are no-ops and registry stays idle."""
        return cls(enabled=False)

    def span(self, name: str, **attrs):
        """Open a span (no-op context when disabled)."""
        return self.tracer.span(name, **attrs)

    def observe(self, family_name: str, value: float, **labels) -> None:
        """Record one histogram observation, if enabled and registered.

        Event-fed histograms (rollup/query/ingest latency) funnel
        through here so call sites stay one line and the disabled path
        costs a single attribute check.
        """
        if not self.enabled:
            return
        family = self.registry.get(family_name)
        if family is not None:
            family.labels(**labels).observe(value)

"""Labeled counters, gauges, and histograms behind one registry.

The model is deliberately Prometheus-shaped: a :class:`MetricFamily`
owns a name, a help string, and a tuple of label names; each distinct
label-value combination materializes one child series on first use.
:class:`MetricsRegistry` holds the families and a list of *collectors*
— callbacks run before every collection that sync sourced families
from authoritative in-process state (``VolumeStats``, fabric links,
the query cache), which is how the exposition stays in lockstep with
the counters the rest of the repository pins.

No external client library is used (the container has none); the
subset implemented here — counter, gauge, cumulative-bucket histogram,
text exposition — is exactly what the adaptive-cycle consumers and the
``repro metrics`` CLI need.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import PlacementError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bounds, tuned for sub-second rollup/query latency.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class Counter:
    """A monotonically increasing series (one label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add to the counter (amounts must not be negative)."""
        if amount < 0:
            raise PlacementError(
                f"counters only go up; got inc({amount})"
            )
        self.value += amount

    def set_from_source(self, value: float) -> None:
        """Overwrite from authoritative state (collector use only).

        Sourced counter families are synced wholesale from in-process
        accounting at collection time; this bypasses the monotonicity
        guard because the *source* is the monotone quantity.
        """
        self.value = value


class Gauge:
    """A series that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with a running sum and count."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ``+Inf`` last."""
        pairs = [
            (bound, count)
            for bound, count in zip(self.bounds, self.bucket_counts)
        ]
        pairs.append((float("inf"), self.count))
        return pairs


class MetricFamily:
    """One named metric and all of its labeled series."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not _NAME_RE.match(name):
            raise PlacementError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise PlacementError(f"invalid label name {label!r}")
        if kind not in (COUNTER, GAUGE, HISTOGRAM):
            raise PlacementError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(sorted(buckets))
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == COUNTER:
            return Counter()
        if self.kind == GAUGE:
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labels: str):
        """The child series for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise PlacementError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Every ``(label values, child)`` pair, insertion order."""
        return list(self._children.items())

    def clear(self) -> None:
        """Drop every child series (sourced families re-fill on sync)."""
        self._children.clear()


class MetricsRegistry:
    """All metric families plus the collectors that keep them fresh."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- family registration -------------------------------------------------

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(
                labelnames
            ):
                raise PlacementError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels "
                    f"{list(existing.labelnames)}"
                )
            return existing
        family = MetricFamily(name, help_text, kind, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help_text, COUNTER, tuple(labelnames))

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help_text, GAUGE, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._register(
            name, help_text, HISTOGRAM, tuple(labelnames), buckets
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        """A registered family, or None."""
        return self._families.get(name)

    # -- collection ----------------------------------------------------------

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a sync callback run before every collection."""
        self._collectors.append(collector)

    def collect(self) -> List[MetricFamily]:
        """Sync sourced families, then return every family."""
        for collector in self._collectors:
            collector()
        return list(self._families.values())

    def snapshot(self) -> Dict[str, dict]:
        """A machine-readable (JSON-able) view of every series."""
        snap: Dict[str, dict] = {}
        for family in self.collect():
            series = []
            for labelvalues, child in family.series():
                labels = dict(zip(family.labelnames, labelvalues))
                if isinstance(child, Histogram):
                    series.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                {
                                    "le": (
                                        "+Inf"
                                        if le == float("inf")
                                        else le
                                    ),
                                    "count": count,
                                }
                                for le, count in child.cumulative_buckets()
                            ],
                        }
                    )
                else:
                    series.append(
                        {"labels": labels, "value": child.value}
                    )
            snap[family.name] = {
                "kind": family.kind,
                "help": family.help_text,
                "series": series,
            }
        return snap

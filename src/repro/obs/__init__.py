"""Observability: metrics and tracing for the hierarchy runtime.

The paper's per-level control plane (Figure 3) closes an *adaptive
cycle*: a Manager tunes budgets, aggregators, and replication from live
telemetry.  This package is that telemetry made real — a
:class:`MetricsRegistry` of labeled counters, gauges, and histograms
with Prometheus-style text exposition and a JSON snapshot, plus a
lightweight :class:`Tracer` producing span trees for every epoch
rollup and every planner query.

Two design rules keep it honest:

* **Zero behavioral footprint** — instrumentation never changes what
  the runtime does; byte counters, WAN volume, and query answers are
  bit-identical with observability on, off, or absent.
* **One source of truth** — the hand-rolled
  :class:`~repro.runtime.stats.VolumeStats` counters stay the in-process
  accounting; the registry's volume families are synced from them (and
  from the fabric's per-link fields and the query cache) in lockstep at
  every collection, so the exposition can never drift from the counters
  the tests and benchmarks pin.  Only latency histograms and span trees
  are event-fed, because they cannot be reconstructed after the fact.
"""

from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.observability import Observability
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "Tracer",
    "parse_prometheus",
    "render_prometheus",
]

"""FlowDB: the analytic engine over Flowtree summaries (Section VI).

"FlowDB takes flow summaries as input, stores, and indexes them while
using them to answer FlowQL queries."
"""

from repro.flowdb.db import FlowDB, FlowDBEntry
from repro.flowdb.persistence import load_flowdb, save_flowdb

__all__ = ["FlowDB", "FlowDBEntry", "save_flowdb", "load_flowdb"]

"""FlowDB: storage, indexing, and merged views of Flowtree summaries.

FlowDB is deliberately simple: an append-only table of (location, time
interval, Flowtree) entries with an index by location and a sorted index
by interval start.  Its one non-trivial operation — :meth:`merged_tree`
— is where the paper's combination property pays off: any subset of
sites and any span of epochs collapses into a single queryable tree via
Merge + Compress (``A12 = compress(A1 U A2)``).
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.summary import DataSummary, TimeInterval
from repro.errors import FlowQLPlanningError, SchemaMismatchError
from repro.flows.tree import Flowtree

_entry_counter = itertools.count(1)


@dataclass(frozen=True)
class FlowDBEntry:
    """One indexed Flowtree summary."""

    entry_id: int
    location: str
    interval: TimeInterval
    tree: Flowtree


class FlowDB:
    """An indexed store of Flowtree summaries answering merged queries."""

    def __init__(self, merge_node_budget: Optional[int] = 65536) -> None:
        self.merge_node_budget = merge_node_budget
        self._entries: List[FlowDBEntry] = []
        self._by_location: Dict[str, List[FlowDBEntry]] = {}
        self._starts: List[float] = []  # parallel to _entries (sorted)

    def __len__(self) -> int:
        return len(self._entries)

    # -- ingest ------------------------------------------------------------

    def insert_summary(self, summary: DataSummary) -> FlowDBEntry:
        """Index one exported Flowtree summary."""
        if summary.kind != "flowtree":
            raise SchemaMismatchError(
                f"FlowDB stores flowtree summaries, got {summary.kind!r}"
            )
        return self.insert(
            location=summary.meta.location.path,
            interval=summary.meta.interval,
            tree=summary.payload,
        )

    def insert(
        self, location: str, interval: TimeInterval, tree: Flowtree
    ) -> FlowDBEntry:
        """Index one Flowtree for a location and time interval."""
        if self._entries and not self._entries[0].tree.policy.compatible_with(
            tree.policy
        ):
            raise SchemaMismatchError(
                "tree policy incompatible with trees already in FlowDB"
            )
        entry = FlowDBEntry(
            entry_id=next(_entry_counter),
            location=location,
            interval=interval,
            tree=tree,
        )
        index = bisect.bisect(self._starts, interval.start)
        self._starts.insert(index, interval.start)
        self._entries.insert(index, entry)
        self._by_location.setdefault(location, []).append(entry)
        return entry

    # -- lookup ------------------------------------------------------------

    def locations(self) -> List[str]:
        """All indexed locations."""
        return sorted(self._by_location)

    def entries(
        self,
        locations: Optional[Sequence[str]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[FlowDBEntry]:
        """Entries matching a location set and/or time window."""
        if locations is not None:
            unknown = [l for l in locations if l not in self._by_location]
            if unknown:
                raise FlowQLPlanningError(
                    f"unknown locations {unknown}; indexed: {self.locations()}"
                )
            pool: Iterable[FlowDBEntry] = (
                entry
                for location in locations
                for entry in self._by_location[location]
            )
        else:
            pool = self._entries
        selected = []
        for entry in pool:
            if start is not None and entry.interval.end <= start:
                continue
            if end is not None and entry.interval.start >= end:
                continue
            selected.append(entry)
        selected.sort(key=lambda e: (e.interval.start, e.location))
        return selected

    def time_span(self) -> Optional[TimeInterval]:
        """The interval covered by all entries (None when empty)."""
        if not self._entries:
            return None
        return TimeInterval(
            min(e.interval.start for e in self._entries),
            max(e.interval.end for e in self._entries),
        )

    # -- merged views ---------------------------------------------------------

    def merged_tree(
        self,
        locations: Optional[Sequence[str]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Flowtree:
        """``compress(union of matching trees)`` — the Section VI recipe.

        Raises :class:`FlowQLPlanningError` when nothing matches, since
        an empty merge would silently answer every query with zero.
        """
        matching = self.entries(locations=locations, start=start, end=end)
        if not matching:
            raise FlowQLPlanningError(
                "no Flowtree summaries match the requested sites/window "
                f"(locations={locations}, start={start}, end={end})"
            )
        merged = Flowtree(
            matching[0].tree.policy,
            node_budget=self.merge_node_budget,
            metric=matching[0].tree.metric,
        )
        for entry in matching:
            merged.merge(entry.tree)
        return merged

    def stats(self) -> Dict[str, int]:
        """Index statistics (entries, locations, total nodes)."""
        return {
            "entries": len(self._entries),
            "locations": len(self._by_location),
            "total_nodes": sum(e.tree.node_count for e in self._entries),
        }

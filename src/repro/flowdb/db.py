"""FlowDB: storage, indexing, and merged views of Flowtree summaries.

FlowDB is deliberately simple: an append-only table of (location, time
interval, Flowtree) entries with an index by location and a sorted index
by interval start.  Its one non-trivial operation — :meth:`merged_tree`
— is where the paper's combination property pays off: any subset of
sites and any span of epochs collapses into a single queryable tree via
Merge + Compress (``A12 = compress(A1 U A2)``).

Where the entries *live* is delegated to a pluggable
:class:`~repro.storage.engine.StorageEngine`: every insert is logged to
the engine, and :meth:`recover` rebuilds the whole index from it —
lazily, where the engine stores records on disk (an entry's tree is
loaded on first access, not at recovery time).  The default
:class:`~repro.storage.engine.MemoryEngine` keeps references to the
live trees, which preserves the historical in-memory behavior exactly.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.summary import DataSummary, TimeInterval
from repro.errors import FlowQLPlanningError, SchemaMismatchError
from repro.flows.flowkey import GeneralizationPolicy
from repro.flows.tree import Flowtree
from repro.storage.engine import MemoryEngine, StorageEngine

_entry_counter = itertools.count(1)


class FlowDBEntry:
    """One indexed Flowtree summary, possibly not yet materialized.

    ``tree`` loads lazily through the storage engine's record loader
    when the entry was recovered from disk; entries created by a live
    :meth:`FlowDB.insert` hold their tree directly.  Everything else
    (identity, location, interval) is plain indexed state.
    """

    __slots__ = ("entry_id", "location", "interval", "_tree", "_loader")

    def __init__(
        self,
        entry_id: int,
        location: str,
        interval: TimeInterval,
        tree: Optional[Flowtree] = None,
        loader: Optional[Callable[[], Flowtree]] = None,
    ) -> None:
        if tree is None and loader is None:
            raise ValueError("FlowDBEntry needs a tree or a loader")
        self.entry_id = entry_id
        self.location = location
        self.interval = interval
        self._tree = tree
        self._loader = loader

    @property
    def tree(self) -> Flowtree:
        """The summary tree (loaded from the engine on first access)."""
        if self._tree is None:
            self._tree = self._loader()
        return self._tree

    @property
    def loaded(self) -> bool:
        """Whether the tree is materialized in memory."""
        return self._tree is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlowDBEntry(id={self.entry_id}, location={self.location!r}, "
            f"interval={self.interval}, loaded={self.loaded})"
        )


class FlowDB:
    """An indexed store of Flowtree summaries answering merged queries."""

    def __init__(
        self,
        merge_node_budget: Optional[int] = 65536,
        engine: Optional[StorageEngine] = None,
    ) -> None:
        self.merge_node_budget = merge_node_budget
        #: where entries are made durable (memory by default)
        self.engine = engine or MemoryEngine()
        self._entries: List[FlowDBEntry] = []
        self._by_location: Dict[str, List[FlowDBEntry]] = {}
        self._starts: List[float] = []  # parallel to _entries (sorted)

    def __len__(self) -> int:
        return len(self._entries)

    # -- ingest ------------------------------------------------------------

    def insert_summary(self, summary: DataSummary) -> FlowDBEntry:
        """Index one exported Flowtree summary."""
        if summary.kind != "flowtree":
            raise SchemaMismatchError(
                f"FlowDB stores flowtree summaries, got {summary.kind!r}"
            )
        return self.insert(
            location=summary.meta.location.path,
            interval=summary.meta.interval,
            tree=summary.payload,
        )

    def insert(
        self, location: str, interval: TimeInterval, tree: Flowtree
    ) -> FlowDBEntry:
        """Index one Flowtree for a location and time interval."""
        if self._entries and not self._entries[0].tree.policy.compatible_with(
            tree.policy
        ):
            raise SchemaMismatchError(
                "tree policy incompatible with trees already in FlowDB"
            )
        entry = FlowDBEntry(
            entry_id=next(_entry_counter),
            location=location,
            interval=interval,
            tree=tree,
        )
        self._index(entry)
        self.engine.append_summary(location, interval, tree)
        return entry

    def _index(self, entry: FlowDBEntry) -> None:
        index = bisect.bisect(self._starts, entry.interval.start)
        self._starts.insert(index, entry.interval.start)
        self._entries.insert(index, entry)
        self._by_location.setdefault(entry.location, []).append(entry)

    # -- recovery ----------------------------------------------------------

    def recover(self, policy: GeneralizationPolicy) -> int:
        """Drop the in-memory index and rebuild it from the engine.

        Trees recovered from a durable engine stay unmaterialized until
        first access; ``policy`` is needed to decode them (schemas hold
        feature objects that do not round-trip through JSON).  Returns
        the number of entries indexed.
        """
        self._entries = []
        self._by_location = {}
        self._starts = []
        for record in self.engine.iter_summaries(policy):
            self._index(
                FlowDBEntry(
                    entry_id=next(_entry_counter),
                    location=record.location,
                    interval=record.interval,
                    loader=record.load,
                )
            )
        return len(self._entries)

    def relabel(self, old: str, new: str) -> int:
        """Re-home every entry of one location under a new label.

        Elastic reconfigurations rename sites; the index moves the
        entries immediately and the engine records the rename for its
        own storage (a segment log applies it physically at the next
        compaction).  Returns how many entries moved.
        """
        if old == new:
            return 0
        self.engine.relabel(old, new)
        moved = self._by_location.pop(old, None)
        if not moved:
            return 0
        for entry in moved:
            entry.location = new
        merged = self._by_location.get(new, []) + moved
        merged.sort(key=lambda e: e.entry_id)
        self._by_location[new] = merged
        return len(moved)

    # -- lookup ------------------------------------------------------------

    def locations(self) -> List[str]:
        """All indexed locations."""
        return sorted(self._by_location)

    def entries(
        self,
        locations: Optional[Sequence[str]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[FlowDBEntry]:
        """Entries matching a location set and/or time window."""
        if locations is not None:
            unknown = [l for l in locations if l not in self._by_location]
            if unknown:
                raise FlowQLPlanningError(
                    f"unknown locations {unknown}; indexed: {self.locations()}"
                )
            pool: Iterable[FlowDBEntry] = (
                entry
                for location in locations
                for entry in self._by_location[location]
            )
        else:
            pool = self._entries
        selected = []
        for entry in pool:
            if start is not None and entry.interval.end <= start:
                continue
            if end is not None and entry.interval.start >= end:
                continue
            selected.append(entry)
        selected.sort(key=lambda e: (e.interval.start, e.location))
        return selected

    def entries_since(self, entry_id: int) -> List[FlowDBEntry]:
        """Entries inserted (or recovered) after a given entry id.

        Entry ids are process-monotonic, so a caller that remembers the
        highest id it has seen can cheaply ask "what arrived since?" —
        the planner uses this at each epoch close to spot *late*
        deliveries (parked exports whose interval predates the previous
        boundary) that re-open cached historical windows.
        """
        return [e for e in self._entries if e.entry_id > entry_id]

    def max_entry_id(self) -> int:
        """The highest entry id currently indexed (0 when empty)."""
        return max((e.entry_id for e in self._entries), default=0)

    def time_span(self) -> Optional[TimeInterval]:
        """The interval covered by all entries (None when empty)."""
        if not self._entries:
            return None
        return TimeInterval(
            min(e.interval.start for e in self._entries),
            max(e.interval.end for e in self._entries),
        )

    # -- merged views ---------------------------------------------------------

    def merged_tree(
        self,
        locations: Optional[Sequence[str]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Flowtree:
        """``compress(union of matching trees)`` — the Section VI recipe.

        Raises :class:`FlowQLPlanningError` when nothing matches, since
        an empty merge would silently answer every query with zero.
        """
        matching = self.entries(locations=locations, start=start, end=end)
        if not matching:
            raise FlowQLPlanningError(
                "no Flowtree summaries match the requested sites/window "
                f"(locations={locations}, start={start}, end={end})"
            )
        merged = Flowtree(
            matching[0].tree.policy,
            node_budget=self.merge_node_budget,
            metric=matching[0].tree.metric,
        )
        for entry in matching:
            merged.merge(entry.tree)
        return merged

    def stats(self) -> Dict[str, int]:
        """Index statistics (entries, locations, total nodes).

        ``total_nodes`` counts materialized trees only — it must not
        defeat lazy segment reads by loading every entry.
        """
        return {
            "entries": len(self._entries),
            "locations": len(self._by_location),
            "loaded_entries": sum(1 for e in self._entries if e.loaded),
            "total_nodes": sum(
                e.tree.node_count for e in self._entries if e.loaded
            ),
        }

"""FlowDB persistence: save/load the summary index to disk.

FlowDB "stores and indexes" summaries; for a library that means the
index must survive a process restart.  The format is a single JSON
document — one header (format version, policy shape) plus one record
per entry with the serialized Flowtree (via
:meth:`repro.flows.tree.Flowtree.to_dict`).  Schemas hold feature
objects that do not round-trip through JSON, so loading takes the
:class:`~repro.flows.flowkey.GeneralizationPolicy` explicitly and
validates it against the stored shape.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.summary import TimeInterval
from repro.errors import SchemaMismatchError, StorageError
from repro.flowdb.db import FlowDB
from repro.flows.flowkey import GeneralizationPolicy
from repro.flows.tree import Flowtree

FORMAT_VERSION = 1


def save_flowdb(db: FlowDB, path: str) -> int:
    """Write the whole FlowDB to ``path``; returns entries written.

    Writes to a temporary file first and renames, so a crash mid-save
    never leaves a truncated index behind.
    """
    entries = db.entries()
    document = {
        "format_version": FORMAT_VERSION,
        "merge_node_budget": db.merge_node_budget,
        "entries": [
            {
                "location": entry.location,
                "start": entry.interval.start,
                "end": entry.interval.end,
                "tree": entry.tree.to_dict(),
            }
            for entry in entries
        ],
    }
    temp_path = f"{path}.tmp"
    with open(temp_path, "w") as handle:
        json.dump(document, handle)
    os.replace(temp_path, path)
    return len(entries)


def load_flowdb(
    path: str,
    policy: GeneralizationPolicy,
    merge_node_budget: Optional[int] = None,
) -> FlowDB:
    """Load a FlowDB saved with :func:`save_flowdb`.

    ``policy`` must match the shape the trees were built with (checked
    tree by tree).  ``merge_node_budget`` overrides the saved value.
    """
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError as exc:
        raise StorageError(f"no FlowDB file at {path!r}") from exc
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt FlowDB file at {path!r}: {exc}") from exc
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported FlowDB format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    db = FlowDB(
        merge_node_budget=(
            merge_node_budget
            if merge_node_budget is not None
            else document.get("merge_node_budget")
        )
    )
    for record in document["entries"]:
        try:
            tree = Flowtree.from_dict(record["tree"], policy)
        except SchemaMismatchError as exc:
            raise SchemaMismatchError(
                f"entry for {record['location']!r} "
                f"[{record['start']}, {record['end']}) does not match the "
                f"supplied policy: {exc}"
            ) from exc
        db.insert(
            location=record["location"],
            interval=TimeInterval(record["start"], record["end"]),
            tree=tree,
        )
    return db

"""FlowDB persistence: the format-v1 JSON compat layer.

Historically this module *was* the durability story — one JSON document
holding the whole index.  The real story now lives in
:mod:`repro.storage` (per-epoch segment logs, manifests, recovery);
what remains here is a thin compat wrapper kept for two jobs:

* **save**: the same single-document format v1, but written through
  :func:`repro.storage.codec.atomic_write_json` — the temp file is
  fsynced before the rename and the directory after it, closing the
  crash window the old implementation had (an ``os.replace`` without
  fsync can surface an empty file after power loss on some
  filesystems).
* **load / migrate**: format-v1 documents still load, and
  ``load_flowdb(..., engine=SegmentLogEngine(dir))`` replays a v1
  snapshot into a durable engine — each entry is inserted through the
  normal FlowDB path, so it lands in the engine's record log; seal and
  write a manifest afterwards to finish the migration.

Schemas hold feature objects that do not round-trip through JSON, so
loading takes the :class:`~repro.flows.flowkey.GeneralizationPolicy`
explicitly and validates it against the stored shape.
"""

from __future__ import annotations

from typing import Optional

import json

from repro.core.summary import TimeInterval
from repro.errors import SchemaMismatchError, StorageError
from repro.flowdb.db import FlowDB
from repro.flows.flowkey import GeneralizationPolicy
from repro.flows.tree import Flowtree
from repro.storage.codec import atomic_write_json
from repro.storage.engine import StorageEngine

FORMAT_VERSION = 1


def save_flowdb(db: FlowDB, path: str) -> int:
    """Write the whole FlowDB to ``path``; returns entries written.

    Uses the durable write protocol (fsync temp file, rename, fsync
    directory), so a crash at any point leaves either the previous
    document or the new one — never a truncated or empty file.
    """
    entries = db.entries()
    document = {
        "format_version": FORMAT_VERSION,
        "merge_node_budget": db.merge_node_budget,
        "entries": [
            {
                "location": entry.location,
                "start": entry.interval.start,
                "end": entry.interval.end,
                "tree": entry.tree.to_dict(),
            }
            for entry in entries
        ],
    }
    atomic_write_json(path, document)
    return len(entries)


def load_flowdb(
    path: str,
    policy: GeneralizationPolicy,
    merge_node_budget: Optional[int] = None,
    engine: Optional[StorageEngine] = None,
) -> FlowDB:
    """Load a FlowDB saved with :func:`save_flowdb`.

    ``policy`` must match the shape the trees were built with (checked
    tree by tree).  ``merge_node_budget`` overrides the saved value.
    Passing a durable ``engine`` migrates the v1 snapshot into it: every
    entry goes through :meth:`FlowDB.insert`, which logs it to the
    engine's record store.
    """
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError as exc:
        raise StorageError(f"no FlowDB file at {path!r}") from exc
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt FlowDB file at {path!r}: {exc}") from exc
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported FlowDB format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    db = FlowDB(
        merge_node_budget=(
            merge_node_budget
            if merge_node_budget is not None
            else document.get("merge_node_budget")
        ),
        engine=engine,
    )
    for record in document["entries"]:
        try:
            tree = Flowtree.from_dict(record["tree"], policy)
        except SchemaMismatchError as exc:
            raise SchemaMismatchError(
                f"entry for {record['location']!r} "
                f"[{record['start']}, {record['end']}) does not match the "
                f"supplied policy: {exc}"
            ) from exc
        db.insert(
            location=record["location"],
            interval=TimeInterval(record["start"], record["end"]),
            tree=tree,
        )
    return db

"""Network-monitoring workload (Section II.B): per-router flow exports.

Each site (router) observes traffic between a global, Zipf-popular
population of external hosts and its own internal prefix.  Flow sizes
are heavy-tailed, service ports follow a configurable mix, and exports
can be packet-sampled (the paper's "1 of every 10K packets").  The
generator is deterministic per (seed, site, epoch), so multi-site,
multi-epoch experiments are reproducible and per-site summaries really
do describe overlapping-but-distinct traffic — the precondition for
meaningful Merge/Diff across locations.

A DDoS helper injects attack epochs: many spoofed sources converging on
one victim, which is what the investigation application (Section II.B
problem (c)) must localize.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.flows.features import parse_ipv4
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema
from repro.flows.records import FlowRecord, PacketRecord


#: Default service mix: (protocol, destination port, relative weight).
DEFAULT_SERVICES: Tuple[Tuple[int, int, float], ...] = (
    (6, 443, 0.45),   # HTTPS
    (6, 80, 0.20),    # HTTP
    (17, 53, 0.12),   # DNS
    (6, 22, 0.05),    # SSH
    (17, 123, 0.03),  # NTP
    (6, 25, 0.05),    # SMTP
    (6, 8080, 0.10),  # alt HTTP
)


@dataclass(frozen=True)
class TrafficConfig:
    """Parameters of the synthetic traffic mix."""

    sites: Tuple[str, ...] = ("region1/router1", "region2/router1")
    flows_per_epoch: int = 5000
    epoch_seconds: float = 60.0
    external_hosts: int = 20000
    internal_hosts_per_site: int = 256
    zipf_exponent: float = 1.2
    mean_packets_per_flow: float = 20.0
    mean_packet_bytes: int = 800
    services: Tuple[Tuple[int, int, float], ...] = DEFAULT_SERVICES
    sample_1_in: int = 1
    schema: FeatureSchema = field(default=FIVE_TUPLE)


class TrafficGenerator:
    """Deterministic flow-record generator over a site set."""

    def __init__(self, config: TrafficConfig = TrafficConfig(), seed: int = 42):
        self.config = config
        self.seed = seed
        rng = random.Random(seed)
        # Global external population with prefix structure: hosts cluster
        # into /24s inside a handful of /8s, mirroring real allocation.
        self._external: List[int] = []
        base_networks = [parse_ipv4(f"{octet}.0.0.0") for octet in (23, 64, 98, 151, 203)]
        prefixes = max(1, config.external_hosts // 200)
        prefix_bases = [
            rng.choice(base_networks)
            | (rng.randrange(1 << 16) << 8)
            for _ in range(prefixes)
        ]
        for _ in range(config.external_hosts):
            base = rng.choice(prefix_bases)
            self._external.append(base | rng.randrange(256))
        # Popularity rank: shuffle so host identity and rank decouple.
        rng.shuffle(self._external)
        self._service_cdf = self._build_cdf([w for _, _, w in config.services])
        self._site_index = {site: i for i, site in enumerate(config.sites)}

    @staticmethod
    def _build_cdf(weights: Sequence[float]) -> List[float]:
        total = sum(weights)
        cdf, running = [], 0.0
        for weight in weights:
            running += weight / total
            cdf.append(running)
        return cdf

    def internal_prefix(self, site: str) -> int:
        """The site's internal /24 network address (10.0.x.0)."""
        index = self._site_index[site]
        return parse_ipv4("10.0.0.0") | (index << 8)

    def _internal_host(self, site: str, rng: random.Random) -> int:
        return self.internal_prefix(site) | rng.randrange(
            1, max(2, self.config.internal_hosts_per_site)
        )

    def _external_host(self, rng: random.Random) -> int:
        # Zipf-like popularity: heavy-tailed rank via a Pareto draw.
        rank = int(rng.paretovariate(self.config.zipf_exponent)) - 1
        return self._external[rank % len(self._external)]

    def _pick_service(self, rng: random.Random) -> Tuple[int, int]:
        draw = rng.random()
        for cdf_value, (proto, port, _) in zip(self._service_cdf, self.config.services):
            if draw <= cdf_value:
                return proto, port
        proto, port, _ = self.config.services[-1]
        return proto, port

    def _epoch_rng(self, site: str, epoch: int, salt: str = "") -> random.Random:
        return random.Random((self.seed, site, epoch, salt).__repr__())

    def epoch(self, site: str, epoch: int) -> List[FlowRecord]:
        """Generate the flow records router ``site`` exports for one epoch.

        Epoch ``e`` spans ``[e * epoch_seconds, (e+1) * epoch_seconds)``.
        With ``sample_1_in > 1`` the packet counts are thinned
        binomially, modeling sampled NetFlow; flows whose every packet is
        dropped by sampling are not exported at all.
        """
        config = self.config
        rng = self._epoch_rng(site, epoch)
        start = epoch * config.epoch_seconds
        records: List[FlowRecord] = []
        for _ in range(config.flows_per_epoch):
            src = self._external_host(rng)
            dst = self._internal_host(site, rng)
            proto, dst_port = self._pick_service(rng)
            src_port = rng.randrange(1024, 65536)
            packets = max(1, int(rng.expovariate(1.0 / config.mean_packets_per_flow)))
            packet_bytes = max(
                64, int(rng.gauss(config.mean_packet_bytes, config.mean_packet_bytes / 4))
            )
            if config.sample_1_in > 1:
                kept = sum(
                    1 for _ in range(packets) if rng.random() < 1.0 / config.sample_1_in
                )
                if kept == 0:
                    continue
                packets = kept * config.sample_1_in  # rescaled estimate
            first = start + rng.uniform(0, config.epoch_seconds * 0.9)
            last = min(
                start + config.epoch_seconds,
                first + rng.uniform(0, config.epoch_seconds - (first - start)),
            )
            key = config.schema.key(
                proto=proto,
                src_ip=src,
                dst_ip=dst,
                src_port=src_port,
                dst_port=dst_port,
            )
            records.append(
                FlowRecord(
                    key=key,
                    packets=packets,
                    bytes=packets * packet_bytes,
                    first_seen=first,
                    last_seen=last,
                )
            )
        return records

    def ddos_epoch(
        self,
        site: str,
        epoch: int,
        victim: Optional[int] = None,
        attack_flows: int = 2000,
        attack_port: int = 80,
    ) -> List[FlowRecord]:
        """An epoch of background traffic plus a DDoS on ``victim``.

        Attack sources are drawn uniformly (not by popularity) from the
        external population — the signature the HHH/Flowtree diff-based
        investigation detects as a new heavy prefix aimed at one host.
        """
        records = self.epoch(site, epoch)
        rng = self._epoch_rng(site, epoch, salt="ddos")
        config = self.config
        start = epoch * config.epoch_seconds
        if victim is None:
            victim = self.internal_prefix(site) | 1
        for _ in range(attack_flows):
            src = self._external[rng.randrange(len(self._external))]
            key = config.schema.key(
                proto=6,
                src_ip=src,
                dst_ip=victim,
                src_port=rng.randrange(1024, 65536),
                dst_port=attack_port,
            )
            packets = max(1, int(rng.expovariate(1.0 / 50.0)))
            records.append(
                FlowRecord(
                    key=key,
                    packets=packets,
                    bytes=packets * 60,  # small SYN-flood style packets
                    first_seen=start + rng.uniform(0, config.epoch_seconds * 0.5),
                    last_seen=start + config.epoch_seconds,
                )
            )
        return records

    def packet_epoch(
        self,
        site: str,
        epoch: int,
        sample_1_in: int = 10_000,
    ) -> List[PacketRecord]:
        """Per-packet sampled capture of one epoch ("1 of every 10K
        packets", Section II.B).

        Packets are drawn from the same flow population as
        :meth:`epoch` (ignoring the config's flow-level ``sample_1_in``
        so both views describe identical traffic); each sampled packet
        carries its inverse sampling rate, so Flowtree estimates built
        from packets are unbiased against the flow-level ground truth.
        """
        config = self.config
        if config.sample_1_in > 1:
            unsampled = TrafficGenerator(
                TrafficConfig(
                    **{
                        **config.__dict__,
                        "sample_1_in": 1,
                    }
                ),
                seed=self.seed,
            )
            flows = unsampled.epoch(site, epoch)
        else:
            flows = self.epoch(site, epoch)
        rng = self._epoch_rng(site, epoch, salt="packets")
        packets: List[PacketRecord] = []
        for record in flows:
            kept = sum(
                1 for _ in range(record.packets)
                if rng.random() < 1.0 / sample_1_in
            )
            if kept == 0:
                continue
            mean_size = max(64, record.bytes // max(1, record.packets))
            for _ in range(kept):
                packets.append(
                    PacketRecord(
                        key=record.key,
                        bytes=mean_size,
                        timestamp=rng.uniform(
                            record.first_seen, record.last_seen
                        ),
                        sampled_1_in=sample_1_in,
                    )
                )
        packets.sort(key=lambda p: p.timestamp)
        return packets

    def epochs(self, site: str, count: int) -> List[List[FlowRecord]]:
        """The first ``count`` epochs for one site."""
        return [self.epoch(site, index) for index in range(count)]

"""A minimal discrete-event simulator.

Everything in the library that needs time — sensors emitting readings,
data stores closing epochs, the manager's adaptation loop, replication
transfers completing — runs as callbacks scheduled on one
:class:`Simulator`.  The simulator is single-threaded and deterministic:
events at equal timestamps fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError

EventCallback = Callable[["Simulator"], None]


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordering is (time, sequence number)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the queue)."""
        self.cancelled = True


class Simulator:
    """A deterministic event loop over simulated seconds."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule_at(self, time: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        event = Event(time=time, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` after a relative delay (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback)

    def every(
        self,
        interval: float,
        callback: EventCallback,
        until: Optional[float] = None,
        start_at: Optional[float] = None,
    ) -> None:
        """Schedule ``callback`` periodically (first firing at
        ``start_at``, default ``now + interval``)."""
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        first = start_at if start_at is not None else self._now + interval

        def fire(sim: "Simulator") -> None:
            callback(sim)
            next_time = sim.now + interval
            if until is None or next_time <= until:
                sim.schedule_at(next_time, fire)

        if until is None or first <= until:
            self.schedule_at(first, fire)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_fired += 1
            event.callback(self)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Fire every event scheduled strictly before or at ``time``;
        the clock ends exactly at ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards: {time} < now {self._now}"
            )
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
        self._now = time

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; "
                    "likely an unbounded periodic schedule"
                )
        return fired

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

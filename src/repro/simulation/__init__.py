"""Discrete-event simulation and workload generation.

The paper's evaluation targets — factory sensor floods, router flow
exports, and the enterprise query trace used for replication — are not
shippable datasets, so this package synthesizes them (see DESIGN.md §4
for the substitution argument):

* :mod:`repro.simulation.events` — a minimal discrete-event simulator
  with a simulated clock.
* :mod:`repro.simulation.sensors` — sensor and actuator processes,
  including the paper's cited 3D-camera (52 GB/h) and HD-camera
  (17.5 GB/h) data rates.
* :mod:`repro.simulation.factory` — a smart-factory workload: production
  lines of machines whose mechanics degrade over time.
* :mod:`repro.simulation.traffic` — Zipf-distributed 5-tuple traffic per
  router with 1-in-N packet sampling.
* :mod:`repro.simulation.querytrace` — partition access traces with
  heavy-tailed per-partition access runs, for the replication benchmarks.
"""

from repro.simulation.events import Event, Simulator
from repro.simulation.sensors import (
    Actuator,
    CameraSensor,
    ScalarSensor,
    SensorReading,
    BYTES_3D_CAMERA_PER_HOUR,
    BYTES_HD_CAMERA_PER_HOUR,
)
from repro.simulation.factory import (
    FactoryWorkload,
    Machine,
    MachineState,
    build_factory,
)
from repro.simulation.production import (
    ProductionEvent,
    ProductionLineSimulator,
)
from repro.simulation.traffic import TrafficConfig, TrafficGenerator
from repro.simulation.querytrace import (
    AccessEvent,
    QueryTraceConfig,
    QueryTraceGenerator,
)

__all__ = [
    "Event",
    "Simulator",
    "SensorReading",
    "ScalarSensor",
    "CameraSensor",
    "Actuator",
    "BYTES_3D_CAMERA_PER_HOUR",
    "BYTES_HD_CAMERA_PER_HOUR",
    "Machine",
    "MachineState",
    "FactoryWorkload",
    "build_factory",
    "ProductionEvent",
    "ProductionLineSimulator",
    "TrafficConfig",
    "TrafficGenerator",
    "AccessEvent",
    "QueryTraceConfig",
    "QueryTraceGenerator",
]

"""Production-event simulation: items moving down a line.

Process mining (Section II.A application (c)) needs an *event log* —
items entering and leaving machines — not just sensor telemetry.  This
module simulates a serial production line: items arrive at the first
machine, each machine processes one item at a time (processing time
grows with the machine's wear), and items queue between stations.  The
emitted :class:`ProductionEvent` log is what the event-log analytics in
:mod:`repro.analytics.eventlog` mine for bottlenecks and cycle times.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.simulation.factory import Machine, MachineState

_item_counter = itertools.count(1)


@dataclass(frozen=True)
class ProductionEvent:
    """One item's visit to one machine."""

    item_id: int
    machine_id: str
    arrived_at: float
    started_at: float
    finished_at: float

    @property
    def processing_seconds(self) -> float:
        """Time the machine actually worked on the item."""
        return self.finished_at - self.started_at

    @property
    def waiting_seconds(self) -> float:
        """Time the item queued before the machine."""
        return self.started_at - self.arrived_at


class ProductionLineSimulator:
    """A serial line of machines with wear-dependent processing times.

    ``base_processing_seconds`` is a healthy machine's per-item time;
    actual time is ``base * (1 + wear_gain * wear)`` sampled with small
    lognormal noise.  A failed machine blocks the line until maintained
    (callers drive maintenance through the usual machine API).
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        base_processing_seconds: float = 30.0,
        wear_gain: float = 2.0,
        noise_sigma: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not machines:
            raise ValueError("a production line needs at least one machine")
        self.machines = list(machines)
        self.base_processing_seconds = base_processing_seconds
        self.wear_gain = wear_gain
        self.noise_sigma = noise_sigma
        self._rng = random.Random(seed)
        self.events: List[ProductionEvent] = []
        self.completed_items = 0
        #: when each machine becomes free
        self._free_at = [0.0] * len(self.machines)

    def _processing_time(self, machine: Machine, at: float) -> float:
        wear = machine.wear_at(at)
        noise = self._rng.lognormvariate(0.0, self.noise_sigma)
        return self.base_processing_seconds * (1.0 + self.wear_gain * wear) * noise

    def run(
        self,
        until: float,
        interarrival_seconds: float = 45.0,
    ) -> List[ProductionEvent]:
        """Feed items until ``until``; returns the new events.

        Items arrive at fixed intervals at the first machine; each
        machine starts an item when both the item and the machine are
        ready.  Items whose line traversal would end after ``until`` are
        left unfinished (not logged).
        """
        new_events: List[ProductionEvent] = []
        arrival = 0.0 if self.completed_items == 0 else max(
            self._free_at[0], 0.0
        )
        while arrival <= until:
            item_id = next(_item_counter)
            ready_at = arrival
            item_events: List[ProductionEvent] = []
            for index, machine in enumerate(self.machines):
                if machine.state is MachineState.FAILED:
                    item_events = []
                    break
                start = max(ready_at, self._free_at[index])
                duration = self._processing_time(machine, start)
                finish = start + duration
                if finish > until:
                    item_events = []
                    break
                item_events.append(
                    ProductionEvent(
                        item_id=item_id,
                        machine_id=machine.machine_id,
                        arrived_at=ready_at,
                        started_at=start,
                        finished_at=finish,
                    )
                )
                self._free_at[index] = finish
                ready_at = finish
            if item_events:
                new_events.extend(item_events)
                self.completed_items += 1
            arrival += interarrival_seconds
        self.events.extend(new_events)
        return new_events

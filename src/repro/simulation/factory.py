"""Smart-factory workload (Section II.A).

Machines on production lines carry vibration, temperature, and current
sensors whose means drift as the machine's mechanics degrade.  Wear
accumulates with operating time (plus per-machine rate variation); past
a failure threshold the machine breaks, which is the ground truth the
predictive-maintenance application tries to anticipate.  A maintenance
action resets wear — the factory's actuator-visible effect.

The workload is fully deterministic for a given seed so tests and
benchmarks are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.summary import Location
from repro.simulation.events import Simulator
from repro.simulation.sensors import (
    BYTES_3D_CAMERA_PER_HOUR,
    CameraSensor,
    ReadingSink,
    ScalarSensor,
)


class MachineState(Enum):
    """Operational state of one machine."""

    RUNNING = "running"
    FAILED = "failed"
    MAINTENANCE = "maintenance"


#: Wear level at which a machine fails.
FAILURE_WEAR = 1.0
#: Vibration (mm/s RMS) of a healthy machine; grows with wear.
BASE_VIBRATION = 2.0
#: Extra vibration at the failure threshold.
WEAR_VIBRATION_GAIN = 6.0
#: Operating temperature (deg C) of a healthy machine.
BASE_TEMPERATURE = 45.0
WEAR_TEMPERATURE_GAIN = 25.0


class Machine:
    """One machine: wear dynamics plus attached sensors."""

    def __init__(
        self,
        machine_id: str,
        location: Location,
        wear_rate_per_hour: float,
        seed: int,
        sensor_rate_hz: float = 10.0,
    ) -> None:
        self.machine_id = machine_id
        self.location = location
        self.wear_rate_per_hour = wear_rate_per_hour
        self.state = MachineState.RUNNING
        self.wear = 0.0
        self._wear_updated_at = 0.0
        self.failures: List[float] = []
        self.maintenances: List[float] = []
        rng = random.Random(seed)
        self.vibration_sensor = ScalarSensor(
            sensor_id=f"{machine_id}/vibration",
            location=location,
            rate_hz=sensor_rate_hz,
            value_fn=self._vibration_at,
            noise_std=0.15,
            seed=rng.randrange(2**31),
        )
        self.temperature_sensor = ScalarSensor(
            sensor_id=f"{machine_id}/temperature",
            location=location,
            rate_hz=max(1.0, sensor_rate_hz / 10.0),
            value_fn=self._temperature_at,
            noise_std=0.5,
            seed=rng.randrange(2**31),
        )

    # -- wear dynamics ------------------------------------------------------

    def _advance_wear(self, timestamp: float) -> None:
        if self.state is MachineState.RUNNING:
            elapsed_hours = (timestamp - self._wear_updated_at) / 3600.0
            self.wear += elapsed_hours * self.wear_rate_per_hour
            if self.wear >= FAILURE_WEAR:
                self.wear = FAILURE_WEAR
                self.state = MachineState.FAILED
                self.failures.append(timestamp)
        self._wear_updated_at = timestamp

    def wear_at(self, timestamp: float) -> float:
        """Current wear in [0, 1], advancing the internal model."""
        self._advance_wear(timestamp)
        return self.wear

    def _vibration_at(self, timestamp: float) -> float:
        wear = self.wear_at(timestamp)
        return BASE_VIBRATION + WEAR_VIBRATION_GAIN * wear * wear

    def _temperature_at(self, timestamp: float) -> float:
        wear = self.wear_at(timestamp)
        return BASE_TEMPERATURE + WEAR_TEMPERATURE_GAIN * wear

    def perform_maintenance(self, timestamp: float) -> None:
        """Reset wear; the machine resumes running."""
        self._advance_wear(timestamp)
        self.wear = 0.0
        self.state = MachineState.RUNNING
        self.maintenances.append(timestamp)

    @property
    def sensors(self) -> List[ScalarSensor]:
        """All scalar sensors on the machine."""
        return [self.vibration_sensor, self.temperature_sensor]


@dataclass
class FactoryWorkload:
    """A factory: lines of machines plus line-level cameras."""

    root: Location
    lines: Dict[str, List[Machine]] = field(default_factory=dict)
    cameras: List[CameraSensor] = field(default_factory=list)

    @property
    def machines(self) -> List[Machine]:
        """All machines across all lines."""
        return [machine for line in self.lines.values() for machine in line]

    def attach(
        self,
        simulator: Simulator,
        sink: ReadingSink,
        until: Optional[float] = None,
        include_cameras: bool = False,
    ) -> None:
        """Schedule every sensor's emissions into ``sink``.

        Camera frames are optional: at 30 fps per camera they dominate
        the event count, and most experiments only need their byte rate,
        which :meth:`raw_bytes_per_second` reports analytically.
        """
        for machine in self.machines:
            for sensor in machine.sensors:
                sensor.attach(simulator, sink, until=until)
        if include_cameras:
            for camera in self.cameras:
                camera.attach(simulator, sink, until=until)

    def raw_bytes_per_second(self) -> float:
        """Aggregate raw data rate of every sensor in the factory."""
        total = sum(
            sensor.bytes_per_second()
            for machine in self.machines
            for sensor in machine.sensors
        )
        total += sum(camera.bytes_per_second() for camera in self.cameras)
        return total

    def sensor_count(self) -> int:
        """Number of devices producing data streams (Table I, ch. 2)."""
        return sum(len(m.sensors) for m in self.machines) + len(self.cameras)


def build_factory(
    name: str = "factory1",
    lines: int = 3,
    machines_per_line: int = 8,
    cameras_per_line: int = 1,
    sensor_rate_hz: float = 10.0,
    seed: int = 7,
) -> FactoryWorkload:
    """Construct a deterministic factory workload.

    Machines get wear rates spread around one failure per ~50 operating
    hours so that multi-hour simulations contain both healthy and
    degrading machines.
    """
    rng = random.Random(seed)
    root = Location(name)
    workload = FactoryWorkload(root=root)
    for line_index in range(lines):
        line_name = f"line{line_index + 1}"
        line_location = root.child(line_name)
        machines: List[Machine] = []
        for machine_index in range(machines_per_line):
            machine_id = f"{name}/{line_name}/machine{machine_index + 1}"
            machine = Machine(
                machine_id=machine_id,
                location=line_location.child(f"machine{machine_index + 1}"),
                wear_rate_per_hour=rng.uniform(0.005, 0.05),
                seed=rng.randrange(2**31),
                sensor_rate_hz=sensor_rate_hz,
            )
            machines.append(machine)
        workload.lines[line_name] = machines
        for camera_index in range(cameras_per_line):
            workload.cameras.append(
                CameraSensor(
                    sensor_id=f"{name}/{line_name}/camera{camera_index + 1}",
                    location=line_location,
                    bytes_per_hour=BYTES_3D_CAMERA_PER_HOUR,
                )
            )
    return workload

"""Synthetic enterprise query traces for the replication experiments.

Section VII evaluates adaptive replication "on an enterprise-level query
trace" that is not public.  What the ski-rental policies actually
consume is, per partition, the sequence of remote-access events and
their result sizes; this generator synthesizes exactly that with the
distributional structure the cited ski-rental variants assume:

* partitions are created over time (one per epoch per creating store);
* each partition receives a *run* of remote accesses whose length is
  drawn from a configurable heavy-tailed family (geometric, Pareto, or
  lognormal) — some partitions are touched once, a few are hammered;
* access result sizes vary around a per-partition mean;
* an optional diurnal factor modulates access arrival times.

Because run lengths are i.i.d. across partitions, observing completed
partitions yields the distribution the average-case-optimal threshold
needs — mirroring the paper's "aggregate result size for older
partitions ... can be used to predict future access for partitions
created at a later date."
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class AccessEvent:
    """One remote access of a partition."""

    time: float
    partition_id: str
    result_bytes: int


@dataclass(frozen=True)
class QueryTraceConfig:
    """Shape of the synthetic trace."""

    partitions: int = 200
    partition_bytes: int = 50_000_000
    mean_result_bytes: int = 2_000_000
    #: ``"geometric"`` | ``"pareto"`` | ``"lognormal"``
    run_length_distribution: str = "pareto"
    #: geometric: success prob; pareto: alpha; lognormal: sigma.
    run_length_param: float = 1.3
    mean_run_length: float = 8.0
    inter_access_seconds: float = 600.0
    partition_birth_seconds: float = 300.0
    diurnal: bool = False


class QueryTraceGenerator:
    """Deterministic access-trace generator."""

    def __init__(self, config: QueryTraceConfig = QueryTraceConfig(), seed: int = 11):
        self.config = config
        self.seed = seed

    def _run_length(self, rng: random.Random) -> int:
        config = self.config
        if config.run_length_distribution == "geometric":
            p = 1.0 / max(1.0, config.mean_run_length)
            length = 1
            while rng.random() > p:
                length += 1
            return length
        if config.run_length_distribution == "pareto":
            raw = rng.paretovariate(config.run_length_param)
            scale = config.mean_run_length * (
                (config.run_length_param - 1.0) / config.run_length_param
                if config.run_length_param > 1.0
                else 1.0
            )
            return max(1, int(raw * scale))
        if config.run_length_distribution == "lognormal":
            sigma = config.run_length_param
            mu = math.log(max(1.0, config.mean_run_length)) - sigma * sigma / 2.0
            return max(1, int(rng.lognormvariate(mu, sigma)))
        raise ValueError(
            "unknown run length distribution "
            f"{config.run_length_distribution!r}"
        )

    def _diurnal_gap(self, rng: random.Random, at: float) -> float:
        gap = rng.expovariate(1.0 / self.config.inter_access_seconds)
        if not self.config.diurnal:
            return gap
        # Nights (second half of each simulated day) are 4x quieter.
        day_position = (at % 86400.0) / 86400.0
        return gap * (4.0 if day_position > 0.5 else 1.0)

    def partition_runs(self) -> Dict[str, List[AccessEvent]]:
        """Per-partition access runs, keyed by partition id."""
        rng = random.Random(self.seed)
        config = self.config
        runs: Dict[str, List[AccessEvent]] = {}
        for index in range(config.partitions):
            partition_id = f"partition-{index:05d}"
            birth = index * config.partition_birth_seconds
            length = self._run_length(rng)
            events: List[AccessEvent] = []
            at = birth
            for _ in range(length):
                at += self._diurnal_gap(rng, at)
                result = max(
                    1024,
                    int(rng.gauss(config.mean_result_bytes, config.mean_result_bytes / 3)),
                )
                events.append(AccessEvent(at, partition_id, result))
            runs[partition_id] = events
        return runs

    def trace(self) -> List[AccessEvent]:
        """The full trace, time-ordered across partitions."""
        events = [
            event for run in self.partition_runs().values() for event in run
        ]
        events.sort(key=lambda e: (e.time, e.partition_id))
        return events

    def run_length_histogram(self) -> Dict[int, int]:
        """Distribution of per-partition run lengths (for calibration)."""
        histogram: Dict[int, int] = {}
        for run in self.partition_runs().values():
            histogram[len(run)] = histogram.get(len(run), 0) + 1
        return histogram

"""Sensor and actuator processes.

Sensors stand in for the physical devices of Section II: scalar sensors
(temperature, vibration, current draw) emit a numeric reading at a fixed
rate; camera sensors emit opaque frames whose only observable property
is their byte volume — exactly the two cited rates (a 3D camera at
52 GB/h, an HD camera at 17.5 GB/h) that motivate aggregation close to
the machine.

An :class:`Actuator` is the other end of the control loop: the
controller sends it commands and it records them with latency, which is
how the benchmarks measure the Figure 3 control cycle.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.summary import Location
from repro.simulation.events import Simulator

#: Data rates cited in Section II.A (bytes per hour, uncompressed).
BYTES_3D_CAMERA_PER_HOUR = 52 * 10**9
BYTES_HD_CAMERA_PER_HOUR = int(17.5 * 10**9)


@dataclass(frozen=True)
class SensorReading:
    """One sensor emission: a value (NaN for opaque frames) plus bytes."""

    sensor_id: str
    location: Location
    timestamp: float
    value: float
    size_bytes: int


ReadingSink = Callable[[SensorReading], None]


class ScalarSensor:
    """A numeric sensor with a value model plus Gaussian noise.

    ``value_fn(t)`` gives the noiseless physical value at time ``t`` —
    the factory workload plugs machine degradation in here.
    """

    def __init__(
        self,
        sensor_id: str,
        location: Location,
        rate_hz: float,
        value_fn: Callable[[float], float],
        noise_std: float = 0.0,
        bytes_per_reading: int = 16,
        seed: Optional[int] = None,
    ) -> None:
        if rate_hz <= 0:
            raise ValueError(f"sensor rate must be positive, got {rate_hz}")
        self.sensor_id = sensor_id
        self.location = location
        self.rate_hz = rate_hz
        self.value_fn = value_fn
        self.noise_std = noise_std
        self.bytes_per_reading = bytes_per_reading
        self._rng = random.Random(seed)
        self.readings_emitted = 0

    def reading_at(self, timestamp: float) -> SensorReading:
        """Synthesize the reading for time ``timestamp``."""
        value = self.value_fn(timestamp)
        if self.noise_std > 0:
            value += self._rng.gauss(0.0, self.noise_std)
        self.readings_emitted += 1
        return SensorReading(
            sensor_id=self.sensor_id,
            location=self.location,
            timestamp=timestamp,
            value=value,
            size_bytes=self.bytes_per_reading,
        )

    def attach(
        self,
        simulator: Simulator,
        sink: ReadingSink,
        until: Optional[float] = None,
    ) -> None:
        """Schedule periodic emissions into ``sink`` on ``simulator``."""
        interval = 1.0 / self.rate_hz

        def emit(sim: Simulator) -> None:
            sink(self.reading_at(sim.now))

        simulator.every(interval, emit, until=until)

    def bytes_per_second(self) -> float:
        """The sensor's raw data rate."""
        return self.rate_hz * self.bytes_per_reading


class CameraSensor:
    """An opaque high-volume sensor characterized by its byte rate.

    Frames carry no analyzable value (``value`` is NaN); what matters to
    the architecture is the data volume that must be filtered or
    aggregated near the source (Table I, challenges 1 and 3).
    """

    def __init__(
        self,
        sensor_id: str,
        location: Location,
        bytes_per_hour: int = BYTES_HD_CAMERA_PER_HOUR,
        frames_per_second: float = 30.0,
    ) -> None:
        self.sensor_id = sensor_id
        self.location = location
        self.bytes_per_hour = bytes_per_hour
        self.frames_per_second = frames_per_second
        self.readings_emitted = 0

    @property
    def bytes_per_frame(self) -> int:
        """Frame size implied by the hourly volume and frame rate."""
        return int(self.bytes_per_hour / 3600.0 / self.frames_per_second)

    def reading_at(self, timestamp: float) -> SensorReading:
        """Synthesize one frame emission."""
        self.readings_emitted += 1
        return SensorReading(
            sensor_id=self.sensor_id,
            location=self.location,
            timestamp=timestamp,
            value=math.nan,
            size_bytes=self.bytes_per_frame,
        )

    def attach(
        self,
        simulator: Simulator,
        sink: ReadingSink,
        until: Optional[float] = None,
    ) -> None:
        """Schedule periodic frame emissions into ``sink``."""
        interval = 1.0 / self.frames_per_second

        def emit(sim: Simulator) -> None:
            sink(self.reading_at(sim.now))

        simulator.every(interval, emit, until=until)

    def bytes_per_second(self) -> float:
        """The camera's raw data rate."""
        return self.bytes_per_hour / 3600.0


@dataclass
class ActuationCommand:
    """One command received by an actuator."""

    command: str
    issued_at: float
    received_at: float
    source: str

    @property
    def latency(self) -> float:
        """Issue-to-receipt delay in simulated seconds."""
        return self.received_at - self.issued_at


@dataclass
class Actuator:
    """The physical-world end of the control loop; records commands."""

    actuator_id: str
    location: Location
    commands: List[ActuationCommand] = field(default_factory=list)

    def actuate(
        self, command: str, issued_at: float, received_at: float, source: str
    ) -> None:
        """Record an actuation command."""
        self.commands.append(
            ActuationCommand(
                command=command,
                issued_at=issued_at,
                received_at=received_at,
                source=source,
            )
        )

"""``FlowQLClient``: the one query API, local or networked.

Scenario apps, the CLI, and tests used to reach into the runtime (or
its planner) directly, which hard-wired them to in-process execution.
:class:`FlowQLClient` is the typed facade that hides *where* a query
runs:

* ``FlowQLClient(runtime=rt)`` executes through the runtime's
  federated planner in-process, exactly as ``rt.query`` does.
* ``FlowQLClient(endpoint="http://host:port")`` POSTs the query to a
  ``repro serve`` gateway and rebuilds the typed
  :class:`~repro.query.plan.QueryOutcome` from the versioned wire
  envelope — including cache provenance and degradation — so calling
  code cannot tell a remote answer from a local one.

Either way, :meth:`query` returns a :class:`QueryOutcome` and raises
the same typed errors (:class:`~repro.errors.FlowQLSyntaxError`,
:class:`~repro.errors.FlowQLPlanningError`); rate-limited or
backpressured requests raise :class:`~repro.errors.AdmissionError`
carrying the server's ``Retry-After`` hint.  ``SUBSCRIBE`` is reserved
API surface for the standing-queries roadmap item and raises
``NotImplementedError`` for now.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import TYPE_CHECKING, Optional

from repro.errors import ServeError, WireSchemaError
from repro.query.plan import QueryOutcome
from repro.serve import wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runtime import HierarchyRuntime


class FlowQLClient:
    """One typed FlowQL facade over a runtime or a served endpoint."""

    def __init__(
        self,
        runtime: Optional["HierarchyRuntime"] = None,
        endpoint: Optional[str] = None,
        client_id: str = "local",
        timeout_s: float = 30.0,
    ) -> None:
        if (runtime is None) == (endpoint is None):
            raise ServeError(
                "FlowQLClient needs exactly one of runtime= "
                "(in-process) or endpoint= (HTTP)"
            )
        self.runtime = runtime
        self.client_id = client_id
        self.timeout_s = timeout_s
        self._connection: Optional[http.client.HTTPConnection] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        if endpoint is not None:
            parsed = urllib.parse.urlparse(endpoint)
            if parsed.scheme not in ("http", "") or not (
                parsed.hostname or parsed.path
            ):
                raise ServeError(f"bad endpoint URL {endpoint!r}")
            # accept both "http://host:port" and bare "host:port"
            if parsed.hostname:
                self._host = parsed.hostname
                self._port = parsed.port or 80
            else:
                host, _, port = parsed.path.partition(":")
                self._host = host
                self._port = int(port) if port else 80
        self.endpoint = endpoint

    # -- the API -------------------------------------------------------------

    def query(
        self, flowql: str, now: Optional[float] = None
    ) -> QueryOutcome:
        """Run one FlowQL query; returns the typed outcome.

        ``now`` only applies in-process (a served plane keeps its own
        clock); passing it with an HTTP backend raises.
        """
        if self.runtime is not None:
            return self.runtime.query(flowql, now=now)
        if now is not None:
            raise ServeError(
                "now= is an in-process knob; a served endpoint keeps "
                "its own clock"
            )
        return self._query_http(flowql)

    def subscribe(self, flowql: str):
        """Reserved: standing queries (``SUBSCRIBE <flowql>``).

        Incremental subscriptions are the next roadmap item; the
        client reserves the name now so apps written against this
        facade will not need a new API when deltas land.
        """
        raise NotImplementedError(
            "SUBSCRIBE is reserved for the standing-queries roadmap "
            "item; only query() is served today"
        )

    def health(self) -> dict:
        """The served plane's census (HTTP backends only)."""
        if self.runtime is not None:
            raise ServeError("health() needs an HTTP endpoint")
        status, _headers, body = self._request("GET", "/healthz")
        if status != 200:
            raise ServeError(f"healthz returned HTTP {status}")
        return body

    def close(self) -> None:
        """Drop the keep-alive connection (HTTP backends)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "FlowQLClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- HTTP transport ------------------------------------------------------

    def _request(self, method: str, path: str, body: object = None):
        payload = (
            None
            if body is None
            else json.dumps(body, separators=(",", ":"))
        )
        headers = {
            "Content-Type": "application/json",
            "X-Repro-Client": self.client_id,
        }
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=self.timeout_s
                )
            try:
                self._connection.request(
                    method, path, body=payload, headers=headers
                )
                response = self._connection.getresponse()
                raw = response.read()
                parsed = (
                    json.loads(raw.decode("utf-8")) if raw else None
                )
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    parsed,
                )
            except (ConnectionError, http.client.HTTPException, OSError):
                # stale keep-alive: reconnect once, then report
                self.close()
                if attempt:
                    raise ServeError(
                        f"cannot reach serve endpoint "
                        f"{self._host}:{self._port}"
                    )
        raise AssertionError("unreachable")  # pragma: no cover

    def _query_http(self, flowql: str) -> QueryOutcome:
        status, _headers, body = self._request(
            "POST",
            "/v1/query",
            {"query": flowql, "client_id": self.client_id},
        )
        if status == 200:
            return wire.decode_outcome(body)
        try:
            kind, envelope_body = wire.open_envelope(body)
        except WireSchemaError:
            raise ServeError(
                f"serve endpoint returned HTTP {status} with an "
                "unreadable body"
            )
        if kind == wire.KIND_REJECTED:
            raise wire.decode_rejection(envelope_body)
        if kind == wire.KIND_ERROR:
            raise wire.decode_error(envelope_body)
        raise ServeError(
            f"unexpected {kind!r} envelope with HTTP {status}"
        )

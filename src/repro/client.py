"""``FlowQLClient``: the one query API, local or networked.

Scenario apps, the CLI, and tests used to reach into the runtime (or
its planner) directly, which hard-wired them to in-process execution.
:class:`FlowQLClient` is the typed facade that hides *where* a query
runs:

* ``FlowQLClient(runtime=rt)`` executes through the runtime's
  federated planner in-process, exactly as ``rt.query`` does.
* ``FlowQLClient(endpoint="http://host:port")`` POSTs the query to a
  ``repro serve`` gateway and rebuilds the typed
  :class:`~repro.query.plan.QueryOutcome` from the versioned wire
  envelope — including cache provenance and degradation — so calling
  code cannot tell a remote answer from a local one.

Either way, :meth:`query` returns a :class:`QueryOutcome` and raises
the same typed errors (:class:`~repro.errors.FlowQLSyntaxError`,
:class:`~repro.errors.FlowQLPlanningError`); rate-limited or
backpressured requests raise :class:`~repro.errors.AdmissionError`
carrying the server's retry hint (the exact float from the rejection
body, with the integer ``Retry-After`` header as fallback).

:meth:`subscribe` is the standing-query counterpart: it registers
``SUBSCRIBE <flowql>`` with the planner's delta-maintaining
registry — directly in-process, or through the gateway's
``/v1/subscribe`` + long-poll ``/v1/subscribe/poll`` routes — and
returns a :class:`SubscriptionHandle` that yields typed
:class:`~repro.query.subscriptions.SubscriptionUpdate` snapshots.  The
HTTP handle tracks a cursor, so a reconnect resumes exactly where the
client left off (or resyncs to the newest snapshot when the gap
outgrew the server's replay ring).
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

from repro.errors import ServeError, WireSchemaError
from repro.query.plan import QueryOutcome
from repro.query.subscriptions import Subscription, SubscriptionUpdate
from repro.serve import wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runtime import HierarchyRuntime


class SubscriptionHandle:
    """One standing query as the client sees it, backend-agnostic.

    * :meth:`poll` — updates newer than the handle's cursor, blocking
      up to ``wait_s`` for fresh ones (0 = return immediately).
    * :meth:`latest` — the most recent snapshot (None before the
      query first materializes).
    * :meth:`updates` — an iterator of update batches; each ``next()``
      long-polls once.
    * :meth:`cancel` — deregister; further polls return nothing.

    ``resynced`` flips to True when the handle's cursor had aged out of
    the server's replay ring and the stream jumped forward — every
    update is a complete snapshot, so only history was lost.
    """

    def __init__(self, subscription_id: str) -> None:
        self.id = subscription_id
        self.cursor = 0
        self.resynced = False
        self.cancelled = False

    # subclasses implement the transport
    def poll(self, wait_s: float = 0.0) -> List[SubscriptionUpdate]:
        raise NotImplementedError

    def latest(self) -> Optional[SubscriptionUpdate]:
        raise NotImplementedError

    def cancel(self) -> None:
        raise NotImplementedError

    def updates(
        self, wait_s: float = 30.0
    ) -> Iterator[List[SubscriptionUpdate]]:
        """Long-poll forever (until cancelled), yielding batches."""
        while not self.cancelled:
            batch = self.poll(wait_s=wait_s)
            if batch:
                yield batch


class InProcessSubscription(SubscriptionHandle):
    """A handle wrapping the planner registry's own Subscription."""

    def __init__(self, subscription: Subscription) -> None:
        super().__init__(subscription.id)
        self._subscription = subscription
        self._registry = subscription._registry

    def poll(self, wait_s: float = 0.0) -> List[SubscriptionUpdate]:
        if self.cancelled:
            return []
        pending, resynced, known = self._registry.wait_for(
            self.id, self.cursor, wait_s
        )
        if not known:
            self.cancelled = True
            return []
        if resynced:
            self.resynced = True
        if pending:
            self.cursor = pending[-1].seq
        return pending

    def latest(self) -> Optional[SubscriptionUpdate]:
        return self._subscription.latest()

    def cancel(self) -> None:
        self.cancelled = True
        self._subscription.cancel()


class HTTPSubscription(SubscriptionHandle):
    """A handle speaking the gateway's subscribe/poll/cancel routes."""

    def __init__(
        self,
        client: "FlowQLClient",
        subscription_id: str,
        first: Optional[SubscriptionUpdate],
    ) -> None:
        super().__init__(subscription_id)
        self._client = client
        self._latest = first
        if first is not None:
            self.cursor = first.seq

    def poll(self, wait_s: float = 0.0) -> List[SubscriptionUpdate]:
        if self.cancelled:
            return []
        status, _headers, body = self._client._request(
            "POST",
            "/v1/subscribe/poll",
            {
                "subscription_id": self.id,
                "cursor": self.cursor,
                "timeout_s": wait_s,
            },
        )
        if status == 404:
            # cancelled elsewhere, or the server restarted and lost us
            self.cancelled = True
            return []
        if status != 200:
            raise self._client._wire_failure(status, body)
        updates, cursor, resync = wire.decode_updates(body)
        self.cursor = cursor
        if resync:
            self.resynced = True
        if updates:
            self._latest = updates[-1]
        return updates

    def latest(self) -> Optional[SubscriptionUpdate]:
        return self._latest

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._client._request(
            "POST", "/v1/subscribe/cancel", {"subscription_id": self.id}
        )


class FlowQLClient:
    """One typed FlowQL facade over a runtime or a served endpoint."""

    def __init__(
        self,
        runtime: Optional["HierarchyRuntime"] = None,
        endpoint: Optional[str] = None,
        client_id: str = "local",
        timeout_s: float = 30.0,
    ) -> None:
        if (runtime is None) == (endpoint is None):
            raise ServeError(
                "FlowQLClient needs exactly one of runtime= "
                "(in-process) or endpoint= (HTTP)"
            )
        self.runtime = runtime
        self.client_id = client_id
        self.timeout_s = timeout_s
        self._connection: Optional[http.client.HTTPConnection] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        if endpoint is not None:
            parsed = urllib.parse.urlparse(endpoint)
            if parsed.scheme not in ("http", "") or not (
                parsed.hostname or parsed.path
            ):
                raise ServeError(f"bad endpoint URL {endpoint!r}")
            # accept both "http://host:port" and bare "host:port"
            if parsed.hostname:
                self._host = parsed.hostname
                self._port = parsed.port or 80
            else:
                host, _, port = parsed.path.partition(":")
                self._host = host
                self._port = int(port) if port else 80
        self.endpoint = endpoint

    # -- the API -------------------------------------------------------------

    def query(
        self, flowql: str, now: Optional[float] = None
    ) -> QueryOutcome:
        """Run one FlowQL query; returns the typed outcome.

        ``now`` only applies in-process (a served plane keeps its own
        clock); passing it with an HTTP backend raises.
        """
        if self.runtime is not None:
            return self.runtime.query(flowql, now=now)
        if now is not None:
            raise ServeError(
                "now= is an in-process knob; a served endpoint keeps "
                "its own clock"
            )
        return self._query_http(flowql)

    def subscribe(
        self,
        flowql: str,
        on_update: Optional[
            Callable[[SubscriptionUpdate], None]
        ] = None,
    ) -> SubscriptionHandle:
        """Register one standing query; returns its handle.

        Accepts ``SUBSCRIBE SELECT ...`` or bare ``SELECT ...``.  The
        planner materializes the query once and delta-maintains it at
        every epoch close; the handle's :meth:`~SubscriptionHandle.
        poll` / :meth:`~SubscriptionHandle.updates` yield one typed
        snapshot per close, identical to re-running :meth:`query`.

        ``on_update`` (a callback fired synchronously per update)
        only applies in-process; an HTTP handle is poll-driven.
        """
        if self.runtime is not None:
            return InProcessSubscription(
                self.runtime.subscribe(flowql, on_update=on_update)
            )
        if on_update is not None:
            raise ServeError(
                "on_update= is an in-process knob; poll an HTTP "
                "subscription (handle.poll / handle.updates) instead"
            )
        status, _headers, body = self._request(
            "POST",
            "/v1/subscribe",
            {"query": flowql, "client_id": self.client_id},
        )
        if status != 200:
            raise self._wire_failure(status, body)
        subscription_id, first = wire.decode_subscribed(body)
        return HTTPSubscription(self, subscription_id, first)

    def health(self) -> dict:
        """The served plane's census (HTTP backends only)."""
        if self.runtime is not None:
            raise ServeError("health() needs an HTTP endpoint")
        status, _headers, body = self._request("GET", "/healthz")
        if status != 200:
            raise ServeError(f"healthz returned HTTP {status}")
        return body

    def close(self) -> None:
        """Drop the keep-alive connection (HTTP backends)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "FlowQLClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- HTTP transport ------------------------------------------------------

    def _request(self, method: str, path: str, body: object = None):
        payload = (
            None
            if body is None
            else json.dumps(body, separators=(",", ":"))
        )
        headers = {
            "Content-Type": "application/json",
            "X-Repro-Client": self.client_id,
        }
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=self.timeout_s
                )
            try:
                self._connection.request(
                    method, path, body=payload, headers=headers
                )
                response = self._connection.getresponse()
                raw = response.read()
                parsed = (
                    json.loads(raw.decode("utf-8")) if raw else None
                )
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    parsed,
                )
            except (ConnectionError, http.client.HTTPException, OSError):
                # stale keep-alive: reconnect once, then report
                self.close()
                if attempt:
                    raise ServeError(
                        f"cannot reach serve endpoint "
                        f"{self._host}:{self._port}"
                    )
        raise AssertionError("unreachable")  # pragma: no cover

    def _query_http(self, flowql: str) -> QueryOutcome:
        status, _headers, body = self._request(
            "POST",
            "/v1/query",
            {"query": flowql, "client_id": self.client_id},
        )
        if status == 200:
            return wire.decode_outcome(body)
        raise self._wire_failure(status, body)

    def _wire_failure(self, status: int, body: object) -> Exception:
        """The typed exception a non-200 wire response describes."""
        try:
            kind, envelope_body = wire.open_envelope(body)
        except WireSchemaError:
            return ServeError(
                f"serve endpoint returned HTTP {status} with an "
                "unreadable body"
            )
        if kind == wire.KIND_REJECTED:
            return wire.decode_rejection(envelope_body)
        if kind == wire.KIND_ERROR:
            return wire.decode_error(envelope_body)
        return ServeError(
            f"unexpected {kind!r} envelope with HTTP {status}"
        )

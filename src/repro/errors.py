"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A flow key or record does not match the expected feature schema."""


class SchemaMismatchError(SchemaError):
    """Two summaries built over different schemas were combined."""


class GranularityError(ReproError):
    """An invalid aggregation granularity (mask level, bin size) was given."""


class StorageError(ReproError):
    """A data-store storage operation failed (budget exceeded, missing key)."""


class PartitionNotFoundError(StorageError):
    """A query referenced a partition unknown to the data store."""


class TriggerError(ReproError):
    """A trigger definition is invalid or references a missing aggregator."""


class RuleConflictError(ReproError):
    """A controller rule conflicts with an already-installed rule."""


class PlacementError(ReproError):
    """The manager could not place a primitive or analytics pipeline."""


class FlowQLSyntaxError(ReproError):
    """The FlowQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class FlowQLPlanningError(ReproError):
    """A parsed FlowQL query could not be mapped onto stored summaries."""


class TransferError(ReproError):
    """A fabric transfer failed on a faulty link (Table I, challenge 2).

    Raised by :meth:`~repro.hierarchy.network.NetworkFabric.transfer`
    when an injected :class:`~repro.faults.FaultPlan` drops the transfer
    or the link is inside an outage window.  Carries enough context for
    retry/recovery layers to account the failure precisely.
    """

    def __init__(
        self,
        message: str,
        origin: str = "",
        destination: str = "",
        link: tuple = (),
        reason: str = "drop",
        at_time: float = 0.0,
        size_bytes: int = 0,
    ) -> None:
        super().__init__(message)
        self.origin = origin
        self.destination = destination
        #: the (upper, lower) path pair of the failing hop
        self.link = link
        #: ``"drop"`` (probabilistic loss) or ``"outage"`` (window)
        self.reason = reason
        self.at_time = at_time
        self.size_bytes = size_bytes


class WireSchemaError(ReproError):
    """A wire envelope could not be decoded (bad version, shape, kind).

    The serving plane speaks a versioned JSON wire schema
    (:mod:`repro.serve.wire`); decoders raise this instead of
    ``KeyError``/``TypeError`` so clients can distinguish protocol
    drift from transport failures.
    """


class ServeError(ReproError):
    """A serving-plane operation failed (boot, transport, protocol)."""


class AdmissionError(ServeError):
    """The gateway refused a request (rate limit or backpressure).

    Carries the server's ``Retry-After`` hint so closed-loop clients
    can back off precisely instead of hammering the gateway.
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 1.0,
        reason: str = "admission",
    ) -> None:
        super().__init__(message)
        #: seconds the server asked the client to wait before retrying
        self.retry_after_s = retry_after_s
        #: ``"admission"`` (client over rate) or ``"backpressure"``
        #: (the target node's request queue was full)
        self.reason = reason


class ReplicationError(ReproError):
    """An adaptive-replication operation failed."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class LineageError(ReproError):
    """A lineage record is inconsistent (unknown parent, cyclic derivation)."""

"""Live reconfiguration ops over a running hierarchy.

Each op here mutates the :class:`~repro.elastic.model.TopologyModel` of
a live :class:`~repro.runtime.runtime.HierarchyRuntime` **between epoch
closes**, migrates whatever summary state the reshape strands, and then
runs the shared epilogue: fabric link resync (retired links keep their
byte history), runtime view rebuild, generation bump, and query-cache
invalidation.  The sharded ingest pool is drained *before* any
structural change — its per-site shard trees fold into the edge
aggregators, so no in-flight mass is lost — and the next pooled ingest
re-forks a pool tagged with the new generation.

Migration is fabric-accounted and fault-aware: a summary that cannot be
delivered over the (possibly faulty) fabric within the runtime's retry
budget is parked as a :class:`~repro.faults.PendingExport` on the
*migration target's* queue — the re-homed export is redelivered by the
normal pending-drain machinery on a later close, so root-mass
conservation holds across arbitrary reconfiguration sequences even with
a nonzero-drop :class:`~repro.faults.FaultPlan` active.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.store import DataStore
from repro.datastore.summary_query import rehydrate
from repro.elastic.model import PendingMigration
from repro.errors import PlacementError
from repro.faults import PendingExport
from repro.hierarchy.topology import HierarchyNode, LevelSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.config import LevelConfig
    from repro.runtime.runtime import HierarchyRuntime


# ----------------------------------------------------------------------
# shared plumbing


def _node_by_label(runtime: "HierarchyRuntime", label: str) -> HierarchyNode:
    """Resolve a root-relative site label (or the root path) to a node."""
    hierarchy = runtime.model.hierarchy
    root = hierarchy.root.location
    if label in ("", root.path):
        return hierarchy.root
    return hierarchy.node(Location(f"{root.path}/{label}"))


def _drain_pool(runtime: "HierarchyRuntime") -> None:
    """Fold any live ingest-pool shards into the edge aggregators.

    Reconfiguration changes the site set (or site labels), so the pool
    forked under the previous generation cannot keep running; draining
    first means mid-epoch parallel mass lands in the aggregators before
    the reshape and nothing is lost.
    """
    pool = runtime._pool
    if pool is not None:
        runtime._install_shards(pool.flush())
        pool.shutdown()
        runtime._pool = None


def _finish(runtime: "HierarchyRuntime", op: str) -> int:
    """The shared epilogue every reconfiguration op runs."""
    runtime.fabric.resync()
    runtime._rebuild_views()
    generation = runtime.model.bump(op)
    runtime.planner.invalidate_cache()
    return generation


def _apply_renames(
    runtime: "HierarchyRuntime", renames: Mapping[str, str]
) -> None:
    """Re-key path-indexed runtime state after a location rewrite."""
    hierarchy = runtime.model.hierarchy
    for old, new in renames.items():
        if old == new:
            continue
        store = runtime._stores.pop(old, None)
        if store is not None:
            node = hierarchy.node(Location(new))
            store.relocate(node.location, now=runtime._last_close)
            runtime._stores[new] = store
            runtime.manager.deregister_store(old)
            runtime.manager.register_store(store)
        queue = runtime._pending.pop(old, None)
        if queue is not None:
            runtime._pending[new] = queue
        # FlowDB entries (and the engine's on-disk records) follow the
        # rename so queries by the new label see the site's history
        runtime.db.relabel(
            runtime._path_label(old), runtime._path_label(new)
        )


def _migration_target(
    runtime: "HierarchyRuntime",
    node: HierarchyNode,
    exclude: frozenset,
) -> Optional[DataStore]:
    """Where a departing store's state goes: sibling, peer, or ancestor.

    Preference order: a store-bearing sibling under the same parent,
    then any other store at the same level, then the nearest ancestor
    store — always outside the ``exclude`` set (the departing subtree).
    """
    if node.parent is not None:
        for sibling in node.parent.children:
            path = sibling.location.path
            if path in exclude or sibling is node:
                continue
            store = runtime._stores.get(path)
            if store is not None:
                return store
    for peer in runtime.model.hierarchy.nodes_at_level(node.level.name):
        path = peer.location.path
        if path in exclude or peer is node:
            continue
        store = runtime._stores.get(path)
        if store is not None:
            return store
    probe = node.parent
    while probe is not None:
        path = probe.location.path
        if path not in exclude:
            store = runtime._stores.get(path)
            if store is not None:
                return store
        probe = probe.parent
    return None


def _migrate_store_state(
    runtime: "HierarchyRuntime",
    node: HierarchyNode,
    store: DataStore,
    target: Optional[DataStore],
    now: float,
    op: str,
) -> int:
    """Move a departing store's summaries to its migration target.

    Live aggregator state is shipped over the fabric (retried under the
    runtime's policy; parked on the *target's* pending queue when the
    link stays down) and combined into the target's matching aggregator
    — installed fresh if the target lacks one — so the mass still rolls
    up on the next close.  Retained epoch partitions are replicated to
    the target's replica catalog for query continuity.  Returns the
    bytes successfully migrated.
    """
    model = runtime.model
    has_mass = any(
        aggregator.primitive.items_ingested > 0
        for aggregator in store.aggregators()
    )
    has_history = bool(store.catalog.all())
    if target is None:
        if has_mass or has_history:
            raise PlacementError(
                f"no migration target for departing store "
                f"{store.location.path!r}; it still holds data"
            )
        return 0
    volume = runtime.stats.level(node.level.name)
    moved = 0
    for aggregator in store.aggregators():
        primitive = aggregator.primitive
        if primitive.items_ingested == 0:
            continue
        summary = primitive.summary()
        if store.privacy is not None:
            summary = store.privacy.export(aggregator.name, summary)
        size = summary.size_bytes
        _, delivered = runtime._transfer_with_retry(
            volume,
            lambda at, size=size: runtime.fabric.transfer(
                store.location, target.location, size, at
            ),
            size,
            now,
        )
        if delivered:
            incoming = rehydrate(summary)
            incoming.items_ingested = primitive.items_ingested
            # migration re-homes the summary at the target site: the
            # shared-location rule makes it combinable with whatever
            # live mass the target holds, and the merged interval
            # honestly spans both inputs
            incoming.location = target.location
            if target.owns(aggregator.name):
                destination = target.aggregator(aggregator.name)
                destination.primitive.combine(incoming)
            else:
                destination = Aggregator(aggregator.name, incoming)
                target.install_aggregator(destination)
            destination.items_this_epoch += aggregator.items_this_epoch
            if destination.epoch_opened_at is None:
                destination.epoch_opened_at = now
            volume.summary_bytes_out += size
            volume.exports += 1
            model.account_migration(size)
            moved += size
        else:
            export_id = (
                f"{op}:{store.location.path}:{aggregator.name}"
                f":gen{model.generation + 1}"
            )
            parked = runtime._pending_for(target).park(
                PendingExport(
                    export_id=export_id,
                    kind="forward",
                    summary=summary,
                    items=aggregator.items_this_epoch,
                    size_bytes=size,
                    origin=store.location.path,
                    label=aggregator.name,
                    created_at=now,
                )
            )
            if parked:
                volume.exports_parked += 1
                model.park_migration(
                    PendingMigration(
                        op=op,
                        origin=store.location.path,
                        target=target.location.path,
                        export_id=export_id,
                        size_bytes=size,
                    )
                )
    for partition in list(store.catalog.all()):
        _, delivered = runtime._transfer_with_retry(
            volume,
            lambda at, pid=partition.partition_id: store.replicate_partition(
                pid, target, at
            ),
            partition.summary.size_bytes,
            now,
        )
        if delivered:
            model.account_migration(partition.summary.size_bytes)
            moved += partition.summary.size_bytes
        # an undeliverable partition leaves with its store; degraded
        # reads report the gap honestly
    return moved


def _retire_store(runtime: "HierarchyRuntime", store: DataStore) -> None:
    """Drop a migrated-away store from every runtime registry."""
    path = store.location.path
    runtime.manager.deregister_store(path)
    runtime._stores.pop(path, None)
    runtime._pending.pop(path, None)


def _rehome_pending(
    runtime: "HierarchyRuntime", store: DataStore, target: Optional[DataStore]
) -> None:
    """Move a departing store's parked exports onto its target's queue."""
    queue = runtime._pending.get(store.location.path)
    if queue is None or not queue.entries or target is None:
        return
    rehomed = runtime._pending_for(target)
    for entry in list(queue.entries):
        rehomed.park(entry)
    queue.entries.clear()


# ----------------------------------------------------------------------
# the ops


def site_join(
    runtime: "HierarchyRuntime",
    site: str,
    level: Union[None, str, LevelSpec] = None,
    deadline: Optional[float] = None,
) -> HierarchyNode:
    """Attach a new site under an existing parent and provision it.

    ``site`` is a root-relative label (``region1/router9``); everything
    up to the last segment must already exist.  The level is taken from
    ``level`` when given, else derived from the new node's siblings (or
    depth peers).  If the model configures that level, a store is
    provisioned, wired into the fabric, and becomes ingestible.
    """
    parent_label, _, name = site.rpartition("/")
    if not name:
        raise PlacementError(f"bad site label {site!r}")
    parent_node = _node_by_label(runtime, parent_label)
    if isinstance(level, LevelSpec):
        spec = level
    elif isinstance(level, str):
        spec = next(
            (
                existing
                for existing in runtime.model.hierarchy.levels()
                if existing.name == level
            ),
            LevelSpec(level, deadline),
        )
    else:
        siblings = parent_node.children
        if siblings:
            spec = siblings[0].level
        else:
            depth = len(parent_node.ancestors()) + 1
            peers = [
                peer
                for peer in runtime.model.hierarchy.nodes()
                if len(peer.ancestors()) == depth
            ]
            if not peers:
                raise PlacementError(
                    f"cannot derive a level for {site!r}; pass level="
                )
            spec = peers[0].level
    _drain_pool(runtime)
    node = runtime.model.hierarchy.add_site(parent_node.location, name, spec)
    config = runtime.model.config_for(spec.name)
    if config is not None:
        runtime._provision_store(node, config)
    _finish(runtime, "site_join")
    return node


def site_leave(
    runtime: "HierarchyRuntime", site: str, now: Optional[float] = None
) -> int:
    """Drain a site (subtree) out of the hierarchy, migrating its state.

    Every store-bearing node in the departing subtree, deepest first,
    ships its live summaries and retained partitions to a migration
    target outside the subtree (sibling at the same level, else any
    same-level peer, else the nearest ancestor store) and re-homes its
    parked pending exports onto the target's queue.  Returns the bytes
    migrated.
    """
    at_time = runtime._last_close if now is None else now
    node = _node_by_label(runtime, site)
    if node.parent is None:
        raise PlacementError("the hierarchy root cannot leave")
    _drain_pool(runtime)
    subtree = frozenset(member.location.path for member in node.walk())
    departing = sorted(
        (
            member
            for member in node.walk()
            if member.location.path in runtime._stores
        ),
        key=lambda member: -len(member.ancestors()),
    )
    moved = 0
    for member in departing:
        store = runtime._stores[member.location.path]
        target = _migration_target(runtime, member, subtree)
        moved += _migrate_store_state(
            runtime, member, store, target, at_time, "site_leave"
        )
        _rehome_pending(runtime, store, target)
        _retire_store(runtime, store)
    runtime.model.hierarchy.remove(node.location)
    _finish(runtime, "site_leave")
    return moved


def level_split(
    runtime: "HierarchyRuntime",
    level: str,
    new_level: str,
    groups: Mapping[str, Sequence[str]],
    deadline: Optional[float] = None,
    config: Optional["LevelConfig"] = None,
) -> List[HierarchyNode]:
    """Insert a new level below ``level`` by grouping its children.

    ``groups`` maps each new intermediate node's name to the site
    labels it adopts; every member of one group must currently share
    the same parent at ``level``.  Grouped subtrees are re-based under
    the new node (their location paths gain a segment and all
    path-indexed state is re-keyed).  With ``config``, the new level is
    added to the model's table and each new node gets a store.
    """
    if not groups:
        raise PlacementError("level_split needs at least one group")
    if any(spec.name == new_level for spec in runtime.model.hierarchy.levels()):
        raise PlacementError(f"level {new_level!r} already exists")
    _drain_pool(runtime)
    spec = LevelSpec(new_level, deadline)
    created: List[HierarchyNode] = []
    hierarchy = runtime.model.hierarchy
    for group_name, members in groups.items():
        nodes = [_node_by_label(runtime, member) for member in members]
        if not nodes:
            raise PlacementError(f"group {group_name!r} is empty")
        for member in nodes:
            if member.level.name != level:
                raise PlacementError(
                    f"{member.location.path!r} is at level "
                    f"{member.level.name!r}, not {level!r}"
                )
        parents = {id(member.parent) for member in nodes}
        if len(parents) != 1 or nodes[0].parent is None:
            raise PlacementError(
                f"group {group_name!r} members must share one parent"
            )
        parent = nodes[0].parent
        group_node = hierarchy.add_site(parent.location, group_name, spec)
        for member in nodes:
            detached = hierarchy.remove(member.location)
            renames = hierarchy.graft(detached, group_node.location)
            _apply_renames(runtime, renames)
        created.append(group_node)
    if config is not None:
        runtime.model.set_level(new_level, config)
        for group_node in created:
            runtime._provision_store(group_node, config)
    _finish(runtime, "level_split")
    return created


def level_merge(
    runtime: "HierarchyRuntime", level: str, now: Optional[float] = None
) -> int:
    """Remove a whole level, reattaching its children one level up.

    Each removed node's store state migrates to the nearest surviving
    store (ancestor or cross-level peer — never another node of the
    dissolving level), its pending exports are re-homed, and its
    children are grafted onto its parent (name collisions are a
    :class:`~repro.errors.PlacementError` before anything moves).
    Returns the bytes migrated.
    """
    at_time = runtime._last_close if now is None else now
    hierarchy = runtime.model.hierarchy
    dissolving = hierarchy.nodes_at_level(level)
    if not dissolving:
        raise PlacementError(f"no nodes at level {level!r}")
    if any(member.parent is None for member in dissolving):
        raise PlacementError("the root level cannot merge")
    for member in dissolving:
        assert member.parent is not None
        sibling_names = {
            child.location.parts[-1]
            for child in member.parent.children
            if child is not member
        }
        for child in member.children:
            if child.location.parts[-1] in sibling_names:
                raise PlacementError(
                    f"merging {level!r} would collide on "
                    f"{child.location.parts[-1]!r} under "
                    f"{member.parent.location.path!r}"
                )
    _drain_pool(runtime)
    exclude = frozenset(member.location.path for member in dissolving)
    moved = 0
    # migrate every dissolving store *before* any graft: targets must
    # be nodes the fabric still has links for, not children re-homed
    # moments ago by a sibling's merge step
    for member in dissolving:
        store = runtime._stores.get(member.location.path)
        if store is not None:
            target = _migration_target(runtime, member, exclude)
            moved += _migrate_store_state(
                runtime, member, store, target, at_time, "level_merge"
            )
            _rehome_pending(runtime, store, target)
            _retire_store(runtime, store)
    for member in dissolving:
        parent = member.parent
        assert parent is not None
        for child in list(member.children):
            detached = hierarchy.remove(child.location)
            renames = hierarchy.graft(detached, parent.location)
            _apply_renames(runtime, renames)
        hierarchy.remove(member.location)
    runtime.model.drop_level(level)
    _finish(runtime, "level_merge")
    return moved


def migrate_store(
    runtime: "HierarchyRuntime",
    site: str,
    new_parent: str,
    now: Optional[float] = None,
) -> Dict[str, str]:
    """Re-home a store (and its subtree) under a new parent node.

    The subtree's location paths are rewritten, every path-indexed
    registry (stores, manager, pending-export queues) is re-keyed, and
    the fabric retires the old uplink while creating the new one —
    parked exports redeliver toward the *new* parent on the next close.
    Returns the ``{old_path: new_path}`` rename map.
    """
    node = _node_by_label(runtime, site)
    if node.parent is None:
        raise PlacementError("the hierarchy root cannot migrate")
    parent_node = _node_by_label(runtime, new_parent)
    if any(member is parent_node for member in node.walk()):
        raise PlacementError(
            f"cannot migrate {site!r} under its own subtree"
        )
    # validate the destination *before* detaching: a failed graft must
    # not leave the node stranded outside the hierarchy
    name = node.location.parts[-1]
    if any(
        child.location.parts[-1] == name and child is not node
        for child in parent_node.children
    ):
        raise PlacementError(
            f"{parent_node.location.path!r} already has a child "
            f"named {name!r}"
        )
    _drain_pool(runtime)
    hierarchy = runtime.model.hierarchy
    detached = hierarchy.remove(node.location)
    renames = hierarchy.graft(detached, parent_node.location)
    _apply_renames(runtime, renames)
    _finish(runtime, "migrate_store")
    return renames

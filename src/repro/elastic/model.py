"""The generation-versioned mutable topology model.

The paper's Sec. V.A names *self-adaptation* as a core property of the
computing primitive — the hierarchy reshapes itself around the data.
Historically this repository froze the topology at construction time:
:class:`~repro.runtime.runtime.HierarchyRuntime`, the federated query
planner, the sharded ingest pool, and the observability bridge each
cached their own view of the :class:`~repro.hierarchy.topology.Hierarchy`
and per-level :class:`~repro.runtime.config.LevelConfig` tables, so no
component could change the shape without desynchronizing the others.

:class:`TopologyModel` is the single seam they all consume instead.  It
owns the (mutable, in-place) hierarchy, the live per-level config
table, and a monotonically increasing **generation** counter.  Every
reconfiguration op — ``site_join``, ``site_leave``, ``level_split``,
``level_merge``, ``migrate_store``, and adaptive budget resizes — bumps
the generation, which is what lets downstream caches invalidate
correctly: the :class:`~repro.query.planner.QueryCache` keys answers on
it, the sharded ingest pool is tagged with the generation it was forked
under (a stale pool is drained and re-forked), and the obs bridge
exports it as ``repro_topology_generation``.

The model also keeps the reconfiguration **ledger**: per-op counts,
bytes of summary state migrated across the fabric, and the in-flight
migrations still awaiting redelivery — the source of the
``repro_reconfig_*`` metric families and the ``repro topology`` CLI
census.  A run that issues zero reconfig ops never bumps the
generation, and the runtime's derived views are bit-identical to the
pre-elastic construction-time constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.hierarchy.topology import Hierarchy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.config import LevelConfig


@dataclass
class PendingMigration:
    """One in-flight state migration awaiting redelivery.

    Created when a reconfiguration op could not deliver a store's
    summary over the (possibly faulty) fabric and parked it in a
    pending-export queue instead; resolved when the parked export is
    finally delivered on a later epoch close.
    """

    op: str
    origin: str
    target: str
    export_id: str
    size_bytes: int


@dataclass
class ReconfigLedger:
    """What the reconfiguration ops did, for obs and the CLI census."""

    op_counts: Dict[str, int] = field(default_factory=dict)
    migrated_bytes: int = 0
    migrated_summaries: int = 0
    pending: List[PendingMigration] = field(default_factory=list)

    def record(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    def resolve(self, export_id: str) -> None:
        """Drop the pending-migration entries delivered under an id."""
        self.pending = [
            entry for entry in self.pending if entry.export_id != export_id
        ]


class TopologyModel:
    """A mutable hierarchy + level-config table behind one version seam.

    The hierarchy object is mutated **in place** (never replaced), so
    components that captured a reference at construction — the fabric,
    the manager, the scenario facades — observe every reshape without
    re-wiring.  Structural edits go through
    :class:`~repro.hierarchy.topology.Hierarchy` mutation helpers; this
    class adds the versioning, the config table, and the ledger.
    """

    def __init__(
        self, hierarchy: Hierarchy, levels: Dict[str, "LevelConfig"]
    ) -> None:
        self.hierarchy = hierarchy
        #: live per-level config table; adaptive budget resizes mutate
        #: the LevelConfig objects in place, level_split/merge add and
        #: remove entries
        self.levels: Dict[str, "LevelConfig"] = dict(levels)
        #: bumped by every reconfiguration op; generation 0 is the
        #: construction-time topology
        self.generation = 0
        self.ledger = ReconfigLedger()
        self._listeners: List[Callable[["TopologyModel", str], None]] = []

    # -- versioning ---------------------------------------------------------

    def subscribe(
        self, listener: Callable[["TopologyModel", str], None]
    ) -> None:
        """Call ``listener(model, op)`` after every generation bump."""
        self._listeners.append(listener)

    def bump(self, op: str) -> int:
        """Record one applied reconfiguration op; returns the new gen."""
        self.generation += 1
        self.ledger.record(op)
        for listener in self._listeners:
            listener(self, op)
        return self.generation

    # -- config table -------------------------------------------------------

    def config_for(self, level_name: str) -> Optional["LevelConfig"]:
        """The level's config, or ``None`` for store-less levels."""
        return self.levels.get(level_name)

    def set_level(self, name: str, config: "LevelConfig") -> None:
        """Add (or replace) one level's config without bumping."""
        self.levels[name] = config

    def drop_level(self, name: str) -> None:
        self.levels.pop(name, None)

    # -- migration accounting ------------------------------------------------

    def account_migration(self, size_bytes: int) -> None:
        """One summary delivered to its migration target."""
        self.ledger.migrated_bytes += size_bytes
        self.ledger.migrated_summaries += 1

    def park_migration(self, entry: PendingMigration) -> None:
        self.ledger.pending.append(entry)

    # -- census ---------------------------------------------------------------

    def census(self) -> Dict[str, object]:
        """The live topology, as plain data (the ``repro topology`` CLI).

        Per level: node count, store-bearing config presence, and the
        current node budget (``None`` for unbudgeted/exact levels).
        """
        per_level: List[Dict[str, object]] = []
        for spec in self.hierarchy.levels():
            config = self.levels.get(spec.name)
            per_level.append(
                {
                    "level": spec.name,
                    "nodes": len(self.hierarchy.nodes_at_level(spec.name)),
                    "configured": config is not None,
                    "node_budget": (
                        config.node_budget if config is not None else None
                    ),
                    "deadline_seconds": spec.deadline_seconds,
                }
            )
        return {
            "generation": self.generation,
            "root": self.hierarchy.root.location.path,
            "levels": per_level,
            "op_counts": dict(self.ledger.op_counts),
            "migrated_bytes": self.ledger.migrated_bytes,
            "migrated_summaries": self.ledger.migrated_summaries,
            "pending_migrations": [
                {
                    "op": entry.op,
                    "origin": entry.origin,
                    "target": entry.target,
                    "export_id": entry.export_id,
                    "size_bytes": entry.size_bytes,
                }
                for entry in self.ledger.pending
            ],
        }

"""Elastic topology: the mutable, generation-versioned hierarchy seam.

The paper's Sec. V.A self-adaptation claim, made real: the hierarchy is
no longer frozen at construction.  :class:`TopologyModel` is the single
mutable topology source every component consumes, and the ops in
:mod:`repro.elastic.ops` reshape it live — between epoch closes, with
summary migration, pending-export re-homing, and fault-aware delivery —
while the generation counter keeps the query cache, replica store, and
sharded ingest pool coherent.
"""

from repro.elastic.model import (
    PendingMigration,
    ReconfigLedger,
    TopologyModel,
)

__all__ = [
    "PendingMigration",
    "ReconfigLedger",
    "TopologyModel",
]

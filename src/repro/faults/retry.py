"""Bounded retry with exponential backoff on the simulated clock.

The rollup path wraps every fabric export in a :class:`RetryPolicy`:
each failed attempt advances a *simulated* retry time (the epoch close
timestamp plus accumulated backoff) — never the wall clock — so tests
and benchmarks stay deterministic and instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import PlacementError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed export, and how far apart.

    Attempt ``n`` (0-based) runs at ``now + base_backoff_s *
    (multiplier ** n - 1) / (multiplier - 1)`` — i.e. backoffs of
    ``base``, ``base * multiplier``, ... between consecutive attempts.
    """

    max_attempts: int = 3
    base_backoff_s: float = 1.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PlacementError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0.0 or self.multiplier < 1.0:
            raise PlacementError(
                "base_backoff_s must be >= 0 and multiplier >= 1, got "
                f"{self.base_backoff_s}/{self.multiplier}"
            )

    def attempt_times(self, now: float) -> Iterator[Tuple[int, float]]:
        """Yield ``(attempt_index, simulated_time)`` per allowed attempt."""
        at_time = now
        backoff = self.base_backoff_s
        for attempt in range(self.max_attempts):
            yield attempt, at_time
            at_time += backoff
            backoff *= self.multiplier

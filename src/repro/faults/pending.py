"""Parked exports awaiting redelivery: *delayed, never lost*.

When a child→parent (or root→FlowDB) export exhausts its retry budget
inside one epoch close, the runtime snapshots the already-privacy-
degraded summary and parks it in the store's
:class:`PendingExportQueue`.  The next epoch close drains the queue
before shipping fresh exports — deepest-first rollup order means a
recovered child summary still reaches the root in the same close.

Delivery is at-least-once per epoch partition; the queue dedups by
``export_id`` so a crashy redelivery path cannot double-count mass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set


@dataclass
class PendingExport:
    """One undelivered epoch export, snapshotted for redelivery.

    ``summary`` is the privacy-degraded
    :class:`~repro.core.primitive.DataSummary` exactly as it would have
    crossed the link, so redelivery never re-applies privacy rules and
    never observes post-close mutations of the source aggregator.
    """

    export_id: str
    #: ``"forward"`` (child → parent combine) or ``"flowdb"`` (root → DB)
    kind: str
    summary: Any
    items: int
    size_bytes: int
    #: hierarchy path of the origin store
    origin: str
    #: aggregator name ("forward") or partition id ("flowdb")
    label: str
    created_at: float
    attempts: int = 0


@dataclass
class PendingExportQueue:
    """FIFO of parked exports for one store, deduped by export id."""

    entries: List[PendingExport] = field(default_factory=list)
    _queued_ids: Set[str] = field(default_factory=set, repr=False)
    _delivered_ids: Set[str] = field(default_factory=set, repr=False)

    def park(self, export: PendingExport) -> bool:
        """Queue an export unless it is already queued or delivered."""
        if (
            export.export_id in self._queued_ids
            or export.export_id in self._delivered_ids
        ):
            return False
        self.entries.append(export)
        self._queued_ids.add(export.export_id)
        return True

    def pop(self) -> Optional[PendingExport]:
        """Take the oldest parked export, or ``None`` when empty."""
        if not self.entries:
            return None
        export = self.entries.pop(0)
        self._queued_ids.discard(export.export_id)
        return export

    def requeue(self, export: PendingExport) -> bool:
        """Put a failed redelivery back at the front (stays oldest)."""
        if (
            export.export_id in self._queued_ids
            or export.export_id in self._delivered_ids
        ):
            return False
        self.entries.insert(0, export)
        self._queued_ids.add(export.export_id)
        return True

    def mark_delivered(self, export_id: str) -> None:
        self._delivered_ids.add(export_id)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    @property
    def pending_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries)

    @property
    def pending_items(self) -> int:
        return sum(entry.items for entry in self.entries)

    # -- durability --------------------------------------------------------

    def to_state(
        self, encode_summary: Callable[[Any], Dict[str, Any]]
    ) -> Dict[str, Any]:
        """A JSON-safe snapshot of the queue for a storage manifest.

        Everything round-trips through :meth:`from_state`: entry order,
        every entry field (``size_bytes`` is carried verbatim so queue
        byte accounting is identical after a reload, not re-derived
        from a re-encoded payload), the queued-id set, and — crucially
        for at-least-once delivery — the delivered-id set, so a replay
        after recovery cannot double-count mass.  Entries whose summary
        has no durable codec are skipped and counted in ``"skipped"``.
        """
        entries = []
        skipped = 0
        for entry in self.entries:
            try:
                summary = encode_summary(entry.summary)
            except Exception:
                skipped += 1
                continue
            entries.append(
                {
                    "export_id": entry.export_id,
                    "kind": entry.kind,
                    "summary": summary,
                    "items": entry.items,
                    "size_bytes": entry.size_bytes,
                    "origin": entry.origin,
                    "label": entry.label,
                    "created_at": entry.created_at,
                    "attempts": entry.attempts,
                }
            )
        return {
            "entries": entries,
            "queued_ids": sorted(self._queued_ids),
            "delivered_ids": sorted(self._delivered_ids),
            "skipped": skipped,
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, Any],
        decode_summary: Callable[[Dict[str, Any]], Any],
    ) -> "PendingExportQueue":
        """Rebuild a queue snapshotted with :meth:`to_state`."""
        queue = cls()
        for record in state.get("entries", []):
            queue.entries.append(
                PendingExport(
                    export_id=record["export_id"],
                    kind=record["kind"],
                    summary=decode_summary(record["summary"]),
                    items=record["items"],
                    size_bytes=record["size_bytes"],
                    origin=record["origin"],
                    label=record["label"],
                    created_at=record["created_at"],
                    attempts=record.get("attempts", 0),
                )
            )
        queue._queued_ids = set(state.get("queued_ids", []))
        queue._delivered_ids = set(state.get("delivered_ids", []))
        # ids of skipped (non-durable) entries must not linger as
        # queued: they are gone, and a future park of the same id
        # should be allowed to re-queue
        present = {entry.export_id for entry in queue.entries}
        queue._queued_ids &= present
        return queue

"""Parked exports awaiting redelivery: *delayed, never lost*.

When a child→parent (or root→FlowDB) export exhausts its retry budget
inside one epoch close, the runtime snapshots the already-privacy-
degraded summary and parks it in the store's
:class:`PendingExportQueue`.  The next epoch close drains the queue
before shipping fresh exports — deepest-first rollup order means a
recovered child summary still reaches the root in the same close.

Delivery is at-least-once per epoch partition; the queue dedups by
``export_id`` so a crashy redelivery path cannot double-count mass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Set


@dataclass
class PendingExport:
    """One undelivered epoch export, snapshotted for redelivery.

    ``summary`` is the privacy-degraded
    :class:`~repro.core.primitive.DataSummary` exactly as it would have
    crossed the link, so redelivery never re-applies privacy rules and
    never observes post-close mutations of the source aggregator.
    """

    export_id: str
    #: ``"forward"`` (child → parent combine) or ``"flowdb"`` (root → DB)
    kind: str
    summary: Any
    items: int
    size_bytes: int
    #: hierarchy path of the origin store
    origin: str
    #: aggregator name ("forward") or partition id ("flowdb")
    label: str
    created_at: float
    attempts: int = 0


@dataclass
class PendingExportQueue:
    """FIFO of parked exports for one store, deduped by export id."""

    entries: List[PendingExport] = field(default_factory=list)
    _queued_ids: Set[str] = field(default_factory=set, repr=False)
    _delivered_ids: Set[str] = field(default_factory=set, repr=False)

    def park(self, export: PendingExport) -> bool:
        """Queue an export unless it is already queued or delivered."""
        if (
            export.export_id in self._queued_ids
            or export.export_id in self._delivered_ids
        ):
            return False
        self.entries.append(export)
        self._queued_ids.add(export.export_id)
        return True

    def pop(self) -> Optional[PendingExport]:
        """Take the oldest parked export, or ``None`` when empty."""
        if not self.entries:
            return None
        export = self.entries.pop(0)
        self._queued_ids.discard(export.export_id)
        return export

    def requeue(self, export: PendingExport) -> bool:
        """Put a failed redelivery back at the front (stays oldest)."""
        if (
            export.export_id in self._queued_ids
            or export.export_id in self._delivered_ids
        ):
            return False
        self.entries.insert(0, export)
        self._queued_ids.add(export.export_id)
        return True

    def mark_delivered(self, export_id: str) -> None:
        self._delivered_ids.add(export_id)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    @property
    def pending_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries)

    @property
    def pending_items(self) -> int:
        return sum(entry.items for entry in self.entries)

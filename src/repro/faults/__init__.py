"""Fault injection and recovery primitives (Table I, challenge 2).

The failure model for the hierarchy: :class:`FaultPlan` schedules
deterministic link faults that :class:`~repro.hierarchy.network.
NetworkFabric` consults per hop; :class:`RetryPolicy` bounds the
simulated-clock retry/backoff the runtime wraps around exports; and
:class:`PendingExportQueue` parks exports that exhaust their retries so
they are redelivered on the next epoch close — delayed, never lost.
"""

from repro.faults.pending import PendingExport, PendingExportQueue
from repro.faults.plan import (
    REASON_DROP,
    REASON_OUTAGE,
    FaultPlan,
    LinkOutage,
    ReconfigDrill,
    RestartDrill,
    WorkerCrash,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "REASON_DROP",
    "REASON_OUTAGE",
    "FaultPlan",
    "LinkOutage",
    "ReconfigDrill",
    "RestartDrill",
    "WorkerCrash",
    "PendingExport",
    "PendingExportQueue",
    "RetryPolicy",
]

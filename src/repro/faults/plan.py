"""Seeded, deterministic link-fault schedules.

Table I names *unreliable connections* and *limited bandwidth* as core
challenges of distributed mega-datasets; DPM-Bench-style evaluations
drive distributed algorithms explicitly under degraded networks.  A
:class:`FaultPlan` is the repository's failure model: a reproducible
schedule of probabilistic transfer drops, per-link outage windows
(expressed in epochs), and bandwidth degradation, consulted by
:class:`~repro.hierarchy.network.NetworkFabric` on every hop.

Determinism matters more than realism here: the same plan replayed over
the same transfer sequence makes the same decisions, which is what lets
the hypothesis suite pin *root-mass conservation after recovery* across
arbitrary fault schedules, and lets benchmarks compare drop rates on
identical traces.  Drops are derived from a hash of ``(seed, link,
per-link attempt counter)`` — no global RNG state, no ordering
sensitivity between links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PlacementError

#: Failure reasons reported to :class:`~repro.errors.TransferError`.
REASON_DROP = "drop"
REASON_OUTAGE = "outage"


def _matches(pattern: str, path: str) -> bool:
    """Whether a link-endpoint pattern names a hierarchy path.

    Patterns are matched against the endpoint's full path, or as a
    root-relative suffix (``region1/router1`` matches
    ``cloud/region1/router1``) so CLI specs can use site labels.
    """
    return (
        path == pattern
        or path.endswith("/" + pattern)
    )


@dataclass(frozen=True)
class LinkOutage:
    """One link is down for a half-open window of epochs.

    ``link`` names either endpoint of the affected link (site-label
    suffixes allowed); every link touching a matching endpoint is down
    for epochs ``start_epoch <= epoch < end_epoch``.
    """

    link: str
    start_epoch: int
    end_epoch: int

    def __post_init__(self) -> None:
        if self.end_epoch <= self.start_epoch:
            raise PlacementError(
                f"outage window must be non-empty, got "
                f"[{self.start_epoch}, {self.end_epoch})"
            )

    def covers(self, epoch: int, upper: str, lower: str) -> bool:
        """Whether this outage takes the (upper, lower) link down now."""
        if not self.start_epoch <= epoch < self.end_epoch:
            return False
        return _matches(self.link, upper) or _matches(self.link, lower)


@dataclass(frozen=True)
class WorkerCrash:
    """An injected ingest-worker crash (process faults, not link faults).

    The worker owning ``site`` terminates immediately before applying
    batch ``batch`` (0-based, per site) of epoch ``epoch`` — exercising
    the sharded ingest pool's respawn-and-replay recovery.  ``site`` is
    matched like link patterns (root-relative suffixes allowed).
    """

    site: str
    epoch: int
    batch: int = 0

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.batch < 0:
            raise PlacementError(
                f"crash point must be non-negative, got "
                f"epoch={self.epoch} batch={self.batch}"
            )


@dataclass(frozen=True)
class RestartDrill:
    """A scheduled process kill + recovery (durability faults).

    After the close of epoch ``epoch`` (0-based) — i.e. at an epoch
    boundary, the system's durability point — the store at
    root-relative ``site`` is killed and reopened from the runtime's
    storage engine: live aggregator state, catalogs, and the pending
    queue are discarded, then recovered from the last manifest.  Naming
    the hierarchy *root* restarts the whole runtime (FlowDB index,
    every store, every queue), which is the ROADMAP crash drill: root
    mass after recovery must be bit-identical to an uninterrupted run.
    """

    site: str
    epoch: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise PlacementError(
                f"restart epoch must be non-negative, got {self.epoch}"
            )
        if not self.site:
            raise PlacementError("restart drill needs a site path")


#: Reconfiguration ops a drill may trigger (elastic-topology faults).
RECONFIG_OPS = ("join", "leave", "migrate")


@dataclass(frozen=True)
class ReconfigDrill:
    """One scheduled live-reconfiguration op (topology faults).

    After the close of epoch ``epoch`` (0-based), the runtime applies
    ``op`` to the site at root-relative ``path``: ``join`` attaches a
    new site there, ``leave`` drains it out (migrating its state), and
    ``migrate`` re-homes it under ``new_parent``.  Drills exercise the
    elastic-topology machinery *under* whatever link faults the rest of
    the plan schedules — the combination the root-mass conservation
    property pins.
    """

    op: str
    path: str
    epoch: int
    new_parent: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in RECONFIG_OPS:
            raise PlacementError(
                f"unknown reconfig op {self.op!r}; known: "
                f"{list(RECONFIG_OPS)}"
            )
        if self.epoch < 0:
            raise PlacementError(
                f"reconfig epoch must be non-negative, got {self.epoch}"
            )
        if not self.path:
            raise PlacementError("reconfig drill needs a site path")
        if self.op == "migrate" and self.new_parent is None:
            raise PlacementError(
                "reconfig op 'migrate' needs a new parent "
                "(migrate:<path>><new_parent>:<epoch>)"
            )


@dataclass
class FaultPlan:
    """A deterministic schedule of link faults.

    * ``drop_probability`` — chance that any single transfer attempt on
      any link is lost mid-flight (independent per attempt, derived
      deterministically from ``seed`` and a per-link attempt counter).
    * ``outages`` — hard per-link downtime windows in epoch units.
    * ``bandwidth_factor`` — global capacity degradation in ``(0, 1]``;
      ``bandwidth_factors`` overrides it per link pattern.
    * ``epoch_seconds`` — how transfer times map to epoch indexes for
      the outage windows; the runtime binds its own epoch length here
      when the plan is injected without an explicit value.
    * ``worker_crashes`` — ingest-worker process kills at exact
      (site, epoch, batch) points, consumed by the sharded ingest pool.
    * ``reconfigs`` — scheduled live-topology ops (join/leave/migrate)
      applied by the runtime after the named epoch's close.
    * ``restarts`` — scheduled store kills + recoveries at epoch
      boundaries, exercising the storage engine's crash-restart path.
    """

    seed: int = 0
    drop_probability: float = 0.0
    outages: List[LinkOutage] = field(default_factory=list)
    bandwidth_factor: float = 1.0
    bandwidth_factors: Dict[str, float] = field(default_factory=dict)
    epoch_seconds: Optional[float] = None
    worker_crashes: List[WorkerCrash] = field(default_factory=list)
    reconfigs: List[ReconfigDrill] = field(default_factory=list)
    restarts: List[RestartDrill] = field(default_factory=list)
    _attempts: Dict[Tuple[str, str], int] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise PlacementError(
                f"drop_probability must be in [0, 1), got "
                f"{self.drop_probability}"
            )
        for factor in [self.bandwidth_factor, *self.bandwidth_factors.values()]:
            if not 0.0 < factor <= 1.0:
                raise PlacementError(
                    f"bandwidth factors must be in (0, 1], got {factor}"
                )

    # -- schedule queries ---------------------------------------------------

    def epoch_of(self, at_time: float) -> int:
        """The epoch index a transfer time falls into."""
        seconds = self.epoch_seconds or 60.0
        return int(at_time // seconds)

    def link_down(self, upper: str, lower: str, at_time: float) -> bool:
        """Whether an outage window has this link down at ``at_time``."""
        epoch = self.epoch_of(at_time)
        return any(o.covers(epoch, upper, lower) for o in self.outages)

    def degradation(self, upper: str, lower: str) -> float:
        """The bandwidth factor applying to one link."""
        for pattern, factor in self.bandwidth_factors.items():
            if _matches(pattern, upper) or _matches(pattern, lower):
                return factor
        return self.bandwidth_factor

    def crash_points(self, site_label: str) -> List[Tuple[int, int]]:
        """The ``(epoch, batch)`` crash points scheduled for one site."""
        return [
            (crash.epoch, crash.batch)
            for crash in self.worker_crashes
            if _matches(crash.site, site_label)
            or _matches(site_label, crash.site)
        ]

    def failure(
        self, upper: str, lower: str, at_time: float
    ) -> Optional[str]:
        """The failure verdict for one transfer attempt on one link.

        Returns ``None`` (attempt succeeds), :data:`REASON_OUTAGE`, or
        :data:`REASON_DROP`.  Every call advances the link's attempt
        counter, so verdicts are deterministic for a given call
        sequence regardless of what other links do in between.
        """
        key = (upper, lower)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        if self.link_down(upper, lower, at_time):
            return REASON_OUTAGE
        if self.drop_probability <= 0.0:
            return None
        draw = random.Random(
            f"{self.seed}|{upper}|{lower}|{attempt}"
        ).random()
        return REASON_DROP if draw < self.drop_probability else None

    def reset(self) -> None:
        """Forget attempt history (between independent experiment runs)."""
        self._attempts.clear()

    # -- CLI spec -----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI spec into a plan.

        The spec is comma-separated ``key=value`` items::

            drop=0.2,seed=7,bw=0.5,outage=region1/router1:1-3,epoch=60

        ``outage`` may repeat; its value is ``<link>:<start>-<end>``
        (epochs, end exclusive).  ``bw`` may also be scoped to a link:
        ``bw=region1:0.25``.  ``crash`` may repeat too; its value is
        ``<site>:<epoch>[:<batch>]`` — kill the ingest worker owning
        ``site`` right before that epoch's batch (default batch 0).
        ``reconfig`` may repeat; its value is
        ``<op>:<path>[><new_parent>]:<epoch>`` — apply a live topology
        op (``join``/``leave``/``migrate``) after that epoch's close,
        e.g. ``reconfig=leave:region1/router2:1`` or
        ``reconfig=migrate:region1/router1>region2:2``.
        ``restart`` may repeat; its value is ``<site>:<epoch>`` — kill
        the named store (or the whole runtime, when ``site`` is the
        hierarchy root) after that epoch's close and recover it from
        the storage engine.
        """
        plan = cls()
        for item in filter(None, (part.strip() for part in spec.split(","))):
            if "=" not in item:
                raise PlacementError(
                    f"fault spec item {item!r} is not key=value"
                )
            key, value = (part.strip() for part in item.split("=", 1))
            try:
                if key == "drop":
                    plan.drop_probability = float(value)
                elif key == "seed":
                    plan.seed = int(value)
                elif key == "epoch":
                    plan.epoch_seconds = float(value)
                elif key == "bw":
                    if ":" in value:
                        pattern, factor = value.rsplit(":", 1)
                        plan.bandwidth_factors[pattern] = float(factor)
                    else:
                        plan.bandwidth_factor = float(value)
                elif key == "outage":
                    link, window = value.rsplit(":", 1)
                    start, end = window.split("-", 1)
                    plan.outages.append(
                        LinkOutage(link, int(start), int(end))
                    )
                elif key == "crash":
                    site, _, point = value.partition(":")
                    if not point:
                        raise PlacementError(
                            f"crash spec {value!r} needs <site>:<epoch>"
                            "[:<batch>]"
                        )
                    epoch, _, batch = point.partition(":")
                    plan.worker_crashes.append(
                        WorkerCrash(site, int(epoch), int(batch or 0))
                    )
                elif key == "reconfig":
                    op, _, rest = value.partition(":")
                    path, sep, epoch = rest.rpartition(":")
                    if not sep:
                        raise PlacementError(
                            f"reconfig spec {value!r} needs "
                            "<op>:<path>[><new_parent>]:<epoch>"
                        )
                    target, gt, new_parent = path.partition(">")
                    plan.reconfigs.append(
                        ReconfigDrill(
                            op=op,
                            path=target,
                            epoch=int(epoch),
                            new_parent=new_parent if gt else None,
                        )
                    )
                elif key == "restart":
                    site, sep, epoch = value.rpartition(":")
                    if not sep:
                        raise PlacementError(
                            f"restart spec {value!r} needs <site>:<epoch>"
                        )
                    plan.restarts.append(RestartDrill(site, int(epoch)))
                else:
                    raise PlacementError(
                        f"unknown fault spec key {key!r}; known: "
                        "drop, seed, epoch, bw, outage, crash, reconfig, "
                        "restart"
                    )
            except ValueError as exc:
                raise PlacementError(
                    f"malformed fault spec item {item!r}: {exc}"
                ) from exc
        plan.__post_init__()  # re-validate mutated fields
        return plan

    def describe(self) -> str:
        """One-line, human-readable schedule summary."""
        parts = [f"drop={self.drop_probability:g}", f"seed={self.seed}"]
        if self.bandwidth_factor != 1.0:
            parts.append(f"bw={self.bandwidth_factor:g}")
        for pattern, factor in self.bandwidth_factors.items():
            parts.append(f"bw[{pattern}]={factor:g}")
        for outage in self.outages:
            parts.append(
                f"outage[{outage.link}]="
                f"{outage.start_epoch}-{outage.end_epoch}"
            )
        for crash in self.worker_crashes:
            parts.append(
                f"crash[{crash.site}]={crash.epoch}:{crash.batch}"
            )
        for drill in self.reconfigs:
            where = drill.path
            if drill.new_parent:
                where += f">{drill.new_parent}"
            parts.append(f"reconfig[{where}]={drill.op}@{drill.epoch}")
        for restart in self.restarts:
            parts.append(f"restart[{restart.site}]@{restart.epoch}")
        return " ".join(parts)

"""DDoS investigation (Section II.B, problem (c)).

"Investigate performance and/or DDoS incidents, i.e., identify affected
network parts and possible sources."  The detection logic is the
paper's Diff operator at work: the current epoch's Flowtree minus the
previous epoch's isolates *change*; a destination host whose inbound
popularity jumped by an order of magnitude is a victim candidate, and a
``group_by(src_ip)`` *within* the victim's flows attributes the attack
to source prefixes.  On detection the app installs a mitigation rule in
the site controller — the Figure 2 loop closing from application back
to the physical network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.base import Application, AppReport
from repro.control.controller import Controller
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.core.summary import Location
from repro.flows.features import format_ipv4
from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
from repro.flows.tree import Flowtree


def victim_first_policy() -> GeneralizationPolicy:
    """A 5-tuple generalization chain that specializes the destination
    address *first*.

    This is the paper's "uses domain knowledge" property in action: the
    investigation cares about per-victim aggregates, so the tree is
    shaped to keep destination specificity near the root — under heavy
    compression, per-victim mass survives where the default
    (source-interleaved) chain would fold it away.
    """
    return GeneralizationPolicy.build(
        FIVE_TUPLE,
        [
            ("dst_ip", 8), ("dst_ip", 16), ("dst_ip", 24), ("dst_ip", 32),
            ("src_ip", 8), ("src_ip", 16), ("src_ip", 24), ("src_ip", 32),
            ("proto", 8),
            ("dst_port", 16), ("src_port", 16),
        ],
    )


@dataclass(frozen=True)
class DDoSFinding:
    """One detected incident."""

    site: str
    time: float
    victim: str
    surge_bytes: int
    surge_flows: int
    top_sources: List[Tuple[str, int]]


class DDoSInvestigationApp(Application):
    """Diff-based anomaly localization over per-site Flowtrees."""

    def __init__(
        self,
        sites: List[Location],
        epoch_seconds: float = 60.0,
        surge_factor: float = 5.0,
        min_surge_bytes: int = 1_000_000,
        node_budget: int = 8192,
        controllers: Optional[Dict[str, Controller]] = None,
        planner=None,
    ) -> None:
        super().__init__("ddos-investigation")
        self.sites = sites
        self.epoch_seconds = epoch_seconds
        self.surge_factor = surge_factor
        self.min_surge_bytes = min_surge_bytes
        self.node_budget = node_budget
        self.controllers = controllers or {}
        #: optional federated query planner
        #: (:class:`~repro.query.planner.FederatedQueryPlanner`) — when
        #: wired, drilldowns go through the unified query plane, which
        #: serves replicas locally and feeds the replication engine
        self.planner = planner
        self.policy = victim_first_policy()
        self.findings: List[DDoSFinding] = []
        self._mitigations: int = 0

    def aggregator_name(self, site: Location) -> str:
        """The per-site Flowtree aggregator this app relies on."""
        return f"ddos/{site.path}"

    def requirements(self) -> List[ApplicationRequirement]:
        return [
            ApplicationRequirement(
                app_name=self.name,
                aggregator_name=self.aggregator_name(site),
                kind="flowtree",
                location=site,
                config={"node_budget": self.node_budget,
                        "policy": self.policy},
            )
            for site in self.sites
        ]

    def _window_tree(
        self, manager: Manager, site: Location, start: float, end: float,
        now: float,
    ) -> Optional[Flowtree]:
        if self.planner is not None:
            return self.planner.window_tree(
                site, start, end,
                aggregator=self.aggregator_name(site), now=now,
            )
        # standalone fallback (no query plane): read the covering store
        store = manager.covering_store(site)
        summary, _ = store.window_summary(
            self.aggregator_name(site), start, end, record_access=True,
            now=now,
        )
        return summary.payload if summary is not None else None

    def investigate_site(
        self, manager: Manager, site: Location, now: float
    ) -> List[DDoSFinding]:
        """Compare the last two epochs at one site."""
        current = self._window_tree(
            manager, site, now - self.epoch_seconds, now, now
        )
        baseline = self._window_tree(
            manager,
            site,
            now - 2 * self.epoch_seconds,
            now - self.epoch_seconds,
            now,
        )
        if current is None or baseline is None:
            return []
        delta = current.diff(baseline)
        by_victim = delta.aggregate_by_feature("dst_ip", 32)
        findings = []
        for victim_key, surge in by_victim:
            if surge.bytes < self.min_surge_bytes:
                continue
            victim_value = victim_key.feature_value("dst_ip")
            baseline_score = baseline.query(victim_key)
            if surge.bytes < self.surge_factor * max(1, baseline_score.bytes):
                continue
            sources = current.aggregate_by_feature(
                "src_ip", 8, within=victim_key
            )
            finding = DDoSFinding(
                site=site.path,
                time=now,
                victim=format_ipv4(victim_value),
                surge_bytes=surge.bytes,
                surge_flows=surge.flows,
                top_sources=[
                    (f"{format_ipv4(k.feature_value('src_ip'))}/8", s.bytes)
                    for k, s in sources[:5]
                ],
            )
            findings.append(finding)
        return findings

    def _mitigate(self, finding: DDoSFinding, now: float) -> bool:
        """Install a drop rule at the site controller (if wired)."""
        controller = self.controllers.get(finding.site)
        if controller is None:
            return False
        from repro.control.rules import ControlRule

        self._mitigations += 1
        rule = ControlRule(
            rule_id=f"ddos-mitigate-{self._mitigations}",
            command=f"rate-limit dst={finding.victim}",
            target_actuator=f"{finding.site}/filter",
            priority=100,
            exclusive_group=f"mitigate/{finding.victim}",
            installed_by=self.name,
            certified=True,
        )
        try:
            controller.install_rule(rule)
            return True
        except Exception:
            return False

    def on_epoch(self, manager: Manager, now: float) -> List[AppReport]:
        emitted: List[AppReport] = []
        for site in self.sites:
            for finding in self.investigate_site(manager, site, now):
                self.findings.append(finding)
                mitigated = self._mitigate(finding, now)
                emitted.append(
                    self.report(
                        now,
                        "ddos-detected",
                        site=finding.site,
                        victim=finding.victim,
                        surge_bytes=finding.surge_bytes,
                        top_sources=finding.top_sources,
                        mitigated=mitigated,
                    )
                )
        return emitted

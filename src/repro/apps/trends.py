"""Network trends (Section II.B, problem (a)).

"Determine network trends, e.g., popular network applications or
traffic sources."  The app requires a Flowtree per monitored site and,
each epoch, reports the service (destination-port) mix, the top source
prefixes, and the top flows — all straight Table II operator calls,
which is the point: one primitive, many a-priori-unknown questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps.base import Application, AppReport
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.flows.features import format_ipv4


@dataclass(frozen=True)
class TrendReport:
    """One epoch's trend snapshot for one site."""

    site: str
    time: float
    services: List[Tuple[int, int]]
    top_source_prefixes: List[Tuple[str, int]]
    top_flows: List[Tuple[str, int]]


class NetworkTrendsApp(Application):
    """Service mix, top sources, and top flows per site."""

    def __init__(
        self,
        sites: List[Location],
        node_budget: int = 4096,
        top_n: int = 10,
    ) -> None:
        super().__init__("network-trends")
        self.sites = sites
        self.node_budget = node_budget
        self.top_n = top_n
        self.trend_reports: List[TrendReport] = []

    def aggregator_name(self, site: Location) -> str:
        """The per-site Flowtree aggregator this app relies on."""
        return f"trends/{site.path}"

    def requirements(self) -> List[ApplicationRequirement]:
        return [
            ApplicationRequirement(
                app_name=self.name,
                aggregator_name=self.aggregator_name(site),
                kind="flowtree",
                location=site,
                config={"node_budget": self.node_budget},
            )
            for site in self.sites
        ]

    def on_epoch(self, manager: Manager, now: float) -> List[AppReport]:
        emitted: List[AppReport] = []
        for site in self.sites:
            store = manager.covering_store(site)
            name = self.aggregator_name(site)
            try:
                services = store.query(
                    name,
                    QueryRequest("group_by", {"feature": "dst_port", "level": 16}),
                    now=now,
                ).value
                sources = store.query(
                    name,
                    QueryRequest("group_by", {"feature": "src_ip", "level": 8}),
                    now=now,
                ).value
                flows = store.query(
                    name, QueryRequest("top_k", {"k": self.top_n}), now=now
                ).value
            except Exception:
                continue
            snapshot = TrendReport(
                site=site.path,
                time=now,
                services=[
                    (key.feature_value("dst_port"), score.bytes)
                    for key, score in services[: self.top_n]
                ],
                top_source_prefixes=[
                    (
                        f"{format_ipv4(key.feature_value('src_ip'))}/8",
                        score.bytes,
                    )
                    for key, score in sources[: self.top_n]
                ],
                top_flows=[
                    (str(key), score.bytes)
                    for key, score in flows[: self.top_n]
                ],
            )
            self.trend_reports.append(snapshot)
            emitted.append(
                self.report(
                    now,
                    "trends",
                    site=site.path,
                    top_service=(
                        snapshot.services[0][0] if snapshot.services else None
                    ),
                    services=len(snapshot.services),
                    sources=len(snapshot.top_source_prefixes),
                )
            )
        return emitted

"""Predictive maintenance (Section II.A, application (a)).

Per machine, the app requires a time-binned statistics aggregator over
the vibration stream.  Each epoch it reads the recent per-bin means,
fits a linear trend, and extrapolates when the vibration will cross the
failure signature.  When the predicted crossing falls inside the
planning horizon it *schedules maintenance* — in the simulation, a
direct call to :meth:`Machine.perform_maintenance`, standing in for the
controller-mediated work order.

The benchmark compares machines run with and without the app: failures
avoided is the paper's motivating win for analyzing "operational data
belonging to a ... class of machines to predict failures and schedule
maintenance accordingly".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analytics.inference import LinearTrend, time_to_threshold
from repro.apps.base import Application, AppReport
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.core.primitive import QueryRequest
from repro.simulation.factory import (
    BASE_VIBRATION,
    FactoryWorkload,
    Machine,
    MachineState,
    WEAR_VIBRATION_GAIN,
)

#: Vibration level considered the failure signature: the model's value
#: at 90% wear.
FAILURE_VIBRATION = BASE_VIBRATION + WEAR_VIBRATION_GAIN * 0.9 * 0.9


@dataclass(frozen=True)
class MaintenanceDecision:
    """One maintenance the app scheduled."""

    machine_id: str
    decided_at: float
    predicted_failure_in: float
    trend_slope: float


class PredictiveMaintenanceApp(Application):
    """Trend-based failure prediction over vibration summaries."""

    def __init__(
        self,
        workload: FactoryWorkload,
        bin_seconds: float = 60.0,
        horizon_seconds: float = 2 * 3600.0,
        min_bins: int = 5,
    ) -> None:
        super().__init__("predictive-maintenance")
        self.workload = workload
        self.bin_seconds = bin_seconds
        self.horizon_seconds = horizon_seconds
        self.min_bins = min_bins
        self.decisions: List[MaintenanceDecision] = []

    def _aggregator_name(self, machine: Machine) -> str:
        return f"pm/{machine.machine_id}/vibration"

    def requirements(self) -> List[ApplicationRequirement]:
        needs = []
        for machine in self.workload.machines:
            needs.append(
                ApplicationRequirement(
                    app_name=self.name,
                    aggregator_name=self._aggregator_name(machine),
                    kind="timebin",
                    location=machine.location,
                    config={
                        "bin_seconds": self.bin_seconds,
                        "item_of": lambda reading: reading.value,
                    },
                    stream_prefix=machine.vibration_sensor.sensor_id,
                )
            )
        return needs

    def _predict(
        self, manager: Manager, machine: Machine, now: float
    ) -> Optional[tuple]:
        """``(seconds to failure or None, trend)``; None when unknown."""
        store = manager.covering_store(machine.location)
        name = self._aggregator_name(machine)
        try:
            result = store.query(
                name,
                QueryRequest("series", {"field": "mean"}),
                start=max(0.0, now - 12 * 3600.0),
                end=now,
                now=now,
            )
        except Exception:
            return None
        series = [
            (bin_start, value)
            for bin_start, value in result.value
            if value is not None
        ]
        if len(series) < self.min_bins:
            return None
        trend = LinearTrend.fit(series[-60:])
        return time_to_threshold(trend, now, FAILURE_VIBRATION), trend

    def on_epoch(self, manager: Manager, now: float) -> List[AppReport]:
        emitted: List[AppReport] = []
        for machine in self.workload.machines:
            if machine.state is not MachineState.RUNNING:
                continue
            prediction = self._predict(manager, machine, now)
            if prediction is None:
                continue
            eta, trend = prediction
            if eta is None or eta > self.horizon_seconds:
                continue
            machine.perform_maintenance(now)
            decision = MaintenanceDecision(
                machine_id=machine.machine_id,
                decided_at=now,
                predicted_failure_in=eta,
                trend_slope=trend.slope,
            )
            self.decisions.append(decision)
            emitted.append(
                self.report(
                    now,
                    "maintenance-scheduled",
                    machine=machine.machine_id,
                    predicted_failure_in=eta,
                )
            )
        return emitted

"""Applications: the decision logic of the architecture (Section III.A).

"Each application embodies the decision logic for a single purpose" —
long-running or interactive, local or global.  The applications here
are the ones the paper's use-case sections call out:

Smart factory (Section II.A):
  * :class:`~repro.apps.predictive_maintenance.PredictiveMaintenanceApp`
  * :class:`~repro.apps.process_mining.ProcessMiningApp`
  * :class:`~repro.apps.supply_chain.SupplyChainApp`

Network monitoring (Section II.B):
  * :class:`~repro.apps.trends.NetworkTrendsApp`
  * :class:`~repro.apps.traffic_matrix.TrafficMatrixApp`
  * :class:`~repro.apps.ddos.DDoSInvestigationApp`
"""

from repro.apps.base import Application, AppReport
from repro.apps.predictive_maintenance import (
    MaintenanceDecision,
    PredictiveMaintenanceApp,
)
from repro.apps.process_mining import ProcessMiningApp, LineEfficiency
from repro.apps.supply_chain import SupplyChainApp, TraceResult
from repro.apps.sensor_health import SensorFault, SensorHealthApp
from repro.apps.trends import NetworkTrendsApp, TrendReport
from repro.apps.traffic_matrix import TrafficMatrixApp
from repro.apps.ddos import DDoSInvestigationApp, DDoSFinding

__all__ = [
    "Application",
    "AppReport",
    "PredictiveMaintenanceApp",
    "MaintenanceDecision",
    "ProcessMiningApp",
    "LineEfficiency",
    "SupplyChainApp",
    "TraceResult",
    "SensorHealthApp",
    "SensorFault",
    "NetworkTrendsApp",
    "TrendReport",
    "TrafficMatrixApp",
    "DDoSInvestigationApp",
    "DDoSFinding",
]

"""Sensor-health monitoring: the lineage use case of Section III.C.

"Data lineage can, e.g., be used to identify faulty sensors or retract
erroneous rules."  This application watches every sensor stream with a
streaming anomaly detector; when a sensor turns anomalous (stuck,
drifting, or spiking in a way inconsistent with its peers) the app

1. flags the sensor,
2. walks the lineage log *forward* from the sensor's ingest records to
   enumerate every summary the faulty data contaminated, and
3. recommends the contaminated summaries for retraction.

Peers matter: a machine genuinely overheating raises *all* of its
sensors coherently, while a faulty sensor disagrees with its
co-located peers — the app only flags the latter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analytics.inference import EwmaAnomalyDetector
from repro.apps.base import Application, AppReport
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.core.summary import LineageLog, Location


@dataclass(frozen=True)
class SensorFault:
    """One detected faulty sensor."""

    sensor_id: str
    detected_at: float
    anomaly_score: float
    contaminated_lineage_ids: List[int]


@dataclass
class _SensorState:
    detector: EwmaAnomalyDetector
    location: Location
    consecutive_anomalies: int = 0
    flagged: bool = False
    ingest_lineage_ids: List[int] = field(default_factory=list)


class SensorHealthApp(Application):
    """Per-sensor anomaly detection + lineage-based contamination trace.

    Unlike the other applications this one taps the raw stream (it *is*
    the quality-control path), so it registers no aggregators; wire it
    with :meth:`observe` from the ingest loop, and give it the store's
    lineage log to trace contamination.
    """

    def __init__(
        self,
        lineage: LineageLog,
        z_threshold: float = 6.0,
        consecutive_required: int = 5,
        peer_agreement_ratio: float = 0.5,
    ) -> None:
        super().__init__("sensor-health")
        self.lineage = lineage
        self.z_threshold = z_threshold
        self.consecutive_required = consecutive_required
        self.peer_agreement_ratio = peer_agreement_ratio
        self._sensors: Dict[str, _SensorState] = {}
        self.faults: List[SensorFault] = []

    def requirements(self) -> List[ApplicationRequirement]:
        """Raw-stream consumer: nothing for the Manager to install."""
        return []

    # -- wiring ----------------------------------------------------------

    def watch(self, sensor_id: str, location: Location) -> None:
        """Start tracking one sensor."""
        if sensor_id not in self._sensors:
            self._sensors[sensor_id] = _SensorState(
                detector=EwmaAnomalyDetector(
                    alpha=0.05, z_threshold=self.z_threshold, warmup=30
                ),
                location=location,
            )

    def note_ingest_lineage(self, sensor_id: str, lineage_id: int) -> None:
        """Associate an ingest-lineage record with a sensor."""
        state = self._sensors.get(sensor_id)
        if state is not None:
            state.ingest_lineage_ids.append(lineage_id)

    # -- detection ---------------------------------------------------------

    def observe(
        self, sensor_id: str, value: float, timestamp: float,
        location: Optional[Location] = None,
    ) -> Optional[SensorFault]:
        """Feed one reading; returns a fault when one is confirmed."""
        if sensor_id not in self._sensors:
            self.watch(
                sensor_id, location or Location(sensor_id.split("/")[0])
            )
        state = self._sensors[sensor_id]
        is_anomalous = state.detector.observe(value, timestamp)
        if not is_anomalous:
            state.consecutive_anomalies = 0
            return None
        state.consecutive_anomalies += 1
        if state.flagged:
            return None
        if state.consecutive_anomalies < self.consecutive_required:
            return None
        if self._peers_agree(state):
            # co-located sensors see it too: a real physical event, not
            # a sensor fault — leave it to the control loop.  The streak
            # counter is kept so this sensor still counts as corroborating
            # evidence for its peers' own checks.
            return None
        return self._flag(sensor_id, state, timestamp)

    def _peers_agree(self, state: _SensorState) -> bool:
        peers = [
            other
            for other in self._sensors.values()
            if other is not state and other.location == state.location
        ]
        if not peers:
            return False
        anomalous = sum(
            1 for peer in peers if peer.consecutive_anomalies > 0
        )
        return anomalous / len(peers) >= self.peer_agreement_ratio

    def _flag(
        self, sensor_id: str, state: _SensorState, timestamp: float
    ) -> SensorFault:
        state.flagged = True
        contaminated: List[int] = []
        for lineage_id in state.ingest_lineage_ids:
            contaminated.extend(
                record.lineage_id
                for record in self.lineage.descendants(lineage_id)
            )
        score = (
            state.detector.anomalies[-1][2]
            if state.detector.anomalies
            else float("inf")
        )
        fault = SensorFault(
            sensor_id=sensor_id,
            detected_at=timestamp,
            anomaly_score=score,
            contaminated_lineage_ids=sorted(set(contaminated)),
        )
        self.faults.append(fault)
        self.report(
            timestamp,
            "sensor-fault",
            sensor=sensor_id,
            contaminated_summaries=len(fault.contaminated_lineage_ids),
        )
        return fault

    def clear_flag(self, sensor_id: str) -> None:
        """Mark a sensor repaired (it may be flagged again later)."""
        state = self._sensors.get(sensor_id)
        if state is not None:
            state.flagged = False
            state.consecutive_anomalies = 0

    def on_epoch(self, manager: Manager, now: float) -> List[AppReport]:
        """Detection is streaming; epochs only summarize open faults."""
        open_faults = [
            fault for fault in self.faults
            if self._sensors[fault.sensor_id].flagged
        ]
        if not open_faults:
            return []
        return [
            self.report(
                now,
                "health-summary",
                open_faults=[fault.sensor_id for fault in open_faults],
            )
        ]

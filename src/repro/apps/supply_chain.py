"""Supply-chain tracing (Section II.A, application (b)) via lineage.

"Procedures for tracing product failures back to the material used in
the production steps or to variations in the production process
itself."  Combined with Section III.C's lineage requirement, this app
is a consumer of the schema-level :class:`~repro.core.summary.LineageLog`:
given a suspect summary (a production epoch that yielded faulty goods)
it walks the ancestry to the contributing aggregation steps and
locations; given a suspect sensor's ingest record it walks descendants
to every summary — and hence every decision — the bad data touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.base import Application, AppReport
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.core.summary import LineageLog, LineageRecord


@dataclass(frozen=True)
class TraceResult:
    """Outcome of one trace."""

    direction: str
    origin_id: int
    steps: List[LineageRecord]

    @property
    def locations(self) -> List[str]:
        """Distinct locations touched, in discovery order."""
        seen: List[str] = []
        for record in self.steps:
            if record.location is not None and record.location.path not in seen:
                seen.append(record.location.path)
        return seen


class SupplyChainApp(Application):
    """Lineage-driven failure tracing."""

    def __init__(self, lineage: LineageLog) -> None:
        super().__init__("supply-chain")
        self.lineage = lineage
        self.traces: List[TraceResult] = []

    def requirements(self) -> List[ApplicationRequirement]:
        """Tracing needs no aggregators — it reads the lineage log."""
        return []

    def trace_back(self, lineage_id: int, now: float = 0.0) -> TraceResult:
        """Where did this summary's data come from?"""
        steps = self.lineage.ancestry(lineage_id)
        result = TraceResult(direction="back", origin_id=lineage_id, steps=steps)
        self.traces.append(result)
        self.report(
            now,
            "trace-back",
            origin=lineage_id,
            steps=len(steps),
            locations=result.locations,
        )
        return result

    def trace_forward(self, lineage_id: int, now: float = 0.0) -> TraceResult:
        """What did this (faulty) data contaminate?"""
        steps = self.lineage.descendants(lineage_id)
        result = TraceResult(
            direction="forward", origin_id=lineage_id, steps=steps
        )
        self.traces.append(result)
        self.report(
            now,
            "trace-forward",
            origin=lineage_id,
            steps=len(steps),
            locations=result.locations,
        )
        return result

    def on_epoch(self, manager: Manager, now: float) -> List[AppReport]:
        """Tracing is interactive (query-driven); epochs are a no-op."""
        return []

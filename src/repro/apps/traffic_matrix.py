"""Traffic matrices for provisioning (Section II.B, problem (b)).

"Compute traffic matrices, for planning network upgrades."  Per epoch
the app aggregates each site's Flowtree by source /8 prefix, assembles
the (source prefix x site) demand matrix, projects the demands onto the
hierarchy links (every site's traffic transits its ancestor chain), and
reports the most loaded link relative to its capacity — the upgrade
candidate.  The link projection uses :mod:`networkx` over the hierarchy
graph, standing in for a real routing model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.apps.base import Application, AppReport
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.flows.features import format_ipv4
from repro.hierarchy.network import NetworkFabric


class TrafficMatrixApp(Application):
    """Source-prefix x site demand matrices and link load projection."""

    def __init__(
        self,
        sites: List[Location],
        fabric: Optional[NetworkFabric] = None,
        node_budget: int = 4096,
        prefix_level: int = 8,
    ) -> None:
        super().__init__("traffic-matrix")
        self.sites = sites
        self.fabric = fabric
        self.node_budget = node_budget
        self.prefix_level = prefix_level
        self.matrices: List[Dict[Tuple[str, str], int]] = []

    def aggregator_name(self, site: Location) -> str:
        """The per-site Flowtree aggregator this app relies on."""
        return f"matrix/{site.path}"

    def requirements(self) -> List[ApplicationRequirement]:
        return [
            ApplicationRequirement(
                app_name=self.name,
                aggregator_name=self.aggregator_name(site),
                kind="flowtree",
                location=site,
                config={"node_budget": self.node_budget},
            )
            for site in self.sites
        ]

    def build_matrix(
        self, manager: Manager, now: float
    ) -> Dict[Tuple[str, str], int]:
        """The (source prefix, site) -> bytes demand matrix."""
        matrix: Dict[Tuple[str, str], int] = {}
        for site in self.sites:
            store = manager.covering_store(site)
            try:
                groups = store.query(
                    self.aggregator_name(site),
                    QueryRequest(
                        "group_by",
                        {"feature": "src_ip", "level": self.prefix_level},
                    ),
                    now=now,
                ).value
            except Exception:
                continue
            for key, score in groups:
                prefix = (
                    f"{format_ipv4(key.feature_value('src_ip'))}"
                    f"/{self.prefix_level}"
                )
                matrix[(prefix, site.path)] = score.bytes
        return matrix

    def project_link_loads(
        self, matrix: Dict[Tuple[str, str], int]
    ) -> Dict[Tuple[str, str], float]:
        """Per-link utilization assuming traffic enters at the root.

        External traffic reaches each site over the hierarchy path from
        the root; utilization is demand divided by link capacity over
        the epoch (informational — not a queueing model).
        """
        if self.fabric is None:
            return {}
        graph = nx.Graph()
        for link in self.fabric.links():
            graph.add_edge(
                link.upper.path, link.lower.path, capacity=link.bandwidth_bps
            )
        root = self.fabric.hierarchy.root.location.path
        loads: Dict[Tuple[str, str], int] = {}
        for (_prefix, site), demand in matrix.items():
            if site not in graph or root not in graph:
                continue
            path = nx.shortest_path(graph, root, site)
            for a, b in zip(path, path[1:]):
                loads[(a, b)] = loads.get((a, b), 0) + demand
        utilization: Dict[Tuple[str, str], float] = {}
        for edge, demand_bytes in loads.items():
            capacity = graph.edges[edge]["capacity"]
            utilization[edge] = demand_bytes * 8.0 / capacity
        return utilization

    def on_epoch(self, manager: Manager, now: float) -> List[AppReport]:
        matrix = self.build_matrix(manager, now)
        if not matrix:
            return []
        self.matrices.append(matrix)
        utilization = self.project_link_loads(matrix)
        hottest = (
            max(utilization.items(), key=lambda pair: pair[1])
            if utilization
            else (None, 0.0)
        )
        return [
            self.report(
                now,
                "traffic-matrix",
                entries=len(matrix),
                total_bytes=sum(matrix.values()),
                hottest_link=hottest[0],
                hottest_seconds_of_traffic=hottest[1],
            )
        ]

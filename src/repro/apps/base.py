"""The application base class.

An application (1) declares its data requirements, which the Manager
turns into installed aggregators; (2) consumes summaries or query
results each epoch; and (3) acts — by producing reports for users, or
by installing triggers and controller rules ("the latter ... for simple
conditions that need real-time reactions while the former ... complex
situations").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement


@dataclass(frozen=True)
class AppReport:
    """One report an application emitted for monitoring/users."""

    app_name: str
    time: float
    kind: str
    body: Dict[str, Any] = field(default_factory=dict)


class Application(abc.ABC):
    """Base class for all decision-logic applications."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.reports: List[AppReport] = []

    @abc.abstractmethod
    def requirements(self) -> List[ApplicationRequirement]:
        """What this application needs the Manager to install."""

    def deploy(self, manager: Manager) -> None:
        """Submit every requirement to the manager."""
        for requirement in self.requirements():
            manager.submit_requirement(requirement)

    def report(self, time: float, kind: str, **body: Any) -> AppReport:
        """Record one report."""
        entry = AppReport(app_name=self.name, time=time, kind=kind, body=body)
        self.reports.append(entry)
        return entry

    @abc.abstractmethod
    def on_epoch(self, manager: Manager, now: float) -> List[AppReport]:
        """Run the application's decision logic after an epoch close."""

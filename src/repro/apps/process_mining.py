"""Process mining (Section II.A, application (c)).

"The review of production processes attained by combining operational
data and enterprise data to identify sources for efficiency gains."

The app requires a per-machine time-binned aggregator over the
*temperature* stream as a proxy for machine activity (temperature
tracks wear and duty), combines it with "enterprise data" — the nominal
per-line target supplied at construction, standing in for the ERP
integration of Section III.C — and reports, per line, the efficiency
spread and the machine most likely to be the bottleneck (highest wear
signature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.base import Application, AppReport
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.core.primitive import QueryRequest
from repro.simulation.factory import (
    BASE_TEMPERATURE,
    FactoryWorkload,
    Machine,
    WEAR_TEMPERATURE_GAIN,
)


@dataclass(frozen=True)
class LineEfficiency:
    """Efficiency snapshot of one production line."""

    line: str
    mean_health: float
    worst_machine: str
    worst_health: float

    @property
    def spread(self) -> float:
        """Gap between average and worst health (the efficiency gain
        available by servicing the bottleneck)."""
        return self.mean_health - self.worst_health


def _health_from_temperature(mean_temperature: float) -> float:
    """Map the observed temperature back to a health score in [0, 1].

    Inverts the simulator's wear → temperature model; on real data this
    would be a learned calibration.
    """
    wear = (mean_temperature - BASE_TEMPERATURE) / WEAR_TEMPERATURE_GAIN
    return max(0.0, min(1.0, 1.0 - wear))


class ProcessMiningApp(Application):
    """Per-line efficiency review over machine activity summaries."""

    def __init__(
        self, workload: FactoryWorkload, bin_seconds: float = 300.0
    ) -> None:
        super().__init__("process-mining")
        self.workload = workload
        self.bin_seconds = bin_seconds
        self.line_reports: List[LineEfficiency] = []

    def _aggregator_name(self, machine: Machine) -> str:
        return f"mine/{machine.machine_id}/temperature"

    def requirements(self) -> List[ApplicationRequirement]:
        return [
            ApplicationRequirement(
                app_name=self.name,
                aggregator_name=self._aggregator_name(machine),
                kind="timebin",
                location=machine.location,
                config={
                    "bin_seconds": self.bin_seconds,
                    "item_of": lambda reading: reading.value,
                },
                stream_prefix=machine.temperature_sensor.sensor_id,
            )
            for machine in self.workload.machines
        ]

    def mine_events(self, line: str, events, now: float) -> AppReport:
        """Mine a production event log for one line (the richer path).

        Where :meth:`on_epoch` infers health from sensor telemetry, this
        combines the *event log* — items through machines — with the
        operational view: bottleneck by utilization, throughput, and the
        estimated speedup from servicing the bottleneck.  This is the
        "combining operational data and enterprise data" variant of the
        paper's process-mining application.
        """
        from repro.analytics.eventlog import (
            analyze_event_log,
            efficiency_gain_estimate,
        )

        analysis = analyze_event_log(events)
        gain = efficiency_gain_estimate(analysis)
        return self.report(
            now,
            "line-process-analysis",
            line=line,
            bottleneck=analysis.bottleneck,
            throughput_per_hour=analysis.throughput_per_hour,
            mean_flow_seconds=analysis.mean_flow_seconds,
            potential_speedup=gain["potential_speedup"],
        )

    def on_epoch(self, manager: Manager, now: float) -> List[AppReport]:
        emitted: List[AppReport] = []
        for line_name, machines in self.workload.lines.items():
            healths: Dict[str, float] = {}
            for machine in machines:
                store = manager.covering_store(machine.location)
                try:
                    result = store.query(
                        self._aggregator_name(machine),
                        QueryRequest("stats", {}),
                        start=max(0.0, now - 2 * 3600.0),
                        end=now,
                        now=now,
                    )
                except Exception:
                    continue
                stats = result.value
                if stats.count == 0:
                    continue
                healths[machine.machine_id] = _health_from_temperature(
                    stats.mean
                )
            if not healths:
                continue
            worst_machine = min(healths, key=lambda m: healths[m])
            snapshot = LineEfficiency(
                line=line_name,
                mean_health=sum(healths.values()) / len(healths),
                worst_machine=worst_machine,
                worst_health=healths[worst_machine],
            )
            self.line_reports.append(snapshot)
            emitted.append(
                self.report(
                    now,
                    "line-efficiency",
                    line=line_name,
                    mean_health=snapshot.mean_health,
                    bottleneck=snapshot.worst_machine,
                    potential_gain=snapshot.spread,
                )
            )
        return emitted

"""The Controller building block ("resolve conflicts & decide").

One controller guards the machines of one location.  It subscribes to
its data store's trigger engine; when a trigger fires, matching rules
are evaluated, conflicts are resolved by priority (per actuator and
exclusive group), and the winning command is dispatched to the actuator
after a small actuation delay.  Rule installation validates against
already-installed rules and — per Section III.C — can require rules to
be *certified* before acceptance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.control.rules import ControlRule
from repro.core.summary import Location
from repro.datastore.triggers import TriggerFiring
from repro.errors import RuleConflictError
from repro.simulation.sensors import Actuator

#: Simulated trigger-to-actuator dispatch delay in seconds: the local
#: control path is sub-millisecond, which is what lets it meet the
#: machine-level deadline of Figure 1.
ACTUATION_DELAY_S = 0.0005


@dataclass(frozen=True)
class ControlAction:
    """One command the controller issued."""

    rule_id: str
    command: str
    actuator_id: str
    triggered_by: str
    fired_at: float
    actuated_at: float

    @property
    def latency(self) -> float:
        """Trigger-to-actuation delay."""
        return self.actuated_at - self.fired_at


@dataclass(frozen=True)
class BudgetDecision:
    """One adaptive node-budget resize the tuner issued."""

    level: str
    old_budget: int
    new_budget: int
    pressure: float
    fullness: float
    decided_at: float


@dataclass
class BudgetTuner:
    """Adaptive per-level Flowtree budgets from compression pressure.

    The paper's adaptive cycle (Fig. 3) closes the loop at every level:
    instead of static ``LevelConfig`` budget tables, the control plane
    watches how hard each level's trees had to compress this epoch —
    *pressure* is the mean number of budget-overflow compress passes
    per store, *fullness* the mean end-of-epoch node count relative to
    the budget — and resizes.  Sustained pressure at or above
    ``grow_pressure`` doubles the budget (finer summaries, fewer
    compress cycles); an epoch with zero compressions and fullness at
    or below ``shrink_fullness`` halves it (the level is over-
    provisioned).  Proposals clamp to ``[min_budget, max_budget]``,
    tightened per level by ``LevelConfig.min_node_budget`` /
    ``max_node_budget``, and never fall below the tree's minimum chain
    length.  Every accepted resize is recorded in ``decisions``.
    """

    grow_pressure: float = 2.0
    shrink_fullness: float = 0.25
    grow_factor: float = 2.0
    shrink_factor: float = 0.5
    min_budget: int = 64
    max_budget: int = 1 << 20
    decisions: List[BudgetDecision] = field(default_factory=list)

    def propose(
        self,
        level: str,
        budget: int,
        pressure: float,
        fullness: float,
        floor: int,
        min_budget: Optional[int] = None,
        max_budget: Optional[int] = None,
        now: float = 0.0,
    ) -> Optional[int]:
        """The new budget for one level, or ``None`` to keep it."""
        lo = max(self.min_budget, floor, min_budget or 0)
        hi = self.max_budget if max_budget is None else max_budget
        if pressure >= self.grow_pressure:
            proposed = max(int(budget * self.grow_factor), budget + 1)
        elif pressure == 0.0 and fullness <= self.shrink_fullness:
            proposed = int(budget * self.shrink_factor)
        else:
            return None
        proposed = max(lo, min(hi, proposed))
        if proposed == budget:
            return None
        self.decisions.append(
            BudgetDecision(
                level=level,
                old_budget=budget,
                new_budget=proposed,
                pressure=pressure,
                fullness=fullness,
                decided_at=now,
            )
        )
        return proposed


class Controller:
    """Local control logic for one location."""

    def __init__(
        self,
        location: Location,
        require_certification: bool = False,
    ) -> None:
        self.location = location
        self.require_certification = require_certification
        self._rules: Dict[str, ControlRule] = {}
        self._actuators: Dict[str, Actuator] = {}
        self.actions: List[ControlAction] = []
        self.rejected_rules: List[str] = []

    # -- wiring ----------------------------------------------------------

    def register_actuator(self, actuator: Actuator) -> None:
        """Make an actuator addressable by rules."""
        self._actuators[actuator.actuator_id] = actuator

    def actuator(self, actuator_id: str) -> Actuator:
        """Fetch a registered actuator."""
        try:
            return self._actuators[actuator_id]
        except KeyError as exc:
            raise RuleConflictError(
                f"no actuator {actuator_id!r} at {self.location.path!r}"
            ) from exc

    # -- rule management (applications install via the manager) ------------

    def install_rule(self, rule: ControlRule) -> None:
        """Validate and install a rule.

        Raises :class:`RuleConflictError` on duplicate ids, missing
        certification (when enforced), unknown actuators, or an
        unresolvable conflict with an installed rule.
        """
        if rule.rule_id in self._rules:
            raise RuleConflictError(f"duplicate rule id {rule.rule_id!r}")
        if self.require_certification and not rule.certified:
            self.rejected_rules.append(rule.rule_id)
            raise RuleConflictError(
                f"rule {rule.rule_id!r} is not certified; this controller "
                "requires certified rules"
            )
        if rule.target_actuator not in self._actuators:
            raise RuleConflictError(
                f"rule {rule.rule_id!r} targets unknown actuator "
                f"{rule.target_actuator!r}"
            )
        for installed in self._rules.values():
            if rule.conflicts_with(installed):
                self.rejected_rules.append(rule.rule_id)
                raise RuleConflictError(
                    f"rule {rule.rule_id!r} conflicts with installed rule "
                    f"{installed.rule_id!r} (group "
                    f"{rule.exclusive_group!r}, equal priority, commands "
                    f"{rule.command!r} vs {installed.command!r})"
                )
        self._rules[rule.rule_id] = rule

    def remove_rule(self, rule_id: str) -> ControlRule:
        """Uninstall a rule."""
        try:
            return self._rules.pop(rule_id)
        except KeyError as exc:
            raise RuleConflictError(f"unknown rule id {rule_id!r}") from exc

    def rules(self) -> List[ControlRule]:
        """All installed rules."""
        return list(self._rules.values())

    # -- the control cycle ----------------------------------------------

    def on_trigger(self, firing: TriggerFiring) -> List[ControlAction]:
        """Handle one trigger firing: match, resolve, actuate.

        Runtime conflict resolution: among matching rules, group by
        (actuator, exclusive group) and dispatch only the
        highest-priority command per group (ties broken by rule id for
        determinism — install-time checks prevent contradictory ties).
        """
        matching = [rule for rule in self._rules.values() if rule.matches(firing)]
        winners: Dict[tuple, ControlRule] = {}
        for rule in matching:
            slot = (rule.target_actuator, rule.exclusive_group or rule.rule_id)
            current = winners.get(slot)
            if (
                current is None
                or rule.priority > current.priority
                or (
                    rule.priority == current.priority
                    and rule.rule_id < current.rule_id
                )
            ):
                winners[slot] = rule
        actions: List[ControlAction] = []
        for rule in winners.values():
            actuated_at = firing.time + ACTUATION_DELAY_S
            self.actuator(rule.target_actuator).actuate(
                command=rule.command,
                issued_at=firing.time,
                received_at=actuated_at,
                source=rule.rule_id,
            )
            action = ControlAction(
                rule_id=rule.rule_id,
                command=rule.command,
                actuator_id=rule.target_actuator,
                triggered_by=firing.trigger_id,
                fired_at=firing.time,
                actuated_at=actuated_at,
            )
            self.actions.append(action)
            actions.append(action)
        return actions

"""The Manager: the architecture's control plane (Figure 3b).

The Manager knows every data store, tracks the resources they and the
network consume, and turns application requirements into installed,
configured aggregators:

    "The manager then uses this information to decide (a) what data
    should be kept from which sensors (b) what computing primitive
    should be installed, (c) how the computing primitives should be
    configured and (d) what analytics is deployed within the
    infrastructure."

It also owns the access records that drive adaptive replication
(Section VII): every remote access observed on a partition is forwarded
to the replication engine, closing the Figure 6 loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.control.requirements import ApplicationRequirement
from repro.core.registry import PrimitiveRegistry, default_registry
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator, match_all, prefix_filter
from repro.datastore.store import DataStore
from repro.errors import PlacementError
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import Hierarchy
from repro.replication.engine import AdaptiveReplicationEngine


@dataclass(frozen=True)
class StoreStatus:
    """Resource snapshot of one data store."""

    location: str
    aggregators: int
    partitions: int
    stored_bytes: int
    storage_pressure: float
    items_ingested: int


class Manager:
    """Installs, configures, and adapts the whole architecture."""

    def __init__(
        self,
        hierarchy: Optional[Hierarchy] = None,
        fabric: Optional[NetworkFabric] = None,
        registry: Optional[PrimitiveRegistry] = None,
        require_authorization: bool = False,
    ) -> None:
        self.hierarchy = hierarchy
        self.fabric = fabric
        self.registry = registry or default_registry()
        #: Section III.C: "requiring authorization prior to interaction
        #: with the manager".  When enabled, mutating calls need an
        #: AuthorizationContext holding the right role.
        self.require_authorization = require_authorization
        self._stores: Dict[str, DataStore] = {}
        self._requirements: List[ApplicationRequirement] = []
        #: aggregator installations per requirement, for withdrawal
        self._installed: Dict[str, List[tuple]] = {}
        self.replication_engine: Optional[AdaptiveReplicationEngine] = None

    # -- store registry ---------------------------------------------------

    def register_store(self, store: DataStore) -> None:
        """Make a data store known to the control plane."""
        self._stores[store.location.path] = store

    def deregister_store(self, path: str) -> Optional[DataStore]:
        """Forget the store registered at a path (reconfiguration).

        Returns the store that was registered there, or ``None``.  Used
        by the elastic topology ops when a site leaves or a store's
        location path is rewritten by a reparenting migration.
        """
        return self._stores.pop(path, None)

    def store_at(self, location: Location) -> DataStore:
        """The store at exactly this location."""
        try:
            return self._stores[location.path]
        except KeyError as exc:
            raise PlacementError(
                f"no data store registered at {location.path!r}"
            ) from exc

    def stores(self) -> List[DataStore]:
        """All registered stores."""
        return list(self._stores.values())

    def covering_store(self, location: Location) -> DataStore:
        """The store at ``location`` or the nearest registered ancestor.

        This is the placement rule: aggregation happens as close to the
        data as the deployed stores allow.
        """
        probe: Optional[Location] = location
        while probe is not None:
            store = self._stores.get(probe.path)
            if store is not None:
                return store
            probe = probe.parent
        raise PlacementError(
            f"no data store covers location {location.path!r}"
        )

    # -- requirements → installations ---------------------------------------

    def _authorize(self, context, role: str) -> None:
        if not self.require_authorization:
            return
        from repro.datastore.privacy import PrivacyViolation

        if context is None:
            raise PrivacyViolation(
                f"manager requires authorization (role {role!r}) but no "
                "context was given"
            )
        context.require(role)

    def submit_requirement(
        self, requirement: ApplicationRequirement, context=None
    ) -> Aggregator:
        """Install (or reuse) an aggregator satisfying a requirement."""
        self._authorize(context, "deploy")
        store = self.covering_store(requirement.location)
        existing = None
        try:
            existing = store.aggregator(requirement.aggregator_name)
        except Exception:
            existing = None
        if existing is not None:
            if existing.primitive.kind != requirement.kind:
                raise PlacementError(
                    f"aggregator {requirement.aggregator_name!r} exists at "
                    f"{store.location.path!r} with kind "
                    f"{existing.primitive.kind!r}, requirement wants "
                    f"{requirement.kind!r}"
                )
            aggregator = existing
        else:
            primitive = self.registry.create(
                requirement.kind,
                store.location,
                requirement.effective_config(),
            )
            stream_filter = (
                prefix_filter(requirement.stream_prefix)
                if requirement.stream_prefix
                else match_all
            )
            aggregator = Aggregator(
                requirement.aggregator_name,
                primitive,
                stream_filter=stream_filter,
                item_of=requirement.config.get("item_of"),
            )
            store.install_aggregator(aggregator)
        self._requirements.append(requirement)
        self._installed.setdefault(requirement.app_name, []).append(
            (store.location.path, requirement.aggregator_name)
        )
        return aggregator

    def withdraw_application(self, app_name: str, context=None) -> int:
        """Remove aggregators installed solely for one application.

        An aggregator still required by another application stays.
        Returns how many aggregators were removed.
        """
        self._authorize(context, "deploy")
        mine = self._installed.pop(app_name, [])
        self._requirements = [
            r for r in self._requirements if r.app_name != app_name
        ]
        still_needed = {
            (self.covering_store(r.location).location.path, r.aggregator_name)
            for r in self._requirements
        }
        removed = 0
        for store_path, aggregator_name in mine:
            if (store_path, aggregator_name) in still_needed:
                continue
            store = self._stores.get(store_path)
            if store is None:
                continue
            try:
                store.remove_aggregator(aggregator_name)
                removed += 1
            except Exception:
                pass
        return removed

    def requirements(self) -> List[ApplicationRequirement]:
        """All active requirements."""
        return list(self._requirements)

    # -- precision control -----------------------------------------------

    def retune(
        self,
        location: Location,
        aggregator_name: str,
        precision: float,
        context=None,
    ) -> None:
        """Change an installed aggregator's granularity on demand."""
        self._authorize(context, "operate")
        store = self.covering_store(location)
        store.aggregator(aggregator_name).primitive.set_granularity(precision)

    # -- epochs and adaptation ---------------------------------------------

    def close_epochs(self, now: float) -> int:
        """Close the epoch on every store; returns partitions created.

        Stores compute per-aggregator adaptation feedback themselves
        (storage pressure, rates) during the close.
        """
        created = 0
        for store in self._stores.values():
            created += len(store.close_epoch(now))
        return created

    # -- replication (Figure 6 integration) ---------------------------------

    def enable_adaptive_replication(
        self, engine: AdaptiveReplicationEngine
    ) -> None:
        """Attach the replication engine that access records feed."""
        self.replication_engine = engine

    def record_remote_access(
        self,
        producer: DataStore,
        consumer: DataStore,
        partition_id: str,
        result_bytes: int,
        now: float,
    ) -> bool:
        """Fig. 6 step 1-2: record the access, maybe start replication."""
        if self.replication_engine is None:
            return False
        return self.replication_engine.on_remote_access(
            producer, consumer, partition_id, result_bytes, now
        )

    # -- observability ------------------------------------------------------

    def status(self) -> List[StoreStatus]:
        """Resource snapshot across all stores."""
        return [
            StoreStatus(
                location=store.location.path,
                aggregators=len(store.aggregators()),
                partitions=len(store.catalog),
                stored_bytes=store.catalog.total_bytes(),
                storage_pressure=store.storage_pressure(),
                items_ingested=store.ingest_stats.items,
            )
            for store in self._stores.values()
        ]

    def network_bytes(self) -> int:
        """Total bytes carried by the fabric so far."""
        return self.fabric.total_bytes() if self.fabric else 0

"""Controllers and the Manager (Figure 3).

* :mod:`repro.control.rules` / :mod:`repro.control.controller` — the
  local control logic: applications install rules (checked for
  conflicts, optionally required to be certified); trigger firings from
  the data store activate matching rules, which actuate machines within
  the level's deadline.  This is the fast "Control Cycle" of Fig. 3a.
* :mod:`repro.control.requirements` / :mod:`repro.control.manager` —
  the control plane of Fig. 3b: applications state *what* they need
  (data source, aggregation format, precision); the Manager decides
  what primitives to install where, configures them, tracks resources,
  and re-tunes granularity as needs and rates change.  This is the slow
  "Adaptive Cycle".
"""

from repro.control.rules import ControlRule
from repro.control.controller import Controller, ControlAction
from repro.control.requirements import ApplicationRequirement
from repro.control.manager import Manager, StoreStatus

__all__ = [
    "ControlRule",
    "Controller",
    "ControlAction",
    "ApplicationRequirement",
    "Manager",
    "StoreStatus",
]

"""Control rules: what a controller does when a trigger fires.

A rule binds a trigger pattern to an actuation command.  Rules carry a
priority and an optional *exclusive group*: within one group, only one
command may win per actuator — the controller uses this both to detect
install-time conflicts ("two applications demand contradictory commands
with equal priority") and to resolve runtime races by priority, which
is the paper's "conflicts between rules are resolved locally at the
controller".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.datastore.triggers import TriggerFiring

RuleCondition = Callable[[TriggerFiring], bool]


def _always(firing: TriggerFiring) -> bool:
    return True


@dataclass
class ControlRule:
    """One installed controller rule."""

    rule_id: str
    command: str
    target_actuator: str
    trigger_id: Optional[str] = None
    condition: RuleCondition = field(default=_always)
    priority: int = 0
    exclusive_group: Optional[str] = None
    installed_by: str = "unknown"
    certified: bool = False

    def matches(self, firing: TriggerFiring) -> bool:
        """Whether this rule reacts to the given firing."""
        if self.trigger_id is not None and self.trigger_id != firing.trigger_id:
            return False
        return self.condition(firing)

    def conflicts_with(self, other: "ControlRule") -> bool:
        """Install-time conflict: same actuator and exclusive group,
        equal priority, but contradictory commands — no deterministic
        winner would exist at runtime."""
        return (
            self.exclusive_group is not None
            and self.exclusive_group == other.exclusive_group
            and self.target_actuator == other.target_actuator
            and self.priority == other.priority
            and self.command != other.command
        )

"""Application requirements: what apps tell the Manager (Figure 3b).

"For each application, it records the application requirements in terms
of the required data source and aggregation format (e.g., sample or
histogram) and the required precision (e.g., sample rate or bin size)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.summary import Location


@dataclass(frozen=True)
class ApplicationRequirement:
    """One application's demand for aggregated data.

    ``kind`` names a registered computing primitive ("sample",
    "timebin", "flowtree", …); ``config`` parameterizes it;
    ``precision`` is the kind-specific granularity the application needs
    (sampling rate, bin seconds, node budget) and overrides the config
    default when given.  ``stream_prefix`` narrows the subscription to
    matching stream ids.
    """

    app_name: str
    aggregator_name: str
    kind: str
    location: Location
    config: Dict[str, Any] = field(default_factory=dict)
    precision: Optional[float] = None
    stream_prefix: Optional[str] = None

    def effective_config(self) -> Dict[str, Any]:
        """The primitive config with precision folded in."""
        config = dict(self.config)
        if self.precision is None:
            return config
        # map the generic precision knob to each kind's natural parameter
        knob = {
            "sample": "rate",
            "timebin": "bin_seconds",
            "heavy_hitter": "capacity",
            "count_min": "width",
            "reservoir": "capacity",
            "flowtree": "node_budget",
            "hhh": "capacity_per_level",
        }.get(self.kind)
        if knob is not None:
            config[knob] = (
                self.precision
                if self.kind in ("sample", "timebin")
                else int(self.precision)
            )
        return config

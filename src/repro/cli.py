"""Command-line interface.

Six subcommands mirror the example scripts in scriptable form::

    repro flowql --epochs 3 --query "SELECT TOPK(5) FROM ALL BY bytes"
    repro query --preset network --query "SELECT TOTAL FROM ALL"
    repro run --faults "drop=0.2,seed=7" --epochs 4
    repro run --data-dir /tmp/flowdb --faults "restart=cloud:1"
    repro segments /tmp/flowdb
    repro factory --hours 6 --no-apps
    repro replication --partitions 400 --distribution pareto
    repro metrics --faults "drop=0.3,seed=7" --format prometheus

Run ``repro <subcommand> --help`` for the full flag set.  Everything is
deterministic per ``--seed`` (and, for fault plans, per the plan's own
seed).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed mega-datasets reproduction: Flowstream/FlowQL, "
            "the smart-factory loop, and adaptive replication."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    flowql = subparsers.add_parser(
        "flowql", help="load synthetic traffic and run FlowQL queries"
    )
    flowql.add_argument(
        "--sites", nargs="+",
        default=["region1/router1", "region2/router1"],
        help="router sites (region/router paths)",
    )
    flowql.add_argument("--epochs", type=int, default=3)
    flowql.add_argument("--flows-per-epoch", type=int, default=1500)
    flowql.add_argument("--seed", type=int, default=42)
    flowql.add_argument("--node-budget", type=int, default=4096)
    flowql.add_argument(
        "--query", action="append", default=None,
        help="FlowQL text (repeatable); default runs a small demo set",
    )
    flowql.add_argument(
        "--save", metavar="PATH", default=None,
        help="persist the loaded FlowDB to a JSON file",
    )

    factory = subparsers.add_parser(
        "factory", help="run the smart-factory scenario"
    )
    factory.add_argument("--hours", type=float, default=6.0)
    factory.add_argument("--lines", type=int, default=2)
    factory.add_argument("--machines-per-line", type=int, default=3)
    factory.add_argument("--seed", type=int, default=17)
    factory.add_argument(
        "--no-apps", action="store_true",
        help="disable predictive maintenance (baseline run)",
    )

    query = subparsers.add_parser(
        "query", help="route FlowQL through the federated query planner"
    )
    query.add_argument(
        "--preset", choices=("network", "factory"), default="network",
        help="4-level hierarchy preset to build",
    )
    query.add_argument("--epochs", type=int, default=2)
    query.add_argument("--flows-per-epoch", type=int, default=800)
    query.add_argument("--seed", type=int, default=42)
    query.add_argument(
        "--query", action="append", default=None,
        help=(
            "FlowQL text (repeatable); default demos cloud routing and "
            "an edge drilldown"
        ),
    )
    query.add_argument(
        "--repeat", type=int, default=2,
        help="times each query is issued (repeats show cache hits)",
    )
    query.add_argument(
        "--no-retain", action="store_true",
        help="drop interior epoch partitions (disables edge drilldown)",
    )

    run = subparsers.add_parser(
        "run",
        help="drive a 4-level rollup, optionally under a fault plan",
    )
    run.add_argument(
        "--preset", choices=("network", "factory"), default="network",
        help="4-level hierarchy preset to build",
    )
    run.add_argument("--epochs", type=int, default=4)
    run.add_argument("--flows-per-epoch", type=int, default=800)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument(
        "--faults", metavar="SPEC", default=None,
        help=(
            "fault plan spec, e.g. "
            "'drop=0.2,seed=7,outage=region1/router1:1-2,bw=0.5'"
        ),
    )
    run.add_argument(
        "--recovery-epochs", type=int, default=3,
        help="extra empty epoch closes to drain parked exports",
    )
    run.add_argument(
        "--query", action="append", default=None,
        help="FlowQL text to run after the rollup (repeatable)",
    )
    run.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help=(
            "shard edge ingest across N worker processes "
            "(0 = serial in-process ingest)"
        ),
    )
    run.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help=(
            "durable storage: seal each epoch into an on-disk segment "
            "log under DIR and recover from it when DIR already holds "
            "a manifest (default: in-memory engine)"
        ),
    )

    segments = subparsers.add_parser(
        "segments",
        help="print the segment census of a durable data directory",
    )
    segments.add_argument(
        "data_dir", metavar="DIR",
        help="data directory written by 'repro run --data-dir DIR'",
    )
    segments.add_argument(
        "--compact", action="store_true",
        help="compact the segment log before printing the census",
    )

    metrics = subparsers.add_parser(
        "metrics",
        help=(
            "drive a rollup (optionally under faults) and emit the "
            "observability exposition"
        ),
    )
    metrics.add_argument(
        "--preset", choices=("network", "factory"), default="network",
        help="4-level hierarchy preset to build",
    )
    metrics.add_argument("--epochs", type=int, default=3)
    metrics.add_argument("--flows-per-epoch", type=int, default=500)
    metrics.add_argument("--seed", type=int, default=42)
    metrics.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault plan spec, e.g. 'drop=0.3,seed=7'",
    )
    metrics.add_argument(
        "--recovery-epochs", type=int, default=3,
        help="extra empty epoch closes to drain parked exports",
    )
    metrics.add_argument(
        "--query", action="append", default=None,
        help=(
            "FlowQL text run twice after the rollup (repeatable; the "
            "repeat exercises the query cache)"
        ),
    )
    metrics.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="exposition format to print",
    )
    metrics.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="also print the last N span trees (0 = none)",
    )

    topology = subparsers.add_parser(
        "topology",
        help=(
            "drive a rollup (optionally with reconfig drills) and print "
            "the live topology census"
        ),
    )
    topology.add_argument(
        "--preset", choices=("network", "factory"), default="network",
        help="4-level hierarchy preset to build",
    )
    topology.add_argument("--epochs", type=int, default=2)
    topology.add_argument("--flows-per-epoch", type=int, default=500)
    topology.add_argument("--seed", type=int, default=42)
    topology.add_argument(
        "--faults", metavar="SPEC", default=None,
        help=(
            "fault plan spec; reconfig drills reshape the topology "
            "live, e.g. 'reconfig=leave:network1/region1/router2:0'"
        ),
    )
    topology.add_argument(
        "--adaptive-budgets", action="store_true",
        help="let the controller resize node budgets from pressure",
    )

    replication = subparsers.add_parser(
        "replication", help="compare replication policies on a trace"
    )
    replication.add_argument("--partitions", type=int, default=400)
    replication.add_argument(
        "--partition-mb", type=float, default=10.0,
        help="replication cost per partition in MB",
    )
    replication.add_argument("--mean-result-mb", type=float, default=1.0)
    replication.add_argument(
        "--distribution", choices=("pareto", "geometric", "lognormal"),
        default="pareto",
    )
    replication.add_argument("--seed", type=int, default=3)
    return parser


# ---------------------------------------------------------------------------
# flowql


def _run_flowql(args: argparse.Namespace) -> int:
    from repro.flowstream.system import Flowstream
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    system = Flowstream(sites=args.sites, node_budget=args.node_budget)
    generator = TrafficGenerator(
        TrafficConfig(
            sites=tuple(args.sites), flows_per_epoch=args.flows_per_epoch
        ),
        seed=args.seed,
    )
    for epoch in range(args.epochs):
        for site in args.sites:
            system.ingest(site, generator.epoch(site, epoch))
        system.close_epoch((epoch + 1) * 60.0)
    print(
        f"loaded {args.epochs} epochs x {len(args.sites)} sites "
        f"({system.stats.raw_records:,} flows, reduction "
        f"{system.stats.reduction_factor:.0f}x)"
    )
    queries = args.query or [
        "SELECT TOTAL FROM ALL",
        "SELECT TOPK(5) FROM ALL BY bytes",
        "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes LIMIT 5",
    ]
    for text in queries:
        print(f"\nflowql> {text}")
        try:
            result = system.query(text)
        except ReproError as error:
            print(f"  error: {error}")
            return 1
        if result.scalar is not None:
            print(f"  {result.scalar}")
        else:
            for row in result.rows[:20]:
                print(f"  {row[0]}  packets={row[1]:,} bytes={row[2]:,}")
    if args.save:
        from repro.flowdb.persistence import save_flowdb

        written = save_flowdb(system.db, args.save)
        print(f"\nsaved {written} summaries to {args.save}")
    return 0


# ---------------------------------------------------------------------------
# query (federated planner)


def _run_query(args: argparse.Namespace) -> int:
    from repro.replication.engine import AdaptiveReplicationEngine
    from repro.replication.ski_rental import BreakEvenPolicy
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    retain = not args.no_retain
    if args.preset == "network":
        runtime = network_4level_runtime(retain_partitions=retain)
    else:
        runtime = factory_4level_runtime(retain_partitions=retain)
    runtime.manager.enable_adaptive_replication(
        AdaptiveReplicationEngine(BreakEvenPolicy())
    )
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(
            sites=tuple(sites), flows_per_epoch=args.flows_per_epoch
        ),
        seed=args.seed,
    )
    for epoch in range(args.epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * 60.0)
    print(
        f"{args.preset} preset: {args.epochs} epochs x {len(sites)} edge "
        f"sites, FlowDB locations: {', '.join(runtime.db.locations())}"
    )
    queries = args.query or [
        "SELECT TOTAL FROM ALL",
        f"SELECT TOPK(3) FROM ALL AT {sites[0]} BY bytes",
    ]
    for text in queries:
        print(f"\nflowql> {text}")
        result = None
        for _ in range(max(1, args.repeat)):
            try:
                result = runtime.query(text)
            except ReproError as error:
                print(f"  error: {error}")
                return 1
            print(f"  plan: {runtime.planner.last_plan.describe()}")
        if result.scalar is not None:
            print(f"  {result.scalar}")
        else:
            for row in result.rows[:10]:
                print(f"  {row[0]}  packets={row[1]:,} bytes={row[2]:,}")
    stats = runtime.stats
    cache = runtime.planner.cache
    engine = runtime.manager.replication_engine
    print(
        f"\nrouting: cloud={stats.queries_cloud} "
        f"federated={stats.queries_federated} "
        f"cached={stats.queries_cached} | cache hits={cache.hits} "
        f"misses={cache.misses} | replications={len(engine.outcomes)} | "
        f"wan={runtime.wan_bytes():,} B"
    )
    return 0


# ---------------------------------------------------------------------------
# run (rollup under faults)


def _run_run(args: argparse.Namespace) -> int:
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )

    parallel = args.workers if args.workers > 0 else None
    storage = None
    if args.data_dir:
        from repro.storage import SegmentLogEngine

        storage = SegmentLogEngine(args.data_dir)
    preset = (
        network_4level_runtime
        if args.preset == "network"
        else factory_4level_runtime
    )
    runtime = preset(
        retain_partitions=True, parallel=parallel, storage=storage
    )
    if storage is not None:
        if runtime._recoveries:
            print(
                f"recovered from {args.data_dir}: "
                f"{runtime._recovered_records} summaries, "
                f"epoch {runtime.stats.epochs_closed}"
            )
        else:
            print(f"durable storage: segment log at {args.data_dir}")
    try:
        return _drive_run(args, runtime)
    finally:
        runtime.shutdown()


def _drive_run(args: argparse.Namespace, runtime) -> int:
    from repro.faults import FaultPlan
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    if args.faults:
        try:
            plan = FaultPlan.from_spec(args.faults)
        except ReproError as error:
            print(f"error: {error}")
            return 2
        runtime.inject_faults(plan)
        print(f"fault plan: {plan.describe()}")
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(
            sites=tuple(sites), flows_per_epoch=args.flows_per_epoch
        ),
        seed=args.seed,
    )
    epoch_s = runtime.epoch_seconds
    for epoch in range(args.epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        exported = runtime.close_epoch((epoch + 1) * epoch_s)
        pending = runtime.pending_exports()
        print(
            f"epoch {epoch}: exported={exported} "
            f"pending={pending} wan={runtime.wan_bytes():,} B"
        )
    recovery = 0
    while runtime.pending_exports() and recovery < args.recovery_epochs:
        recovery += 1
        runtime.close_epoch((args.epochs + recovery) * epoch_s)
        print(
            f"recovery close {recovery}: "
            f"pending={runtime.pending_exports()}"
        )
    for text in args.query or []:
        print(f"\nflowql> {text}")
        try:
            outcome = runtime.query(text)
        except ReproError as error:
            print(f"  error: {error}")
            return 1
        print(f"  plan: {outcome.plan.describe()}")
        if outcome.is_degraded:
            print(f"  degraded: {outcome.degradation.describe()}")
        if outcome.scalar is not None:
            print(f"  {outcome.scalar}")
        else:
            for row in outcome.rows[:10]:
                print(f"  {row[0]}  packets={row[1]:,} bytes={row[2]:,}")
    stats = runtime.stats
    print(
        f"\nfault census: attempts={stats.transfer_attempts} "
        f"failures={stats.transfer_failures} "
        f"retried={stats.retried_bytes:,} B "
        f"wasted={runtime.fabric.wasted_bytes():,} B"
    )
    print(
        f"  exports: parked={stats.exports_parked} "
        f"recovered={stats.exports_recovered} "
        f"still-pending={runtime.pending_exports()} | "
        f"degraded queries={stats.queries_degraded}"
    )
    print(
        f"  volume: raw={stats.raw_bytes:,} B wan={runtime.wan_bytes():,} B "
        f"reduction={stats.reduction_factor:.0f}x"
    )
    if runtime._pool is not None:
        for ws in runtime._pool.worker_stats():
            print(
                f"  worker {ws.worker}: sites={','.join(ws.sites)} "
                f"records={ws.records_done:,} busy={ws.busy_seconds:.2f}s "
                f"restarts={ws.restarts} replayed={ws.replayed_batches}"
            )
    if runtime.engine.durable or runtime._restarts:
        storage = runtime.storage_stats()
        print(
            f"  storage[{storage['engine']}]: "
            f"records={storage['records']} "
            f"segments={storage['segments']} "
            f"({storage['segment_bytes']:,} B) "
            f"manifests={storage['manifest_writes']} "
            f"restarts={storage['restarts']}"
        )
    return 0 if runtime.pending_exports() == 0 else 1


# ---------------------------------------------------------------------------
# segments (durable storage census)


def _run_segments(args: argparse.Namespace) -> int:
    from repro.storage import SegmentLogEngine

    try:
        engine = SegmentLogEngine(args.data_dir)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    manifest = engine.read_manifest()
    if manifest is None:
        print(f"no manifest under {args.data_dir} (nothing sealed yet)")
        return 1
    if args.compact:
        outcome = engine.compact()
        print(
            f"compacted: removed {outcome['segments_removed']} segments, "
            f"reclaimed {outcome['reclaimed_bytes']:,} B"
        )
    stats = engine.stats()
    print(
        f"segment log at {args.data_dir}: {stats['records']} records in "
        f"{stats['segments']} segments ({stats['segment_bytes']:,} B)"
    )
    print(
        f"  manifest: epoch {manifest.get('epochs_closed', 0)}, "
        f"generation {manifest.get('generation', 0)}, "
        f"{len(manifest.get('pending', {}))} pending queues"
    )
    if stats.get("orphan_segments"):
        print(f"  orphan segments ignored: {stats['orphan_segments']}")
    print(f"  {'segment':<16}{'epoch':>7}{'records':>9}{'bytes':>12}")
    for row in engine.segments():
        shards = row.get("shards")
        extra = (
            "  shards=" + ",".join(
                f"{site}:{items}" for site, items in sorted(shards.items())
            )
            if shards
            else ""
        )
        compacted = "  (compacted)" if row.get("compacted") else ""
        print(
            f"  {row['file']:<16}{row.get('epoch', '-'):>7}"
            f"{row['records']:>9}{row['bytes']:>12,}{extra}{compacted}"
        )
    return 0


# ---------------------------------------------------------------------------
# metrics (observability exposition)


def _run_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.faults import FaultPlan
    from repro.obs import render_prometheus
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    if args.preset == "network":
        runtime = network_4level_runtime(retain_partitions=True)
    else:
        runtime = factory_4level_runtime(retain_partitions=True)
    if args.faults:
        try:
            runtime.inject_faults(FaultPlan.from_spec(args.faults))
        except ReproError as error:
            print(f"error: {error}")
            return 2
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(
            sites=tuple(sites), flows_per_epoch=args.flows_per_epoch
        ),
        seed=args.seed,
    )
    epoch_s = runtime.epoch_seconds
    for epoch in range(args.epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * epoch_s)
    recovery = 0
    while runtime.pending_exports() and recovery < args.recovery_epochs:
        recovery += 1
        runtime.close_epoch((args.epochs + recovery) * epoch_s)
    for text in args.query or []:
        # twice each: the repeat turns a miss into a cache hit
        for _ in range(2):
            try:
                runtime.query(text)
            except ReproError as error:
                print(f"error: {error}")
                return 1
    if args.format == "json":
        print(json.dumps(runtime.obs.registry.snapshot(), indent=2))
    else:
        print(render_prometheus(runtime.obs.registry), end="")
    if args.traces > 0:
        for root in runtime.obs.tracer.traces()[-args.traces:]:
            print()
            print(root.render())
    return 0


# ---------------------------------------------------------------------------
# factory


def _run_factory(args: argparse.Namespace) -> int:
    from repro.scenarios.factory import FactoryScenario

    with_apps = not args.no_apps
    scenario = FactoryScenario(
        lines=args.lines,
        machines_per_line=args.machines_per_line,
        seed=args.seed,
        with_maintenance=with_apps,
    )
    outcome = scenario.run(hours=args.hours)
    print(
        f"simulated {args.hours:g} h, {outcome.machines} machines "
        f"({'with' if with_apps else 'without'} predictive maintenance)"
    )
    print(f"  failures: {len(outcome.failures)}/{outcome.machines}")
    for machine_id, failed_at in outcome.failures:
        print(f"    {machine_id} at t={failed_at/3600:.1f} h")
    if with_apps:
        print(f"  maintenance actions: {len(outcome.maintenance_decisions)}")
    print(f"  emergency stops: {outcome.emergency_stops}")
    print(f"  stored partitions: {outcome.partitions_stored} "
          f"({outcome.stored_bytes:,} B)")
    return 0 if (not with_apps or not outcome.failures) else 1


# ---------------------------------------------------------------------------
# topology (live census)


def _run_topology(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    if args.preset == "network":
        runtime = network_4level_runtime(retain_partitions=True)
    else:
        runtime = factory_4level_runtime(retain_partitions=True)
    try:
        if args.faults:
            try:
                plan = FaultPlan.from_spec(args.faults)
            except ReproError as error:
                print(f"error: {error}")
                return 2
            runtime.inject_faults(plan)
            print(f"fault plan: {plan.describe()}")
        if args.adaptive_budgets:
            runtime.enable_adaptive_budgets()
        generator = TrafficGenerator(
            TrafficConfig(
                sites=tuple(runtime.ingest_sites()),
                flows_per_epoch=args.flows_per_epoch,
            ),
            seed=args.seed,
        )
        epoch_s = runtime.epoch_seconds
        for epoch in range(args.epochs):
            # re-read the site list each epoch: reconfig drills may
            # have added, removed, or renamed sites at the last close
            for site in runtime.ingest_sites():
                try:
                    records = generator.epoch(site, epoch)
                except (ReproError, KeyError):
                    continue  # site joined after the trace was drawn
                runtime.ingest(site, records)
            try:
                runtime.close_epoch((epoch + 1) * epoch_s)
            except ReproError as error:
                print(f"error: reconfig drill failed: {error}")
                return 1
        census = runtime.model.census()
        print(f"\ntopology census (root {census['root']!r})")
        print(f"  generation: {census['generation']}")
        print(f"  {'level':<12}{'nodes':>7}{'budget':>10}{'deadline':>10}")
        for row in census["levels"]:
            budget = row["node_budget"]
            deadline = row["deadline_seconds"]
            print(
                f"  {row['level']:<12}{row['nodes']:>7}"
                f"{budget if budget is not None else '-':>10}"
                f"{f'{deadline:g}s' if deadline is not None else '-':>10}"
            )
        if census["op_counts"]:
            ops = ", ".join(
                f"{op}={count}"
                for op, count in sorted(census["op_counts"].items())
            )
            print(f"  reconfig ops: {ops}")
        pending = census["pending_migrations"]
        print(
            f"  migrated: {census['migrated_bytes']:,} B in "
            f"{census['migrated_summaries']} summaries | "
            f"pending migrations: {len(pending)}"
        )
        for entry in pending:
            print(
                f"    {entry['op']}: {entry['origin']} -> "
                f"{entry['target']} ({entry['size_bytes']:,} B)"
            )
        tuner = runtime._budget_tuner
        if tuner is not None and tuner.decisions:
            print("  budget decisions:")
            for decision in tuner.decisions:
                print(
                    f"    {decision.level}: {decision.old_budget} -> "
                    f"{decision.new_budget} (pressure="
                    f"{decision.pressure:.1f} fullness="
                    f"{decision.fullness:.2f})"
                )
        return 0
    finally:
        runtime.shutdown()


# ---------------------------------------------------------------------------
# replication


def _run_replication(args: argparse.Namespace) -> int:
    from repro.replication.engine import (
        offline_optimal_cost,
        simulate_policy_on_trace,
    )
    from repro.replication.ski_rental import default_policies
    from repro.simulation.querytrace import (
        QueryTraceConfig,
        QueryTraceGenerator,
    )

    partition_bytes = int(args.partition_mb * 1e6)
    config = QueryTraceConfig(
        partitions=args.partitions,
        partition_bytes=partition_bytes,
        mean_result_bytes=int(args.mean_result_mb * 1e6),
        run_length_distribution=args.distribution,
        run_length_param={"pareto": 1.3, "geometric": 1.0,
                          "lognormal": 1.0}[args.distribution],
    )
    trace = QueryTraceGenerator(config, seed=args.seed).trace()
    optimal = offline_optimal_cost(trace, partition_bytes)
    print(
        f"{args.distribution} trace: {len(trace)} accesses over "
        f"{args.partitions} partitions, offline OPT = {optimal/1e6:.0f} MB"
    )
    print(f"  {'policy':<22}{'network':>12}{'vs OPT':>9}{'replications':>14}")
    for policy in default_policies(seed=args.seed):
        costs = simulate_policy_on_trace(trace, policy, partition_bytes)
        print(
            f"  {costs.policy:<22}{costs.total_bytes/1e6:>10.0f}MB"
            f"{costs.competitive_ratio(optimal):>9.3f}"
            f"{costs.replications:>14}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "flowql":
        return _run_flowql(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "run":
        return _run_run(args)
    if args.command == "factory":
        return _run_factory(args)
    if args.command == "metrics":
        return _run_metrics(args)
    if args.command == "replication":
        return _run_replication(args)
    if args.command == "topology":
        return _run_topology(args)
    if args.command == "segments":
        return _run_segments(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())

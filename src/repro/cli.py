"""Command-line interface.

Nine subcommands mirror the example scripts in scriptable form::

    repro flowql --epochs 3 --query "SELECT TOPK(5) FROM ALL BY bytes"
    repro query --preset network --query "SELECT TOTAL FROM ALL"
    repro query --endpoint http://127.0.0.1:8080 --query "SELECT TOTAL FROM ALL"
    repro run --faults "drop=0.2,seed=7" --epochs 4
    repro run --data-dir /tmp/flowdb --faults "restart=cloud:1"
    repro serve --epochs 2 --smoke 8
    repro segments /tmp/flowdb
    repro factory --hours 6 --no-apps
    repro replication --partitions 400 --distribution pareto
    repro metrics --faults "drop=0.3,seed=7" --format prometheus

Run ``repro <subcommand> --help`` for the full flag set.  Everything is
deterministic per ``--seed`` (and, for fault plans, per the plan's own
seed).

Subcommands are registered declaratively: one
:class:`Subcommand` row in :data:`SUBCOMMANDS` names the command, its
help line, an argparse configurator, and a runner.  Adding a
subcommand means adding one row — not threading a new name through a
parser builder *and* a dispatch chain.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class Subcommand:
    """One declaratively-registered CLI subcommand."""

    name: str
    help: str
    #: installs the subcommand's arguments on its subparser
    configure: Callable[[argparse.ArgumentParser], None]
    #: executes the subcommand; returns the process exit code
    run: Callable[[argparse.Namespace], int]


# ---------------------------------------------------------------------------
# shared argument groups


def _add_drive_args(
    parser: argparse.ArgumentParser,
    epochs: int,
    flows_per_epoch: int,
    seed: int = 42,
) -> None:
    """The preset/epochs/flows/seed block every runtime driver shares."""
    parser.add_argument(
        "--preset", choices=("network", "factory"), default="network",
        help="4-level hierarchy preset to build",
    )
    parser.add_argument("--epochs", type=int, default=epochs)
    parser.add_argument(
        "--flows-per-epoch", type=int, default=flows_per_epoch
    )
    parser.add_argument("--seed", type=int, default=seed)


def _add_faults_arg(
    parser: argparse.ArgumentParser, example: str
) -> None:
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help=f"fault plan spec, e.g. {example!r}",
    )


def _add_query_arg(parser: argparse.ArgumentParser, extra: str) -> None:
    parser.add_argument(
        "--query", action="append", default=None,
        help=f"FlowQL text (repeatable); {extra}",
    )


def _load_traffic(runtime, epochs: int, flows_per_epoch: int, seed: int):
    """Drive ``epochs`` deterministic traffic epochs into a runtime."""
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(
            sites=tuple(sites), flows_per_epoch=flows_per_epoch
        ),
        seed=seed,
    )
    for epoch in range(epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * runtime.epoch_seconds)
    return sites


# ---------------------------------------------------------------------------
# flowql


def _configure_flowql(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sites", nargs="+",
        default=["region1/router1", "region2/router1"],
        help="router sites (region/router paths)",
    )
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--flows-per-epoch", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--node-budget", type=int, default=4096)
    _add_query_arg(parser, "default runs a small demo set")
    parser.add_argument(
        "--save", metavar="PATH", default=None,
        help="persist the loaded FlowDB to a JSON file",
    )


def _run_flowql(args: argparse.Namespace) -> int:
    from repro.flowstream.system import Flowstream
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    system = Flowstream(sites=args.sites, node_budget=args.node_budget)
    generator = TrafficGenerator(
        TrafficConfig(
            sites=tuple(args.sites), flows_per_epoch=args.flows_per_epoch
        ),
        seed=args.seed,
    )
    for epoch in range(args.epochs):
        for site in args.sites:
            system.ingest(site, generator.epoch(site, epoch))
        system.close_epoch((epoch + 1) * 60.0)
    print(
        f"loaded {args.epochs} epochs x {len(args.sites)} sites "
        f"({system.stats.raw_records:,} flows, reduction "
        f"{system.stats.reduction_factor:.0f}x)"
    )
    queries = args.query or [
        "SELECT TOTAL FROM ALL",
        "SELECT TOPK(5) FROM ALL BY bytes",
        "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes LIMIT 5",
    ]
    for text in queries:
        print(f"\nflowql> {text}")
        try:
            result = system.query(text)
        except ReproError as error:
            print(f"  error: {error}")
            return 1
        if result.scalar is not None:
            print(f"  {result.scalar}")
        else:
            for row in result.rows[:20]:
                print(f"  {row[0]}  packets={row[1]:,} bytes={row[2]:,}")
    if args.save:
        from repro.flowdb.persistence import save_flowdb

        written = save_flowdb(system.db, args.save)
        print(f"\nsaved {written} summaries to {args.save}")
    return 0


# ---------------------------------------------------------------------------
# query (federated planner / served endpoint, via the unified client)


def _configure_query(parser: argparse.ArgumentParser) -> None:
    _add_drive_args(parser, epochs=2, flows_per_epoch=800)
    _add_query_arg(
        parser, "default demos cloud routing and an edge drilldown"
    )
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="times each query is issued (repeats show cache hits)",
    )
    parser.add_argument(
        "--no-retain", action="store_true",
        help="drop interior epoch partitions (disables edge drilldown)",
    )
    parser.add_argument(
        "--endpoint", metavar="URL", default=None,
        help=(
            "query a running 'repro serve' gateway over HTTP instead "
            "of building a local runtime (the same FlowQLClient API "
            "either way)"
        ),
    )
    parser.add_argument(
        "--client-id", default="cli",
        help="client identity the gateway meters admission by",
    )


def _print_outcome(outcome, repeats_left: bool = False) -> None:
    print(f"  plan: {outcome.plan.describe()}")
    if outcome.is_degraded:
        print(f"  degraded: {outcome.degradation.describe()}")
        if outcome.degradation.attempted_paths:
            attempted = ", ".join(outcome.degradation.attempted_paths)
            print(f"  attempted: {attempted}")
    if repeats_left:
        return
    if outcome.scalar is not None:
        print(f"  {outcome.scalar}")
    else:
        for row in outcome.rows[:10]:
            print(f"  {row[0]}  packets={row[1]:,} bytes={row[2]:,}")


def _run_query_remote(args: argparse.Namespace) -> int:
    from repro.client import FlowQLClient
    from repro.errors import AdmissionError

    queries = args.query or ["SELECT TOTAL FROM ALL"]
    with FlowQLClient(
        endpoint=args.endpoint, client_id=args.client_id
    ) as client:
        for text in queries:
            print(f"\nflowql> {text}")
            for repeat in range(max(1, args.repeat)):
                try:
                    outcome = client.query(text)
                except AdmissionError as error:
                    print(
                        f"  rejected ({error.reason}): retry after "
                        f"{error.retry_after_s:.3f}s"
                    )
                    return 3
                except ReproError as error:
                    print(f"  error: {error}")
                    return 1
                _print_outcome(
                    outcome,
                    repeats_left=repeat + 1 < max(1, args.repeat),
                )
        health = client.health()
    print(
        f"\nserved by {args.endpoint}: routed="
        f"{health['requests_routed']} generation="
        f"{health['generation']} server_errors="
        f"{health['server_errors']}"
    )
    return 0


def _run_query(args: argparse.Namespace) -> int:
    if args.endpoint is not None:
        return _run_query_remote(args)

    from repro.client import FlowQLClient
    from repro.replication.engine import AdaptiveReplicationEngine
    from repro.replication.ski_rental import BreakEvenPolicy
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )

    retain = not args.no_retain
    if args.preset == "network":
        runtime = network_4level_runtime(retain_partitions=retain)
    else:
        runtime = factory_4level_runtime(retain_partitions=retain)
    runtime.manager.enable_adaptive_replication(
        AdaptiveReplicationEngine(BreakEvenPolicy())
    )
    sites = _load_traffic(
        runtime, args.epochs, args.flows_per_epoch, args.seed
    )
    print(
        f"{args.preset} preset: {args.epochs} epochs x {len(sites)} edge "
        f"sites, FlowDB locations: {', '.join(runtime.db.locations())}"
    )
    client = FlowQLClient(runtime=runtime, client_id=args.client_id)
    queries = args.query or [
        "SELECT TOTAL FROM ALL",
        f"SELECT TOPK(3) FROM ALL AT {sites[0]} BY bytes",
    ]
    for text in queries:
        print(f"\nflowql> {text}")
        outcome = None
        for _ in range(max(1, args.repeat)):
            try:
                outcome = client.query(text)
            except ReproError as error:
                print(f"  error: {error}")
                return 1
            print(f"  plan: {outcome.plan.describe()}")
        if outcome.scalar is not None:
            print(f"  {outcome.scalar}")
        else:
            for row in outcome.rows[:10]:
                print(f"  {row[0]}  packets={row[1]:,} bytes={row[2]:,}")
    stats = runtime.stats
    cache = runtime.planner.cache
    engine = runtime.manager.replication_engine
    print(
        f"\nrouting: cloud={stats.queries_cloud} "
        f"federated={stats.queries_federated} "
        f"cached={stats.queries_cached} | cache hits={cache.hits} "
        f"misses={cache.misses} | replications={len(engine.outcomes)} | "
        f"wan={runtime.wan_bytes():,} B"
    )
    return 0


# ---------------------------------------------------------------------------
# subscribe (standing queries)


def _configure_subscribe(parser: argparse.ArgumentParser) -> None:
    _add_drive_args(parser, epochs=4, flows_per_epoch=500)
    _add_query_arg(
        parser, "default subscribes an edge TOPK and the global TOTAL"
    )
    parser.add_argument(
        "--endpoint", metavar="URL", default=None,
        help=(
            "subscribe against a running 'repro serve' gateway over "
            "HTTP (long-poll) instead of a local runtime"
        ),
    )
    parser.add_argument(
        "--updates", type=int, default=4,
        help="updates to long-poll for per subscription (HTTP mode)",
    )
    parser.add_argument(
        "--client-id", default="cli",
        help="client identity the gateway meters admission by",
    )


def _print_update(update, text: str) -> None:
    tag = f"[{update.subscription_id} seq={update.seq} {update.mode}]"
    print(f"\n{tag} {text}")
    print(
        f"  epoch={update.epoch:g} shipped={update.shipped_bytes:,} B "
        f"changed={update.changed}"
        + (" DEGRADED" if update.degraded else "")
    )
    result = update.result
    if result.scalar is not None:
        print(f"  {result.scalar}")
    else:
        for row in result.rows[:5]:
            print(f"  {row[0]}  packets={row[1]:,} bytes={row[2]:,}")


def _run_subscribe_remote(args: argparse.Namespace) -> int:
    from repro.client import FlowQLClient
    from repro.errors import AdmissionError

    queries = args.query or ["SUBSCRIBE SELECT TOTAL FROM ALL"]
    with FlowQLClient(
        endpoint=args.endpoint, client_id=args.client_id
    ) as client:
        handles = []
        for text in queries:
            try:
                handle = client.subscribe(text)
            except AdmissionError as error:
                print(
                    f"  rejected ({error.reason}): retry after "
                    f"{error.retry_after_s:.3f}s"
                )
                return 3
            except ReproError as error:
                print(f"  error: {error}")
                return 1
            print(f"subscribed {handle.id}: {text}")
            handles.append((handle, text))
        for handle, text in handles:
            first = handle.latest()
            if first is not None:
                _print_update(first, text)
        seen = {handle.id: 0 for handle, _ in handles}
        while any(count < args.updates for count in seen.values()):
            progressed = False
            for handle, text in handles:
                if seen[handle.id] >= args.updates:
                    continue
                for update in handle.poll(wait_s=10.0):
                    _print_update(update, text)
                    seen[handle.id] += 1
                    progressed = True
            if not progressed:
                print(
                    "\nno updates within 10s (is the served runtime "
                    "closing epochs?)"
                )
                break
        for handle, _text in handles:
            handle.cancel()
    return 0


def _run_subscribe(args: argparse.Namespace) -> int:
    if args.endpoint is not None:
        return _run_subscribe_remote(args)

    from repro.client import FlowQLClient
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )

    if args.preset == "network":
        runtime = network_4level_runtime(retain_partitions=True)
    else:
        runtime = factory_4level_runtime(retain_partitions=True)
    sites = runtime.ingest_sites()
    client = FlowQLClient(runtime=runtime, client_id=args.client_id)
    queries = args.query or [
        "SUBSCRIBE SELECT TOTAL FROM ALL",
        f"SUBSCRIBE SELECT TOPK(3) FROM ALL AT {sites[0]} BY bytes",
    ]
    handles = []
    for text in queries:
        try:
            handle = client.subscribe(
                text, on_update=lambda u, t=text: _print_update(u, t)
            )
        except ReproError as error:
            print(f"error: {error}")
            return 1
        print(f"subscribed {handle.id}: {text}")
        handles.append(handle)
    print(
        f"\ndriving {args.epochs} epochs x {len(sites)} edge sites "
        f"({args.preset} preset); each close publishes one update per "
        "subscription:"
    )
    _load_traffic(runtime, args.epochs, args.flows_per_epoch, args.seed)
    registry = runtime.planner.subscriptions
    print(
        f"\nregistry: updates={registry.updates_published} "
        f"delta={registry.delta_refreshes} "
        f"rebuilds={registry.rebuilds} "
        f"shipped={registry.shipped_bytes_total:,} B "
        f"refresh={registry.refresh_seconds_total * 1e3:.1f} ms total"
    )
    for handle in handles:
        handle.cancel()
    return 0


# ---------------------------------------------------------------------------
# serve (the networked FlowQL serving plane)


def _configure_serve(parser: argparse.ArgumentParser) -> None:
    _add_drive_args(parser, epochs=2, flows_per_epoch=500)
    parser.add_argument(
        "--port", type=int, default=0,
        help="gateway TCP port (0 = ephemeral, printed at boot)",
    )
    parser.add_argument(
        "--rate", type=float, default=200.0,
        help="admission tokens per client per second",
    )
    parser.add_argument(
        "--burst", type=float, default=50.0,
        help="admission token-bucket burst ceiling",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64,
        help="per-node bounded request queue (full = HTTP 429)",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0,
        help="per-request deadline; overruns degrade to partial outcomes",
    )
    parser.add_argument(
        "--smoke", type=int, default=0, metavar="N",
        help="run N self-check queries through the gateway, then report",
    )
    parser.add_argument(
        "--duration", type=float, default=0.0, metavar="SECONDS",
        help="keep serving this long after boot (0 = exit after smoke)",
    )


def _run_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.client import FlowQLClient
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )
    from repro.serve import ServePlane

    preset = (
        network_4level_runtime
        if args.preset == "network"
        else factory_4level_runtime
    )
    runtime = preset(retain_partitions=True)
    sites = _load_traffic(
        runtime, args.epochs, args.flows_per_epoch, args.seed
    )
    plane = ServePlane(
        runtime,
        gateway_port=args.port,
        queue_limit=args.queue_limit,
        timeout_s=args.timeout,
        admission_rate_per_s=args.rate,
        admission_burst=args.burst,
    )
    try:
        with plane:
            endpoint = plane.start_background()
            print(
                f"serving {args.preset} preset at {endpoint} "
                f"({len(plane.nodes)} node servers, root "
                f"{plane.root_label!r})"
            )
            print(
                f"  admission: {args.rate:g}/s per client "
                f"(burst {args.burst:g}) | queue limit "
                f"{args.queue_limit} | timeout {args.timeout:g}s"
            )
            if args.smoke > 0:
                demo = [
                    "SELECT TOTAL FROM ALL",
                    f"SELECT TOPK(3) FROM ALL AT {sites[0]} BY bytes",
                ]
                latencies = []
                with FlowQLClient(
                    endpoint=endpoint, client_id="serve-smoke"
                ) as client:
                    for index in range(args.smoke):
                        text = demo[index % len(demo)]
                        started = _time.perf_counter()
                        try:
                            outcome = client.query(text)
                        except ReproError as error:
                            print(f"  smoke error: {error}")
                            return 1
                        latencies.append(
                            _time.perf_counter() - started
                        )
                        if outcome.is_degraded:
                            print(
                                "  smoke degraded: "
                                f"{outcome.degradation.describe()}"
                            )
                latencies.sort()
                print(
                    f"  smoke: {args.smoke} queries ok, p50 "
                    f"{latencies[len(latencies) // 2] * 1000:.2f} ms, "
                    f"max {latencies[-1] * 1000:.2f} ms"
                )
            if args.duration > 0:
                print(f"  serving for {args.duration:g}s ...")
                _time.sleep(args.duration)
            census = plane.census()
            print(
                f"  served: routed={census['requests_routed']} "
                f"admission rejected="
                f"{census['admission']['rejected']} "
                f"server_errors={census['server_errors']}"
            )
            return 0 if census["server_errors"] == 0 else 1
    finally:
        runtime.shutdown()


# ---------------------------------------------------------------------------
# run (rollup under faults)


def _configure_run(parser: argparse.ArgumentParser) -> None:
    _add_drive_args(parser, epochs=4, flows_per_epoch=800)
    _add_faults_arg(
        parser, "drop=0.2,seed=7,outage=region1/router1:1-2,bw=0.5"
    )
    parser.add_argument(
        "--recovery-epochs", type=int, default=3,
        help="extra empty epoch closes to drain parked exports",
    )
    _add_query_arg(parser, "run after the rollup")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help=(
            "shard edge ingest across N worker processes "
            "(0 = serial in-process ingest)"
        ),
    )
    parser.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help=(
            "durable storage: seal each epoch into an on-disk segment "
            "log under DIR and recover from it when DIR already holds "
            "a manifest (default: in-memory engine)"
        ),
    )


def _run_run(args: argparse.Namespace) -> int:
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )

    parallel = args.workers if args.workers > 0 else None
    storage = None
    if args.data_dir:
        from repro.storage import SegmentLogEngine

        storage = SegmentLogEngine(args.data_dir)
    preset = (
        network_4level_runtime
        if args.preset == "network"
        else factory_4level_runtime
    )
    runtime = preset(
        retain_partitions=True, parallel=parallel, storage=storage
    )
    if storage is not None:
        if runtime._recoveries:
            print(
                f"recovered from {args.data_dir}: "
                f"{runtime._recovered_records} summaries, "
                f"epoch {runtime.stats.epochs_closed}"
            )
        else:
            print(f"durable storage: segment log at {args.data_dir}")
    try:
        return _drive_run(args, runtime)
    finally:
        runtime.shutdown()


def _drive_run(args: argparse.Namespace, runtime) -> int:
    from repro.client import FlowQLClient
    from repro.faults import FaultPlan
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    if args.faults:
        try:
            plan = FaultPlan.from_spec(args.faults)
        except ReproError as error:
            print(f"error: {error}")
            return 2
        runtime.inject_faults(plan)
        print(f"fault plan: {plan.describe()}")
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(
            sites=tuple(sites), flows_per_epoch=args.flows_per_epoch
        ),
        seed=args.seed,
    )
    epoch_s = runtime.epoch_seconds
    for epoch in range(args.epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        exported = runtime.close_epoch((epoch + 1) * epoch_s)
        pending = runtime.pending_exports()
        print(
            f"epoch {epoch}: exported={exported} "
            f"pending={pending} wan={runtime.wan_bytes():,} B"
        )
    recovery = 0
    while runtime.pending_exports() and recovery < args.recovery_epochs:
        recovery += 1
        runtime.close_epoch((args.epochs + recovery) * epoch_s)
        print(
            f"recovery close {recovery}: "
            f"pending={runtime.pending_exports()}"
        )
    client = FlowQLClient(runtime=runtime, client_id="cli-run")
    for text in args.query or []:
        print(f"\nflowql> {text}")
        try:
            outcome = client.query(text)
        except ReproError as error:
            print(f"  error: {error}")
            return 1
        _print_outcome(outcome)
    stats = runtime.stats
    print(
        f"\nfault census: attempts={stats.transfer_attempts} "
        f"failures={stats.transfer_failures} "
        f"retried={stats.retried_bytes:,} B "
        f"wasted={runtime.fabric.wasted_bytes():,} B"
    )
    print(
        f"  exports: parked={stats.exports_parked} "
        f"recovered={stats.exports_recovered} "
        f"still-pending={runtime.pending_exports()} | "
        f"degraded queries={stats.queries_degraded}"
    )
    print(
        f"  volume: raw={stats.raw_bytes:,} B wan={runtime.wan_bytes():,} B "
        f"reduction={stats.reduction_factor:.0f}x"
    )
    if runtime._pool is not None:
        for ws in runtime._pool.worker_stats():
            print(
                f"  worker {ws.worker}: sites={','.join(ws.sites)} "
                f"records={ws.records_done:,} busy={ws.busy_seconds:.2f}s "
                f"restarts={ws.restarts} replayed={ws.replayed_batches}"
            )
    if runtime.engine.durable or runtime._restarts:
        storage = runtime.storage_stats()
        print(
            f"  storage[{storage['engine']}]: "
            f"records={storage['records']} "
            f"segments={storage['segments']} "
            f"({storage['segment_bytes']:,} B) "
            f"manifests={storage['manifest_writes']} "
            f"restarts={storage['restarts']}"
        )
    return 0 if runtime.pending_exports() == 0 else 1


# ---------------------------------------------------------------------------
# segments (durable storage census)


def _configure_segments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "data_dir", metavar="DIR",
        help="data directory written by 'repro run --data-dir DIR'",
    )
    parser.add_argument(
        "--compact", action="store_true",
        help="compact the segment log before printing the census",
    )


def _run_segments(args: argparse.Namespace) -> int:
    from repro.storage import SegmentLogEngine

    try:
        engine = SegmentLogEngine(args.data_dir)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    manifest = engine.read_manifest()
    if manifest is None:
        print(f"no manifest under {args.data_dir} (nothing sealed yet)")
        return 1
    if args.compact:
        outcome = engine.compact()
        print(
            f"compacted: removed {outcome['segments_removed']} segments, "
            f"reclaimed {outcome['reclaimed_bytes']:,} B"
        )
    stats = engine.stats()
    print(
        f"segment log at {args.data_dir}: {stats['records']} records in "
        f"{stats['segments']} segments ({stats['segment_bytes']:,} B)"
    )
    print(
        f"  manifest: epoch {manifest.get('epochs_closed', 0)}, "
        f"generation {manifest.get('generation', 0)}, "
        f"{len(manifest.get('pending', {}))} pending queues"
    )
    if stats.get("orphan_segments"):
        print(f"  orphan segments ignored: {stats['orphan_segments']}")
    print(f"  {'segment':<16}{'epoch':>7}{'records':>9}{'bytes':>12}")
    for row in engine.segments():
        shards = row.get("shards")
        extra = (
            "  shards=" + ",".join(
                f"{site}:{items}" for site, items in sorted(shards.items())
            )
            if shards
            else ""
        )
        compacted = "  (compacted)" if row.get("compacted") else ""
        print(
            f"  {row['file']:<16}{row.get('epoch', '-'):>7}"
            f"{row['records']:>9}{row['bytes']:>12,}{extra}{compacted}"
        )
    return 0


# ---------------------------------------------------------------------------
# metrics (observability exposition)


def _configure_metrics(parser: argparse.ArgumentParser) -> None:
    _add_drive_args(parser, epochs=3, flows_per_epoch=500)
    _add_faults_arg(parser, "drop=0.3,seed=7")
    parser.add_argument(
        "--recovery-epochs", type=int, default=3,
        help="extra empty epoch closes to drain parked exports",
    )
    _add_query_arg(
        parser,
        "run twice after the rollup (the repeat exercises the query "
        "cache)",
    )
    parser.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="exposition format to print",
    )
    parser.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="also print the last N span trees (0 = none)",
    )


def _run_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.client import FlowQLClient
    from repro.faults import FaultPlan
    from repro.obs import render_prometheus
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )

    if args.preset == "network":
        runtime = network_4level_runtime(retain_partitions=True)
    else:
        runtime = factory_4level_runtime(retain_partitions=True)
    if args.faults:
        try:
            runtime.inject_faults(FaultPlan.from_spec(args.faults))
        except ReproError as error:
            print(f"error: {error}")
            return 2
    _load_traffic(runtime, args.epochs, args.flows_per_epoch, args.seed)
    recovery = 0
    epoch_s = runtime.epoch_seconds
    while runtime.pending_exports() and recovery < args.recovery_epochs:
        recovery += 1
        runtime.close_epoch((args.epochs + recovery) * epoch_s)
    client = FlowQLClient(runtime=runtime, client_id="cli-metrics")
    for text in args.query or []:
        # twice each: the repeat turns a miss into a cache hit
        for _ in range(2):
            try:
                client.query(text)
            except ReproError as error:
                print(f"error: {error}")
                return 1
    if args.format == "json":
        print(json.dumps(runtime.obs.registry.snapshot(), indent=2))
    else:
        print(render_prometheus(runtime.obs.registry), end="")
    if args.traces > 0:
        for root in runtime.obs.tracer.traces()[-args.traces:]:
            print()
            print(root.render())
    return 0


# ---------------------------------------------------------------------------
# factory


def _configure_factory(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--lines", type=int, default=2)
    parser.add_argument("--machines-per-line", type=int, default=3)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--no-apps", action="store_true",
        help="disable predictive maintenance (baseline run)",
    )


def _run_factory(args: argparse.Namespace) -> int:
    from repro.scenarios.factory import FactoryScenario

    with_apps = not args.no_apps
    scenario = FactoryScenario(
        lines=args.lines,
        machines_per_line=args.machines_per_line,
        seed=args.seed,
        with_maintenance=with_apps,
    )
    outcome = scenario.run(hours=args.hours)
    print(
        f"simulated {args.hours:g} h, {outcome.machines} machines "
        f"({'with' if with_apps else 'without'} predictive maintenance)"
    )
    print(f"  failures: {len(outcome.failures)}/{outcome.machines}")
    for machine_id, failed_at in outcome.failures:
        print(f"    {machine_id} at t={failed_at/3600:.1f} h")
    if with_apps:
        print(f"  maintenance actions: {len(outcome.maintenance_decisions)}")
    print(f"  emergency stops: {outcome.emergency_stops}")
    print(f"  stored partitions: {outcome.partitions_stored} "
          f"({outcome.stored_bytes:,} B)")
    return 0 if (not with_apps or not outcome.failures) else 1


# ---------------------------------------------------------------------------
# topology (live census)


def _configure_topology(parser: argparse.ArgumentParser) -> None:
    _add_drive_args(parser, epochs=2, flows_per_epoch=500)
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help=(
            "fault plan spec; reconfig drills reshape the topology "
            "live, e.g. 'reconfig=leave:network1/region1/router2:0'"
        ),
    )
    parser.add_argument(
        "--adaptive-budgets", action="store_true",
        help="let the controller resize node budgets from pressure",
    )


def _run_topology(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan
    from repro.runtime.presets import (
        factory_4level_runtime,
        network_4level_runtime,
    )
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    if args.preset == "network":
        runtime = network_4level_runtime(retain_partitions=True)
    else:
        runtime = factory_4level_runtime(retain_partitions=True)
    try:
        if args.faults:
            try:
                plan = FaultPlan.from_spec(args.faults)
            except ReproError as error:
                print(f"error: {error}")
                return 2
            runtime.inject_faults(plan)
            print(f"fault plan: {plan.describe()}")
        if args.adaptive_budgets:
            runtime.enable_adaptive_budgets()
        generator = TrafficGenerator(
            TrafficConfig(
                sites=tuple(runtime.ingest_sites()),
                flows_per_epoch=args.flows_per_epoch,
            ),
            seed=args.seed,
        )
        epoch_s = runtime.epoch_seconds
        for epoch in range(args.epochs):
            # re-read the site list each epoch: reconfig drills may
            # have added, removed, or renamed sites at the last close
            for site in runtime.ingest_sites():
                try:
                    records = generator.epoch(site, epoch)
                except (ReproError, KeyError):
                    continue  # site joined after the trace was drawn
                runtime.ingest(site, records)
            try:
                runtime.close_epoch((epoch + 1) * epoch_s)
            except ReproError as error:
                print(f"error: reconfig drill failed: {error}")
                return 1
        census = runtime.model.census()
        print(f"\ntopology census (root {census['root']!r})")
        print(f"  generation: {census['generation']}")
        print(f"  {'level':<12}{'nodes':>7}{'budget':>10}{'deadline':>10}")
        for row in census["levels"]:
            budget = row["node_budget"]
            deadline = row["deadline_seconds"]
            print(
                f"  {row['level']:<12}{row['nodes']:>7}"
                f"{budget if budget is not None else '-':>10}"
                f"{f'{deadline:g}s' if deadline is not None else '-':>10}"
            )
        if census["op_counts"]:
            ops = ", ".join(
                f"{op}={count}"
                for op, count in sorted(census["op_counts"].items())
            )
            print(f"  reconfig ops: {ops}")
        pending = census["pending_migrations"]
        print(
            f"  migrated: {census['migrated_bytes']:,} B in "
            f"{census['migrated_summaries']} summaries | "
            f"pending migrations: {len(pending)}"
        )
        for entry in pending:
            print(
                f"    {entry['op']}: {entry['origin']} -> "
                f"{entry['target']} ({entry['size_bytes']:,} B)"
            )
        tuner = runtime._budget_tuner
        if tuner is not None and tuner.decisions:
            print("  budget decisions:")
            for decision in tuner.decisions:
                print(
                    f"    {decision.level}: {decision.old_budget} -> "
                    f"{decision.new_budget} (pressure="
                    f"{decision.pressure:.1f} fullness="
                    f"{decision.fullness:.2f})"
                )
        return 0
    finally:
        runtime.shutdown()


# ---------------------------------------------------------------------------
# replication


def _configure_replication(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--partitions", type=int, default=400)
    parser.add_argument(
        "--partition-mb", type=float, default=10.0,
        help="replication cost per partition in MB",
    )
    parser.add_argument("--mean-result-mb", type=float, default=1.0)
    parser.add_argument(
        "--distribution", choices=("pareto", "geometric", "lognormal"),
        default="pareto",
    )
    parser.add_argument("--seed", type=int, default=3)


def _run_replication(args: argparse.Namespace) -> int:
    from repro.replication.engine import (
        offline_optimal_cost,
        simulate_policy_on_trace,
    )
    from repro.replication.ski_rental import default_policies
    from repro.simulation.querytrace import (
        QueryTraceConfig,
        QueryTraceGenerator,
    )

    partition_bytes = int(args.partition_mb * 1e6)
    config = QueryTraceConfig(
        partitions=args.partitions,
        partition_bytes=partition_bytes,
        mean_result_bytes=int(args.mean_result_mb * 1e6),
        run_length_distribution=args.distribution,
        run_length_param={"pareto": 1.3, "geometric": 1.0,
                          "lognormal": 1.0}[args.distribution],
    )
    trace = QueryTraceGenerator(config, seed=args.seed).trace()
    optimal = offline_optimal_cost(trace, partition_bytes)
    print(
        f"{args.distribution} trace: {len(trace)} accesses over "
        f"{args.partitions} partitions, offline OPT = {optimal/1e6:.0f} MB"
    )
    print(f"  {'policy':<22}{'network':>12}{'vs OPT':>9}{'replications':>14}")
    for policy in default_policies(seed=args.seed):
        costs = simulate_policy_on_trace(trace, policy, partition_bytes)
        print(
            f"  {costs.policy:<22}{costs.total_bytes/1e6:>10.0f}MB"
            f"{costs.competitive_ratio(optimal):>9.3f}"
            f"{costs.replications:>14}"
        )
    return 0


# ---------------------------------------------------------------------------
# the registry: one row per subcommand


SUBCOMMANDS: Tuple[Subcommand, ...] = (
    Subcommand(
        "flowql",
        "load synthetic traffic and run FlowQL queries",
        _configure_flowql,
        _run_flowql,
    ),
    Subcommand(
        "query",
        "route FlowQL through the federated planner or a served "
        "endpoint",
        _configure_query,
        _run_query,
    ),
    Subcommand(
        "subscribe",
        "register standing FlowQL queries and watch delta-maintained "
        "updates per epoch",
        _configure_subscribe,
        _run_subscribe,
    ),
    Subcommand(
        "serve",
        "boot the networked FlowQL serving plane (gateway + node "
        "servers)",
        _configure_serve,
        _run_serve,
    ),
    Subcommand(
        "run",
        "drive a 4-level rollup, optionally under a fault plan",
        _configure_run,
        _run_run,
    ),
    Subcommand(
        "segments",
        "print the segment census of a durable data directory",
        _configure_segments,
        _run_segments,
    ),
    Subcommand(
        "metrics",
        "drive a rollup (optionally under faults) and emit the "
        "observability exposition",
        _configure_metrics,
        _run_metrics,
    ),
    Subcommand(
        "factory",
        "run the smart-factory scenario",
        _configure_factory,
        _run_factory,
    ),
    Subcommand(
        "topology",
        "drive a rollup (optionally with reconfig drills) and print "
        "the live topology census",
        _configure_topology,
        _run_topology,
    ),
    Subcommand(
        "replication",
        "compare replication policies on a trace",
        _configure_replication,
        _run_replication,
    ),
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed mega-datasets reproduction: Flowstream/FlowQL, "
            "the smart-factory loop, adaptive replication, and the "
            "networked serving plane."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command in SUBCOMMANDS:
        command.configure(
            subparsers.add_parser(command.name, help=command.help)
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    runners = {command.name: command.run for command in SUBCOMMANDS}
    return runners[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

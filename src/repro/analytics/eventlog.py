"""Event-log analysis: process mining over production events.

"Process mining, the review of production processes attained by
combining operational data and enterprise data to identify sources for
efficiency gains" (Section II.A).  Given a
:class:`~repro.simulation.production.ProductionEvent` log, this module
computes the classic process-mining quantities:

* per-machine cycle-time statistics and utilization,
* per-item flow time (first arrival → last finish) and its breakdown
  into processing vs waiting,
* the **bottleneck**: the machine with the highest utilization, whose
  queue the waiting time concentrates in,
* throughput over the analyzed horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.simulation.production import ProductionEvent


@dataclass(frozen=True)
class MachineProfile:
    """Mined statistics for one machine."""

    machine_id: str
    items: int
    mean_processing_seconds: float
    mean_waiting_seconds: float
    utilization: float


@dataclass(frozen=True)
class ProcessAnalysis:
    """The mined view of one production line."""

    machines: List[MachineProfile]
    throughput_per_hour: float
    mean_flow_seconds: float
    bottleneck: Optional[str]

    def profile(self, machine_id: str) -> MachineProfile:
        """Fetch one machine's profile."""
        for profile in self.machines:
            if profile.machine_id == machine_id:
                return profile
        raise KeyError(machine_id)


def analyze_event_log(
    events: Sequence[ProductionEvent],
    horizon_seconds: Optional[float] = None,
) -> ProcessAnalysis:
    """Mine a production event log.

    ``horizon_seconds`` is the observation window for utilization and
    throughput; it defaults to the log's own span.
    """
    if not events:
        return ProcessAnalysis(
            machines=[], throughput_per_hour=0.0, mean_flow_seconds=0.0,
            bottleneck=None,
        )
    span_start = min(event.arrived_at for event in events)
    span_end = max(event.finished_at for event in events)
    horizon = horizon_seconds or max(1e-9, span_end - span_start)

    by_machine: Dict[str, List[ProductionEvent]] = {}
    by_item: Dict[int, List[ProductionEvent]] = {}
    for event in events:
        by_machine.setdefault(event.machine_id, []).append(event)
        by_item.setdefault(event.item_id, []).append(event)

    profiles: List[MachineProfile] = []
    for machine_id, machine_events in sorted(by_machine.items()):
        processing = sum(e.processing_seconds for e in machine_events)
        waiting = sum(e.waiting_seconds for e in machine_events)
        count = len(machine_events)
        profiles.append(
            MachineProfile(
                machine_id=machine_id,
                items=count,
                mean_processing_seconds=processing / count,
                mean_waiting_seconds=waiting / count,
                utilization=min(1.0, processing / horizon),
            )
        )

    flow_times = []
    completed = 0
    stations = len(by_machine)
    for item_events in by_item.values():
        if len(item_events) == stations:
            completed += 1
            start = min(e.arrived_at for e in item_events)
            end = max(e.finished_at for e in item_events)
            flow_times.append(end - start)
    bottleneck = (
        max(profiles, key=lambda p: p.utilization).machine_id
        if profiles
        else None
    )
    return ProcessAnalysis(
        machines=profiles,
        throughput_per_hour=completed / horizon * 3600.0,
        mean_flow_seconds=(
            sum(flow_times) / len(flow_times) if flow_times else 0.0
        ),
        bottleneck=bottleneck,
    )


def efficiency_gain_estimate(
    analysis: ProcessAnalysis,
) -> Dict[str, float]:
    """Estimate the throughput headroom from fixing the bottleneck.

    A serial line's rate is capped by its slowest station; if the
    bottleneck were restored to the line's *median* processing time, the
    line rate would rise proportionally.  Returns the mined "source for
    efficiency gains" as a fraction (0.0 = nothing to gain).
    """
    if not analysis.bottleneck or len(analysis.machines) < 2:
        return {"potential_speedup": 0.0}
    times = sorted(p.mean_processing_seconds for p in analysis.machines)
    median = times[len(times) // 2]
    worst = analysis.profile(analysis.bottleneck).mean_processing_seconds
    if worst <= median or worst == 0:
        return {"potential_speedup": 0.0}
    return {"potential_speedup": (worst - median) / worst}

"""An in-process MapReduce engine.

Figure 2a lists Map/Reduce/Apply under "Process"; the architecture's
analytics pipelines use it for pre-processing summaries before
inference.  The engine follows the classic contract — a mapper emits
``(key, value)`` pairs, values are shuffled by key, a reducer folds each
key's values — with an optional combiner to cut shuffle volume, which
the pipeline benchmarks account for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

Mapper = Callable[[Any], Iterable[Tuple[Hashable, Any]]]
Reducer = Callable[[Hashable, List[Any]], Any]
Combiner = Callable[[Hashable, List[Any]], Any]


@dataclass
class MapReduceStats:
    """Volume accounting for one job."""

    input_records: int = 0
    mapped_pairs: int = 0
    shuffled_pairs: int = 0
    output_keys: int = 0


class LocalMapReduce:
    """Run MapReduce jobs over in-memory sequences."""

    def __init__(self, partitions: int = 4) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.partitions = partitions
        self.last_stats = MapReduceStats()

    def run(
        self,
        records: Iterable[Any],
        mapper: Mapper,
        reducer: Reducer,
        combiner: Optional[Combiner] = None,
    ) -> Dict[Hashable, Any]:
        """Execute one job and return ``{key: reduced value}``.

        The combiner, when given, runs per map partition before the
        shuffle — the standard volume optimization; its effect shows up
        in ``last_stats.shuffled_pairs``.
        """
        stats = MapReduceStats()
        # map phase, partitioned round-robin as a scatter would
        partition_outputs: List[List[Tuple[Hashable, Any]]] = [
            [] for _ in range(self.partitions)
        ]
        for index, record in enumerate(records):
            stats.input_records += 1
            for pair in mapper(record):
                stats.mapped_pairs += 1
                partition_outputs[index % self.partitions].append(pair)
        # combine phase (optional, per partition)
        if combiner is not None:
            combined_outputs: List[List[Tuple[Hashable, Any]]] = []
            for output in partition_outputs:
                grouped: Dict[Hashable, List[Any]] = {}
                for key, value in output:
                    grouped.setdefault(key, []).append(value)
                combined_outputs.append(
                    [(key, combiner(key, values)) for key, values in grouped.items()]
                )
            partition_outputs = combined_outputs
        # shuffle phase
        shuffled: Dict[Hashable, List[Any]] = {}
        for output in partition_outputs:
            for key, value in output:
                stats.shuffled_pairs += 1
                shuffled.setdefault(key, []).append(value)
        # reduce phase
        result = {
            key: reducer(key, values) for key, values in shuffled.items()
        }
        stats.output_keys = len(result)
        self.last_stats = stats
        return result

    def word_count_style(
        self, records: Iterable[Any], key_of: Callable[[Any], Hashable],
        weight_of: Callable[[Any], float] = lambda record: 1.0,
    ) -> Dict[Hashable, float]:
        """The canonical aggregation job: sum weights per key."""
        return self.run(
            records,
            mapper=lambda record: [(key_of(record), weight_of(record))],
            reducer=lambda key, values: sum(values),
            combiner=lambda key, values: sum(values),
        )

"""Lightweight inference blocks for the "Infer" stage (Figure 2a).

These are the statistical models the example applications need:

* :class:`EwmaAnomalyDetector` — exponentially weighted mean/variance
  with z-score anomaly flags, for per-sensor monitoring.
* :class:`CusumDetector` — cumulative-sum change detection, for abrupt
  shifts (e.g. traffic floods).
* :class:`LinearTrend` — least-squares slope/intercept over a series,
  the basis of degradation trending.
* :func:`time_to_threshold` — extrapolate a trend to a critical value,
  which is precisely what predictive maintenance schedules against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class EwmaAnomalyDetector:
    """Streaming z-score anomaly detection over an EWMA baseline."""

    def __init__(
        self,
        alpha: float = 0.05,
        z_threshold: float = 4.0,
        warmup: int = 20,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.mean: Optional[float] = None
        self.variance = 0.0
        self.observed = 0
        self.anomalies: List[Tuple[float, float, float]] = []

    def observe(self, value: float, timestamp: float = 0.0) -> bool:
        """Feed one value; returns True when it is anomalous.

        The baseline is *not* updated with anomalous values, so a level
        shift keeps firing until acknowledged, rather than being
        absorbed.
        """
        self.observed += 1
        if self.mean is None:
            self.mean = value
            return False
        deviation = value - self.mean
        std = math.sqrt(self.variance) if self.variance > 0 else 0.0
        is_anomaly = (
            self.observed > self.warmup
            and std > 0
            and abs(deviation) > self.z_threshold * std
        )
        if is_anomaly:
            z = abs(deviation) / std
            self.anomalies.append((timestamp, value, z))
            return True
        self.mean += self.alpha * deviation
        self.variance = (1 - self.alpha) * (
            self.variance + self.alpha * deviation * deviation
        )
        return False


class CusumDetector:
    """Two-sided CUSUM change detection around a target mean."""

    def __init__(self, target: float, slack: float, threshold: float) -> None:
        if slack < 0 or threshold <= 0:
            raise ValueError("slack must be >= 0 and threshold > 0")
        self.target = target
        self.slack = slack
        self.threshold = threshold
        self.positive_sum = 0.0
        self.negative_sum = 0.0
        self.changes: List[Tuple[float, str]] = []

    def observe(self, value: float, timestamp: float = 0.0) -> Optional[str]:
        """Feed one value; returns ``"up"``/``"down"`` on detection."""
        self.positive_sum = max(
            0.0, self.positive_sum + value - self.target - self.slack
        )
        self.negative_sum = max(
            0.0, self.negative_sum + self.target - value - self.slack
        )
        if self.positive_sum > self.threshold:
            self.positive_sum = 0.0
            self.changes.append((timestamp, "up"))
            return "up"
        if self.negative_sum > self.threshold:
            self.negative_sum = 0.0
            self.changes.append((timestamp, "down"))
            return "down"
        return None


@dataclass(frozen=True)
class LinearTrend:
    """A fitted line ``value = intercept + slope * t``."""

    slope: float
    intercept: float
    r_squared: float

    @classmethod
    def fit(cls, points: Sequence[Tuple[float, float]]) -> "LinearTrend":
        """Least-squares fit over ``(t, value)`` pairs (needs >= 2)."""
        if len(points) < 2:
            raise ValueError("need at least two points to fit a trend")
        n = len(points)
        mean_t = sum(t for t, _ in points) / n
        mean_v = sum(v for _, v in points) / n
        ss_tt = sum((t - mean_t) ** 2 for t, _ in points)
        ss_tv = sum((t - mean_t) * (v - mean_v) for t, v in points)
        ss_vv = sum((v - mean_v) ** 2 for _, v in points)
        if ss_tt == 0:
            return cls(slope=0.0, intercept=mean_v, r_squared=0.0)
        slope = ss_tv / ss_tt
        intercept = mean_v - slope * mean_t
        r_squared = (ss_tv * ss_tv) / (ss_tt * ss_vv) if ss_vv > 0 else 1.0
        return cls(slope=slope, intercept=intercept, r_squared=r_squared)

    def value_at(self, t: float) -> float:
        """Predicted value at time ``t``."""
        return self.intercept + self.slope * t


def time_to_threshold(
    trend: LinearTrend, current_time: float, threshold: float
) -> Optional[float]:
    """Seconds until the trend crosses ``threshold``; None if receding.

    Predictive maintenance calls this with the vibration trend and the
    failure threshold to decide *when* to schedule service.
    """
    current = trend.value_at(current_time)
    if current >= threshold:
        return 0.0
    if trend.slope <= 0:
        return None
    return (threshold - current) / trend.slope

"""Analytics pipelines: pre-process → transfer → infer (Section III.B).

"The pipeline performs pre-processing (e.g., using MapReduce), data
transfer (scatter and gather semantics) and inference (e.g., using a
Machine Learning algorithm). A pipeline feeds the processed data to one
or possibly many applications."

A :class:`Pipeline` is an ordered list of named stages.  Each run is
timed per stage and recorded in the lineage log, and results are
delivered to every registered application sink — which is all the
architecture requires of an analytics engine, whether it is this
in-process one or Spark/Flink in a real deployment.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.summary import LineageLog, Location

StageFunction = Callable[[Any], Any]
ResultSink = Callable[[Any], None]


@dataclass
class PipelineStage:
    """One named transformation in a pipeline."""

    name: str
    function: StageFunction
    #: "preprocess" | "transfer" | "infer" — informational, used by the
    #: Figure 2 benchmark to attribute latency to loop phases.
    role: str = "preprocess"


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock duration of one stage in one run."""

    stage: str
    role: str
    seconds: float


@dataclass
class PipelineRun:
    """The outcome of one pipeline execution."""

    output: Any
    timings: List[StageTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end wall-clock duration."""
        return sum(t.seconds for t in self.timings)


class Pipeline:
    """An ordered, observable chain of analytics stages."""

    def __init__(
        self,
        name: str,
        stages: Optional[List[PipelineStage]] = None,
        lineage: Optional[LineageLog] = None,
        location: Optional[Location] = None,
    ) -> None:
        self.name = name
        self.stages: List[PipelineStage] = stages or []
        self.lineage = lineage
        self.location = location
        self._sinks: List[ResultSink] = []
        self.runs = 0

    def add_stage(
        self, name: str, function: StageFunction, role: str = "preprocess"
    ) -> "Pipeline":
        """Append a stage; returns self for chaining."""
        self.stages.append(PipelineStage(name=name, function=function, role=role))
        return self

    def feed_to(self, sink: ResultSink) -> "Pipeline":
        """Register an application sink; returns self for chaining."""
        self._sinks.append(sink)
        return self

    def run(self, data: Any, at_time: float = 0.0) -> PipelineRun:
        """Push ``data`` through every stage and deliver the result."""
        timings: List[StageTiming] = []
        current = data
        for stage in self.stages:
            started = _wallclock.perf_counter()
            current = stage.function(current)
            timings.append(
                StageTiming(
                    stage=stage.name,
                    role=stage.role,
                    seconds=_wallclock.perf_counter() - started,
                )
            )
        if self.lineage is not None:
            self.lineage.record(
                operation="pipeline",
                location=self.location,
                timestamp=at_time,
                detail=self.name,
            )
        for sink in self._sinks:
            sink(current)
        self.runs += 1
        return PipelineRun(output=current, timings=timings)

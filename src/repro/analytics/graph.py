"""Graph analysis over flow summaries (Figure 2a: "Graph Analysis").

The Infer column of the paper's building-block figure lists graph
analysis next to machine learning.  This module turns Flowtree
summaries into communication graphs and answers the network-operator
questions that are graph-shaped:

* **communication graph** — nodes are address prefixes, weighted edges
  are the traffic between them (from ``aggregate_by_feature`` pairs);
* **top talkers** — weighted-degree ranking;
* **communities** — connected components of the thresholded graph,
  separating independent traffic clusters;
* **choke points** — betweenness centrality on the hierarchy topology
  projected with demand, flagging the links a failure would hurt most.

Built on :mod:`networkx`, which plays the role of the "graph
processing" engine in the analytics toolset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.flows.features import format_ipv4
from repro.flows.tree import Flowtree
from repro.hierarchy.network import NetworkFabric


def communication_graph(
    tree: Flowtree,
    prefix_level: int = 8,
    metric: str = "bytes",
    min_edge_weight: int = 0,
) -> nx.Graph:
    """Build the src-prefix ↔ dst-prefix traffic graph from a Flowtree.

    Edges aggregate all flows between the two prefixes at
    ``prefix_level`` bits; node/edge weights use ``metric``.  The
    aggregation runs on the *tree*, so it works on merged multi-site
    summaries exactly like every other operator.
    """
    schema = tree.schema
    src_index = schema.index_of("src_ip")
    dst_index = schema.index_of("dst_ip")
    wanted = [0] * len(schema)
    wanted[src_index] = prefix_level
    wanted[dst_index] = prefix_level
    depth = tree.policy.shallowest_covering_depth(wanted)
    graph = nx.Graph()
    src_feature = schema.features[src_index]
    dst_feature = schema.features[dst_index]
    for node in tree.nodes():
        if node.depth != depth:
            continue
        weight = node.subtree.metric(metric)
        if weight <= min_edge_weight:
            continue
        src = (
            f"{format_ipv4(src_feature.mask(node.values[src_index], prefix_level))}"
            f"/{prefix_level}"
        )
        dst = (
            f"{format_ipv4(dst_feature.mask(node.values[dst_index], prefix_level))}"
            f"/{prefix_level}"
        )
        if graph.has_edge(src, dst):
            graph[src][dst]["weight"] += weight
        else:
            graph.add_edge(src, dst, weight=weight)
    return graph


def top_talkers(
    graph: nx.Graph, k: int = 10
) -> List[Tuple[str, float]]:
    """Prefixes ranked by weighted degree (total traffic touching them)."""
    degrees = [
        (node, sum(data["weight"] for _, _, data in graph.edges(node, data=True)))
        for node in graph.nodes
    ]
    degrees.sort(key=lambda pair: (-pair[1], pair[0]))
    return degrees[:k]


def traffic_communities(
    graph: nx.Graph, min_edge_weight: float = 0.0
) -> List[List[str]]:
    """Connected components after dropping light edges.

    Communities are independent traffic clusters; two sites in
    different components never exchange (heavy) traffic — useful for
    partitioning monitoring responsibility or validating segmentation.
    """
    filtered = nx.Graph()
    filtered.add_nodes_from(graph.nodes)
    for a, b, data in graph.edges(data=True):
        if data["weight"] >= min_edge_weight:
            filtered.add_edge(a, b, weight=data["weight"])
    components = [
        sorted(component) for component in nx.connected_components(filtered)
        if len(component) > 1
    ]
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def hierarchy_choke_points(
    fabric: NetworkFabric, k: int = 5
) -> List[Tuple[Tuple[str, str], float]]:
    """Links ranked by (weighted) betweenness on the hierarchy graph.

    Edge distance is the reciprocal of bandwidth, so slow WAN links —
    the ones the paper says are scarce — surface first.
    """
    graph = nx.Graph()
    for link in fabric.links():
        graph.add_edge(
            link.upper.path,
            link.lower.path,
            distance=1.0 / link.bandwidth_bps,
        )
    centrality = nx.edge_betweenness_centrality(graph, weight="distance")
    ranked = sorted(centrality.items(), key=lambda pair: -pair[1])
    return ranked[:k]


def demand_weighted_link_load(
    fabric: NetworkFabric,
    site_demand: Dict[str, float],
    source: Optional[str] = None,
) -> Dict[Tuple[str, str], float]:
    """Project per-site demand onto hierarchy links via shortest paths.

    ``site_demand`` maps location paths to traffic volumes; ``source``
    defaults to the hierarchy root (external traffic entering at the
    top).  Returns per-link carried volume — the graph-analysis form of
    the traffic-matrix app's projection.
    """
    graph = nx.Graph()
    for link in fabric.links():
        graph.add_edge(link.upper.path, link.lower.path)
    origin = source or fabric.hierarchy.root.location.path
    loads: Dict[Tuple[str, str], float] = {}
    for site, demand in site_demand.items():
        if site not in graph or origin not in graph:
            continue
        path = nx.shortest_path(graph, origin, site)
        for a, b in zip(path, path[1:]):
            loads[(a, b)] = loads.get((a, b), 0.0) + demand
    return loads

"""Transfer patterns: scatter/gather, publish/subscribe, request/reply.

These are the "Transfer" primitives of Figure 2a.  Everything is
in-process (the simulation is single-node) but the interfaces mirror
their distributed counterparts: topic-based fan-out, worker fan-out with
result gathering, and synchronous request/reply — and every payload can
be charged to the :class:`~repro.hierarchy.network.NetworkFabric` when
endpoints carry locations, so transfer volume stays observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.summary import Location
from repro.errors import ReproError
from repro.hierarchy.network import NetworkFabric

Subscriber = Callable[[str, Any], None]


class MessageBus:
    """Topic-based publish/subscribe with optional fabric accounting."""

    def __init__(self, fabric: Optional[NetworkFabric] = None) -> None:
        self._subscribers: Dict[str, List[Tuple[Subscriber, Optional[Location]]]] = {}
        self.fabric = fabric
        self.published = 0
        self.delivered = 0

    def subscribe(
        self,
        topic: str,
        subscriber: Subscriber,
        location: Optional[Location] = None,
    ) -> None:
        """Subscribe a callback (with an optional location for transfer
        accounting) to a topic."""
        self._subscribers.setdefault(topic, []).append((subscriber, location))

    def unsubscribe(self, topic: str, subscriber: Subscriber) -> None:
        """Remove a subscriber from a topic."""
        entries = self._subscribers.get(topic, [])
        self._subscribers[topic] = [
            (callback, loc) for callback, loc in entries if callback is not subscriber
        ]

    def publish(
        self,
        topic: str,
        message: Any,
        size_bytes: int = 0,
        origin: Optional[Location] = None,
        at_time: float = 0.0,
    ) -> int:
        """Deliver a message to every subscriber; returns delivery count."""
        self.published += 1
        count = 0
        for subscriber, location in self._subscribers.get(topic, []):
            if (
                self.fabric is not None
                and origin is not None
                and location is not None
            ):
                self.fabric.transfer(origin, location, size_bytes, at_time)
            subscriber(topic, message)
            count += 1
        self.delivered += count
        return count


class ScatterGather:
    """Fan a task list out to workers and gather the results.

    ``workers`` are callables; tasks are distributed round-robin (the
    "embarrassingly parallel" case the paper cites).  In-process, so the
    value is the semantics and the accounting, not actual parallelism.
    """

    def __init__(self, workers: Sequence[Callable[[Any], Any]]) -> None:
        if not workers:
            raise ReproError("scatter/gather needs at least one worker")
        self.workers = list(workers)

    def run(self, tasks: Sequence[Any]) -> List[Any]:
        """Scatter tasks round-robin, gather results in task order."""
        results: List[Any] = []
        for index, task in enumerate(tasks):
            worker = self.workers[index % len(self.workers)]
            results.append(worker(task))
        return results


@dataclass
class RequestReplyChannel:
    """Synchronous request/reply against a named handler registry."""

    _handlers: Dict[str, Callable[[Any], Any]] = field(default_factory=dict)
    requests: int = 0

    def register(self, name: str, handler: Callable[[Any], Any]) -> None:
        """Expose a handler under a name."""
        self._handlers[name] = handler

    def request(self, name: str, payload: Any) -> Any:
        """Invoke a handler and return its reply."""
        handler = self._handlers.get(name)
        if handler is None:
            raise ReproError(f"no request handler named {name!r}")
        self.requests += 1
        return handler(payload)

"""The Analytics building block (Figure 2a, "transfer & process").

The paper treats analytics as a pluggable toolset between data stores
and applications.  This package supplies the transfer patterns the
figure names (scatter & gather, publish & subscribe, request & reply,
forward & replicate), an in-process MapReduce engine, composable
pipelines (pre-process → transfer → infer), and lightweight inference
blocks (EWMA anomaly scores, linear trends, CUSUM change detection,
time-to-threshold forecasts) that the example applications build on.
"""

from repro.analytics.transfer import (
    MessageBus,
    RequestReplyChannel,
    ScatterGather,
)
from repro.analytics.mapreduce import LocalMapReduce
from repro.analytics.pipeline import Pipeline, PipelineStage, StageTiming
from repro.analytics.inference import (
    CusumDetector,
    EwmaAnomalyDetector,
    LinearTrend,
    time_to_threshold,
)
from repro.analytics.eventlog import (
    MachineProfile,
    ProcessAnalysis,
    analyze_event_log,
    efficiency_gain_estimate,
)
from repro.analytics.graph import (
    communication_graph,
    demand_weighted_link_load,
    hierarchy_choke_points,
    top_talkers,
    traffic_communities,
)

__all__ = [
    "MessageBus",
    "ScatterGather",
    "RequestReplyChannel",
    "LocalMapReduce",
    "Pipeline",
    "PipelineStage",
    "StageTiming",
    "EwmaAnomalyDetector",
    "CusumDetector",
    "LinearTrend",
    "time_to_threshold",
    "communication_graph",
    "top_talkers",
    "traffic_communities",
    "hierarchy_choke_points",
    "demand_weighted_link_load",
    "analyze_event_log",
    "efficiency_gain_estimate",
    "ProcessAnalysis",
    "MachineProfile",
]

"""The on-disk engine: an append-only segment log plus a manifest.

Layout of a data directory::

    <data_dir>/
      MANIFEST.json          # the commit point (atomic_write_json)
      segments/
        seg-00000001.log     # length-prefixed, CRC'd summary records
        seg-00000002.log
        ...

Summaries appended during an epoch buffer in memory; ``seal_epoch``
writes them as one fsynced segment file.  The manifest — written with
the fsync-before-rename protocol after every epoch close — is the
single source of truth: it lists the live segments, the pending
relabels, and the runtime checkpoint (pending queues, replicas, epoch
counters, topology generation).  Recovery reads the manifest, scans the
listed segments' *headers* (payloads stay on disk until a query needs
the tree), and ignores any segment file the manifest does not name — a
crash between a segment write and its manifest commit simply rolls the
store back to the previous epoch boundary, never to a torn state.

Elastic renames are recorded logically (``relabel``) and applied at
read time; :meth:`compact` makes them physical by rewriting every live
record — new labels, one coalesced segment — and deleting the
superseded files.  Compaction triggers automatically when the live
segment count passes ``compact_threshold`` (checked at seal time, so
runs stay deterministic) or explicitly via the CLI.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional

from repro.core.summary import TimeInterval
from repro.errors import StorageError
from repro.flows.flowkey import GeneralizationPolicy
from repro.flows.tree import Flowtree
from repro.storage.codec import (
    atomic_write_json,
    encode_record,
    fsync_directory,
    read_payload,
    scan_records,
)
from repro.storage.engine import StorageEngine, SummaryRecord

MANIFEST_NAME = "MANIFEST.json"
SEGMENT_DIR = "segments"
MANIFEST_FORMAT_VERSION = 1


class SegmentLogEngine(StorageEngine):
    """Durable FlowDB storage: segment files sealed per epoch."""

    durable = True
    name = "segment-log"

    def __init__(
        self, data_dir: str, compact_threshold: int = 8
    ) -> None:
        super().__init__()
        if compact_threshold < 2:
            raise StorageError(
                f"compact_threshold must be >= 2, got {compact_threshold}"
            )
        self.data_dir = os.path.abspath(data_dir)
        self.compact_threshold = compact_threshold
        self.segment_dir = os.path.join(self.data_dir, SEGMENT_DIR)
        os.makedirs(self.segment_dir, exist_ok=True)
        #: records appended since the last seal: (header, payload bytes)
        self._active: List[tuple] = []
        #: live segment census rows, manifest order
        self._segments: List[Dict[str, Any]] = []
        #: logical renames awaiting physical application by compaction
        self._relabels: Dict[str, str] = {}
        self._manifest: Optional[dict] = None
        self._next_seq = 1
        self._orphans = 0
        self._load_existing()

    # -- open ---------------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.data_dir, MANIFEST_NAME)

    def _load_existing(self) -> None:
        try:
            with open(self._manifest_path()) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            document = None
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"corrupt manifest at {self._manifest_path()!r}: {exc}"
            ) from exc
        if document is not None:
            version = document.get("format_version")
            if version != MANIFEST_FORMAT_VERSION:
                raise StorageError(
                    f"unsupported manifest format version {version!r} "
                    f"(expected {MANIFEST_FORMAT_VERSION})"
                )
            self._segments = [
                dict(row) for row in document.get("segments", [])
            ]
            self._relabels = dict(document.get("relabels", {}))
            self._manifest = document.get("runtime")
        listed = {row["file"] for row in self._segments}
        on_disk = sorted(
            name
            for name in os.listdir(self.segment_dir)
            if name.startswith("seg-") and name.endswith(".log")
        )
        # a segment written after the last manifest commit is not part
        # of recovered state (the close that produced it never became
        # durable); count it and step the sequence past it
        self._orphans = sum(1 for name in on_disk if name not in listed)
        highest = 0
        for name in on_disk + sorted(listed):
            try:
                highest = max(highest, int(name[4:-4]))
            except ValueError:
                continue
        self._next_seq = highest + 1

    # -- record log ---------------------------------------------------------

    def append_summary(
        self, location: str, interval: TimeInterval, tree: Flowtree
    ) -> None:
        header = {
            "kind": "flowtree",
            "location": location,
            "start": interval.start,
            "end": interval.end,
        }
        payload = json.dumps(
            tree.to_dict(), separators=(",", ":")
        ).encode("utf-8")
        self._active.append((header, payload))

    def iter_summaries(
        self, policy: GeneralizationPolicy
    ) -> Iterator[SummaryRecord]:
        for row in self._segments:
            path = os.path.join(self.segment_dir, row["file"])
            try:
                handle = open(path, "rb")
            except FileNotFoundError as exc:
                raise StorageError(
                    f"manifest names missing segment {row['file']!r}"
                ) from exc
            with handle:
                scanned = list(scan_records(handle))
            for header, record_offset, _payload_len in scanned:
                yield self._record_from(policy, path, header, record_offset)
        for header, payload in list(self._active):
            yield SummaryRecord(
                location=self._relabels.get(
                    header["location"], header["location"]
                ),
                interval=TimeInterval(header["start"], header["end"]),
                load=(
                    lambda data=payload, p=policy: Flowtree.from_dict(
                        json.loads(data), p
                    )
                ),
            )

    def _record_from(
        self,
        policy: GeneralizationPolicy,
        path: str,
        header: Dict[str, Any],
        record_offset: int,
    ) -> SummaryRecord:
        def load() -> Flowtree:
            payload = read_payload(path, record_offset)
            return Flowtree.from_dict(json.loads(payload), policy)

        return SummaryRecord(
            location=self._relabels.get(
                header["location"], header["location"]
            ),
            interval=TimeInterval(header["start"], header["end"]),
            load=load,
        )

    def record_count(self) -> int:
        return sum(int(row["records"]) for row in self._segments) + len(
            self._active
        )

    # -- epoch seals --------------------------------------------------------

    def seal_epoch(self, epoch: int, meta: Optional[dict] = None) -> None:
        shards = self._take_shards()
        if not self._active:
            return
        name = f"seg-{self._next_seq:08d}.log"
        self._next_seq += 1
        path = os.path.join(self.segment_dir, name)
        size = self._write_segment(path, self._active)
        row: Dict[str, Any] = {
            "file": name,
            "records": len(self._active),
            "bytes": size,
            "epoch": epoch,
        }
        if shards:
            row["shards"] = shards
        if meta:
            row.update(meta)
        self._segments.append(row)
        self._active = []
        if len(self._segments) > self.compact_threshold:
            self.compact()

    def _write_segment(self, path: str, records: List[tuple]) -> int:
        size = 0
        with open(path, "wb") as handle:
            for header, payload in records:
                frame = encode_record(header, payload)
                handle.write(frame)
                size += len(frame)
            handle.flush()
            os.fsync(handle.fileno())
        fsync_directory(self.segment_dir)
        return size

    # -- manifest -----------------------------------------------------------

    def write_manifest(self, state: dict) -> None:
        self._manifest = state
        document = {
            "format_version": MANIFEST_FORMAT_VERSION,
            "engine": self.name,
            "segments": self._segments,
            "relabels": self._relabels,
            "runtime": state,
        }
        atomic_write_json(self._manifest_path(), document)
        self._manifest_writes += 1

    def read_manifest(self) -> Optional[dict]:
        return self._manifest

    # -- maintenance --------------------------------------------------------

    def relabel(self, old: str, new: str) -> None:
        # chain-resolve so a->b followed by b->c reads as a->c
        for source, target in list(self._relabels.items()):
            if target == old:
                self._relabels[source] = new
        if old not in self._relabels:
            self._relabels[old] = new
        for header, _payload in self._active:
            if header["location"] == old:
                header["location"] = new

    def compact(self) -> Dict[str, int]:
        """Rewrite every live record into one segment; drop the rest.

        Relabels become physical (headers rewritten), superseded files
        are deleted, and the relabel map empties.  Records that fail
        their CRC are dropped — they were unreadable anyway — and
        counted in the returned stats.
        """
        if not self._segments:
            # still make pending relabels physical for active records
            self._relabels = {}
            return {"segments_removed": 0, "reclaimed_bytes": 0,
                    "dropped_records": 0}
        survivors: List[tuple] = []
        dropped = 0
        old_files = [row["file"] for row in self._segments]
        old_bytes = sum(int(row["bytes"]) for row in self._segments)
        last_epoch = max(int(row.get("epoch", 0)) for row in self._segments)
        for row in self._segments:
            path = os.path.join(self.segment_dir, row["file"])
            with open(path, "rb") as handle:
                scanned = list(scan_records(handle))
            for header, record_offset, _payload_len in scanned:
                try:
                    payload = read_payload(path, record_offset)
                except StorageError:
                    dropped += 1
                    continue
                header = dict(header)
                header["location"] = self._relabels.get(
                    header["location"], header["location"]
                )
                survivors.append((header, payload))
        name = f"seg-{self._next_seq:08d}.log"
        self._next_seq += 1
        path = os.path.join(self.segment_dir, name)
        size = self._write_segment(path, survivors)
        self._segments = [
            {
                "file": name,
                "records": len(survivors),
                "bytes": size,
                "epoch": last_epoch,
                "compacted": True,
            }
        ]
        self._relabels = {}
        # commit the new census before deleting the files it supersedes:
        # a crash in between leaves extra (orphaned) segments, never a
        # manifest that names missing ones
        if self._manifest is not None:
            self.write_manifest(self._manifest)
        for stale in old_files:
            try:
                os.remove(os.path.join(self.segment_dir, stale))
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        fsync_directory(self.segment_dir)
        reclaimed = max(0, old_bytes - size)
        self._compactions += 1
        self._reclaimed_bytes += reclaimed
        return {
            "segments_removed": len(old_files),
            "reclaimed_bytes": reclaimed,
            "dropped_records": dropped,
        }

    def segments(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self._segments]

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["active_records"] = len(self._active)
        stats["relabels_pending"] = len(self._relabels)
        stats["orphan_segments"] = self._orphans
        stats["data_dir"] = self.data_dir
        return stats

"""The pluggable storage seam: where FlowDB state lives.

Before this seam, "FlowDB is a dict plus a JSON dump": every sealed
summary, pending-export queue, and replica lived only in process
memory, and :func:`~repro.flowdb.persistence.save_flowdb` was the sole
(whole-index, non-fsynced) escape hatch.  :class:`StorageEngine` is the
interface the runtime and FlowDB now program against:

* **record log** — :meth:`append_summary` receives every sealed
  Flowtree summary FlowDB indexes; :meth:`iter_summaries` streams them
  back (lazily where the engine can) for recovery.
* **epoch seals** — :meth:`seal_epoch` marks an epoch boundary, the
  durability point of the whole system: everything appended since the
  previous seal becomes a unit (a segment, on disk).
* **manifest** — :meth:`write_manifest` / :meth:`read_manifest`
  checkpoint the runtime state that is *not* in the record log (pending
  queues, replicas, epoch counters, topology generation).
* **relabel / compact** — elastic reconfigurations rename sites;
  :meth:`relabel` records the rename logically, and :meth:`compact`
  makes it physical while reclaiming superseded storage.

:class:`MemoryEngine` is the default and preserves the pre-seam
behavior exactly: records are references to the live trees (no
serialization on the hot path), the manifest is a held dict, and
nothing touches disk — yet restart drills still exercise the same
recovery code path a durable engine does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.core.summary import TimeInterval
from repro.flows.flowkey import GeneralizationPolicy
from repro.flows.tree import Flowtree


@dataclass(frozen=True)
class SummaryRecord:
    """One logged summary, with a lazy payload loader.

    ``load`` parses/returns the Flowtree only when called, so engines
    that store records on disk can index thousands of summaries while
    materializing none of them until a query actually needs the tree.
    """

    location: str
    interval: TimeInterval
    load: Callable[[], Flowtree]


class StorageEngine:
    """Base class for FlowDB/runtime storage engines.

    Subclasses implement the record log, seals, and manifest; the base
    class carries the bookkeeping every engine shares (shard notes from
    the parallel ingest pool, uniform :meth:`stats` counters).
    """

    #: whether state survives the hosting process (drives CLI messaging
    #: and lets callers skip durability-only work for memory engines)
    durable: bool = False
    name: str = "abstract"

    def __init__(self) -> None:
        self._manifest_writes = 0
        self._compactions = 0
        self._reclaimed_bytes = 0
        #: shard items handed over by the parallel pool since the last
        #: seal, folded into the next sealed epoch's metadata
        self._pending_shards: Dict[str, int] = {}

    # -- record log ---------------------------------------------------------

    def append_summary(
        self, location: str, interval: TimeInterval, tree: Flowtree
    ) -> None:
        raise NotImplementedError

    def iter_summaries(
        self, policy: GeneralizationPolicy
    ) -> Iterator[SummaryRecord]:
        raise NotImplementedError

    def record_count(self) -> int:
        raise NotImplementedError

    # -- epoch seals --------------------------------------------------------

    def record_shard(self, site: str, items: int) -> None:
        """Note one worker shard handed over at the epoch barrier."""
        self._pending_shards[site] = (
            self._pending_shards.get(site, 0) + items
        )

    def _take_shards(self) -> Dict[str, int]:
        shards, self._pending_shards = self._pending_shards, {}
        return shards

    def seal_epoch(self, epoch: int, meta: Optional[dict] = None) -> None:
        """Close the current epoch's records into one durable unit."""
        raise NotImplementedError

    # -- manifest -----------------------------------------------------------

    def write_manifest(self, state: dict) -> None:
        raise NotImplementedError

    def read_manifest(self) -> Optional[dict]:
        raise NotImplementedError

    # -- maintenance --------------------------------------------------------

    def relabel(self, old: str, new: str) -> None:
        raise NotImplementedError

    def compact(self) -> Dict[str, int]:
        """Fold superseded storage together; returns reclaim stats."""
        raise NotImplementedError

    def segments(self) -> List[Dict[str, Any]]:
        """Census rows for the ``repro segments`` CLI (may be empty)."""
        return []

    def stats(self) -> Dict[str, Any]:
        """Uniform counters for observability and the CLI census."""
        return {
            "engine": self.name,
            "durable": self.durable,
            "records": self.record_count(),
            "segments": len(self.segments()),
            "segment_bytes": sum(
                int(row.get("bytes", 0)) for row in self.segments()
            ),
            "manifest_writes": self._manifest_writes,
            "compactions": self._compactions,
            "reclaimed_bytes": self._reclaimed_bytes,
        }

    def close(self) -> None:
        """Release any engine resources (files, handles)."""


class MemoryEngine(StorageEngine):
    """Today's exact behavior behind the seam: everything in process.

    Records keep *references* to the live trees (zero serialization on
    the export path, bit-identical runs), the manifest is a retained
    dict, and seals only advance counters.  A restart drill against a
    memory engine still goes through the full discard-and-recover code
    path — it just recovers from process memory instead of disk, which
    is what lets one test suite drive both engines.
    """

    durable = False
    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._records: List[tuple] = []  # (location, interval, tree)
        self._manifest: Optional[dict] = None
        self._sealed_epochs: List[Dict[str, Any]] = []

    def append_summary(
        self, location: str, interval: TimeInterval, tree: Flowtree
    ) -> None:
        self._records.append((location, interval, tree))

    def iter_summaries(
        self, policy: GeneralizationPolicy
    ) -> Iterator[SummaryRecord]:
        for location, interval, tree in list(self._records):
            yield SummaryRecord(
                location=location,
                interval=interval,
                load=(lambda t=tree: t),
            )

    def record_count(self) -> int:
        return len(self._records)

    def seal_epoch(self, epoch: int, meta: Optional[dict] = None) -> None:
        entry: Dict[str, Any] = {"epoch": epoch}
        shards = self._take_shards()
        if shards:
            entry["shards"] = shards
        if meta:
            entry.update(meta)
        self._sealed_epochs.append(entry)

    def write_manifest(self, state: dict) -> None:
        self._manifest = state
        self._manifest_writes += 1

    def read_manifest(self) -> Optional[dict]:
        return self._manifest

    def relabel(self, old: str, new: str) -> None:
        self._records = [
            (new if location == old else location, interval, tree)
            for location, interval, tree in self._records
        ]

    def compact(self) -> Dict[str, int]:
        # nothing is ever superseded in memory; report a no-op
        return {"segments_removed": 0, "reclaimed_bytes": 0}

    def sealed_epochs(self) -> List[Dict[str, Any]]:
        """The seal history (epoch index + shard handoffs), in order."""
        return list(self._sealed_epochs)

"""Pluggable storage engines for FlowDB and the hierarchy runtime.

The seam between "what the hierarchy computed" and "where that state
lives": :class:`MemoryEngine` keeps everything in process (the
historical behavior, bit-identical), :class:`SegmentLogEngine` appends
sealed Flowtree summaries to CRC'd on-disk segment files at every epoch
close and checkpoints runtime state (pending exports, replicas, epoch
counters, topology generation) in an fsync-before-rename manifest — so
a killed process reopens at the last epoch boundary with nothing lost.
"""

from repro.storage.codec import (
    atomic_write_json,
    decode_summary,
    encode_summary,
)
from repro.storage.engine import MemoryEngine, StorageEngine, SummaryRecord
from repro.storage.segment import SegmentLogEngine

__all__ = [
    "StorageEngine",
    "MemoryEngine",
    "SegmentLogEngine",
    "SummaryRecord",
    "atomic_write_json",
    "encode_summary",
    "decode_summary",
]

"""Serialization shared by every storage engine.

Three codecs live here:

* **atomic JSON** — :func:`atomic_write_json` is the one durable-write
  primitive in the repository: temp file, ``flush`` + ``fsync``,
  ``os.replace``, then ``fsync`` of the containing directory, so a
  crash at any instant leaves either the old document or the new one,
  never a torn or empty file (the bug the old ``save_flowdb`` had).
* **summaries** — :func:`encode_summary` / :func:`decode_summary` turn
  a :class:`~repro.core.summary.DataSummary` into a JSON-safe record
  and back.  Flowtree payloads ride on the canonical
  :meth:`~repro.flows.tree.Flowtree.to_dict` codec (the same format the
  segment log stores); other kinds raise :class:`~repro.errors.
  StorageError` — callers skip them and account the skip rather than
  silently persisting something that cannot be read back.
* **segment records** — :func:`encode_record` / :func:`scan_records`
  implement the length-prefixed on-disk record framing
  (``[u32 header_len][header JSON][u32 payload_len][payload]
  [u32 crc32]``).  Scanning reads headers only and *seeks past*
  payloads, which is what makes segment opens lazy; the CRC covers
  header + payload and is verified when a payload is actually loaded.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, BinaryIO, Dict, Iterator, Tuple

from repro.core.summary import DataSummary, Location, SummaryMeta, TimeInterval
from repro.errors import StorageError
from repro.flows.flowkey import GeneralizationPolicy
from repro.flows.tree import Flowtree

_U32 = struct.Struct("<I")


def fsync_directory(path: str) -> None:
    """Flush a directory's entry table (ignored where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX directory handles
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - some filesystems refuse dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, document: Any) -> int:
    """Durably replace ``path`` with ``document``; returns bytes written.

    The temp file is fsynced before the rename and the directory after
    it, so the rename itself is the commit point: a crash before it
    keeps the old file, a crash after it keeps the new one, and neither
    can surface truncated or empty content after a power loss.
    """
    payload = json.dumps(document, separators=(",", ":"))
    temp_path = f"{path}.tmp"
    with open(temp_path, "w") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)
    fsync_directory(os.path.dirname(os.path.abspath(path)))
    return len(payload)


# ---------------------------------------------------------------------------
# DataSummary <-> JSON-safe dict


def encode_summary(summary: DataSummary) -> Dict[str, Any]:
    """A JSON-safe envelope for one summary (flowtree payloads only)."""
    if summary.kind != "flowtree" or not isinstance(summary.payload, Flowtree):
        raise StorageError(
            f"summaries of kind {summary.kind!r} have no durable codec; "
            "only flowtree payloads persist"
        )
    return {
        "kind": summary.kind,
        "location": summary.meta.location.path,
        "start": summary.meta.interval.start,
        "end": summary.meta.interval.end,
        "lineage_id": summary.meta.lineage_id,
        "size_bytes": summary.size_bytes,
        "attrs": dict(summary.attrs),
        "tree": summary.payload.to_dict(),
    }


def decode_summary(
    record: Dict[str, Any], policy: GeneralizationPolicy
) -> DataSummary:
    """Rebuild a summary encoded with :func:`encode_summary`."""
    if record.get("kind") != "flowtree":
        raise StorageError(
            f"cannot decode summary of kind {record.get('kind')!r}"
        )
    return DataSummary(
        kind="flowtree",
        meta=SummaryMeta(
            interval=TimeInterval(record["start"], record["end"]),
            location=Location(record["location"]),
            lineage_id=record.get("lineage_id"),
        ),
        payload=Flowtree.from_dict(record["tree"], policy),
        size_bytes=record["size_bytes"],
        attrs=dict(record.get("attrs", {})),
    )


# ---------------------------------------------------------------------------
# segment record framing


def encode_record(header: Dict[str, Any], payload: bytes) -> bytes:
    """Frame one record: lengths up front, CRC-32 of both parts behind."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(header_bytes + payload) & 0xFFFFFFFF
    return b"".join(
        (
            _U32.pack(len(header_bytes)),
            header_bytes,
            _U32.pack(len(payload)),
            payload,
            _U32.pack(crc),
        )
    )


def scan_records(
    handle: BinaryIO,
) -> Iterator[Tuple[Dict[str, Any], int, int]]:
    """Yield ``(header, record_offset, payload_len)`` per framed record.

    Payloads are *not* read — the scan seeks past them, so opening a
    multi-megabyte segment costs only its headers.  A truncated tail
    (crash mid-append) ends the scan cleanly at the last whole record;
    a header that is not valid JSON stops it too (the CRC of any
    record behind a corrupt length field is unverifiable anyway).
    ``record_offset`` is the offset of the record's first byte, the
    address :func:`read_payload` takes.
    """
    while True:
        record_offset = handle.tell()
        prefix = handle.read(_U32.size)
        if len(prefix) < _U32.size:
            return
        (header_len,) = _U32.unpack(prefix)
        header_bytes = handle.read(header_len)
        if len(header_bytes) < header_len:
            return
        try:
            header = json.loads(header_bytes)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        length_bytes = handle.read(_U32.size)
        if len(length_bytes) < _U32.size:
            return
        (payload_len,) = _U32.unpack(length_bytes)
        payload_end = handle.tell() + payload_len
        handle.seek(payload_len, os.SEEK_CUR)
        crc_bytes = handle.read(_U32.size)
        if len(crc_bytes) < _U32.size or handle.tell() != (
            payload_end + _U32.size
        ):
            return
        yield header, record_offset, payload_len


def read_payload(path: str, record_offset: int) -> bytes:
    """Load one record's payload, verifying the stored CRC-32."""
    with open(path, "rb") as handle:
        handle.seek(record_offset)
        prefix = handle.read(_U32.size)
        if len(prefix) < _U32.size:
            raise StorageError(
                f"no record at {path} offset {record_offset} "
                "(segment truncated or rewritten)"
            )
        (header_len,) = _U32.unpack(prefix)
        header_bytes = handle.read(header_len)
        length_bytes = handle.read(_U32.size)
        if len(header_bytes) < header_len or len(length_bytes) < _U32.size:
            raise StorageError(
                f"truncated record at {path} offset {record_offset}"
            )
        (payload_len,) = _U32.unpack(length_bytes)
        payload = handle.read(payload_len)
        crc_bytes = handle.read(_U32.size)
        if len(payload) < payload_len or len(crc_bytes) < _U32.size:
            raise StorageError(
                f"truncated record at {path} offset {record_offset}"
            )
        (stored_crc,) = _U32.unpack(crc_bytes)
    crc = zlib.crc32(header_bytes + payload) & 0xFFFFFFFF
    if crc != stored_crc:
        raise StorageError(
            f"CRC mismatch in {path} at offset {record_offset}: "
            "segment record is corrupt"
        )
    return payload

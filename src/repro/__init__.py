"""repro: a reproduction of "Distributed Mega-Datasets: The Need for
Novel Computing Primitives" (Semmler, Smaragdakis, Feldmann — ICDCS 2019).

The paper is a vision paper; this library *builds the vision*:

* **Computing primitives** (:mod:`repro.core`) — the five-property
  aggregator interface and a library of primitives, from time-binned
  statistics and sketches to the paper's novel, domain-aware Flowtree.
* **Flows and the Flowtree** (:mod:`repro.flows`) — generalized flows
  over maskable features and the self-adjusting tree with the eight
  Table II operators.
* **Data stores** (:mod:`repro.datastore`) — aggregators, the three
  storage strategies, triggers, partitions, and federated queries.
* **Hierarchy and network** (:mod:`repro.hierarchy`) — both Figure 1
  settings and a byte-accounted WAN.
* **Analytics** (:mod:`repro.analytics`) — transfer patterns,
  MapReduce, pipelines, and lightweight inference.
* **Control** (:mod:`repro.control`) — controllers with conflict
  resolution and the Manager control plane.
* **Applications** (:mod:`repro.apps`) — predictive maintenance,
  process mining, supply-chain tracing, network trends, traffic
  matrices, and DDoS investigation.
* **Flowstream** (:mod:`repro.flowstream`, :mod:`repro.flowdb`,
  :mod:`repro.flowql`) — the Figure 5 system: routers → data stores →
  FlowDB → FlowQL.
* **Adaptive replication** (:mod:`repro.replication`) — ski-rental
  policies, access prediction, and the Figure 6 engine.
* **Simulation** (:mod:`repro.simulation`) — the discrete-event
  substrate and workload generators standing in for factory sensors,
  router exports, and the enterprise query trace.

The frozen public API is what this module exports under ``__all__`` —
most programs need only the runtime entry points::

    from repro import TrafficConfig, TrafficGenerator, network_4level_runtime

    rt = network_4level_runtime(regions_per_network=2, routers_per_region=2)
    gen = TrafficGenerator(TrafficConfig(sites=tuple(rt.ingest_sites())))
    for epoch in range(3):
        for site in rt.ingest_sites():
            rt.ingest(site, gen.epoch(site, epoch))
        rt.close_epoch((epoch + 1) * 60.0)
    outcome = rt.query("SELECT TOPK(5) FROM ALL BY bytes")
    print(outcome.rows)            # result access delegates
    print(outcome.plan.describe()) # ...and the routing is attached

Fault tolerance rides on the same surface: build a
:class:`~repro.faults.FaultPlan` (or parse one with
``FaultPlan.from_spec("drop=0.2,seed=7")``), pass it to the runtime or
``rt.inject_faults(plan)``, and exports retry/park/redeliver while
queries degrade honestly (``outcome.degradation`` lists exactly the
unreachable sites).
"""

from repro.core import (
    ComputingPrimitive,
    DataSummary,
    FlowtreePrimitive,
    Location,
    QueryRequest,
    SummaryMeta,
    TimeInterval,
    default_registry,
)
from repro.flows import (
    FIVE_TUPLE,
    FlowKey,
    FlowRecord,
    Flowtree,
    GeneralizationPolicy,
    Score,
)
from repro.datastore import Aggregator, DataStore
from repro.hierarchy import (
    Hierarchy,
    NetworkFabric,
    network_monitoring_hierarchy,
    smart_factory_hierarchy,
)
from repro.client import FlowQLClient
from repro.control import Controller, Manager
from repro.errors import AdmissionError
from repro.faults import FaultPlan, LinkOutage, RetryPolicy
from repro.flowdb import FlowDB
from repro.flowql import FlowQLExecutor
from repro.flowstream import Flowstream
from repro.flowstream.tiered import TieredFlowstream
from repro.obs import Observability
from repro.query import Degradation, QueryOutcome, QueryPlan
from repro.runtime import (
    HierarchyRuntime,
    LevelConfig,
    VolumeStats,
    factory_4level_runtime,
    flat_runtime,
    network_4level_runtime,
    tiered_runtime,
)
from repro.replication import (
    AdaptiveReplicationEngine,
    BreakEvenPolicy,
    DistributionAwarePolicy,
)
from repro.scenarios import (
    FactoryScenario,
    NetworkScenario,
)
from repro.serve import ServePlane
from repro.simulation import (
    Simulator,
    TrafficConfig,
    TrafficGenerator,
    build_factory,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ComputingPrimitive",
    "QueryRequest",
    "DataSummary",
    "SummaryMeta",
    "TimeInterval",
    "Location",
    "default_registry",
    "FlowtreePrimitive",
    "FIVE_TUPLE",
    "FlowKey",
    "FlowRecord",
    "Flowtree",
    "GeneralizationPolicy",
    "Score",
    "DataStore",
    "Aggregator",
    "Hierarchy",
    "NetworkFabric",
    "smart_factory_hierarchy",
    "network_monitoring_hierarchy",
    "Controller",
    "Manager",
    "FlowDB",
    "FlowQLExecutor",
    "Flowstream",
    "TieredFlowstream",
    "HierarchyRuntime",
    "LevelConfig",
    "VolumeStats",
    "flat_runtime",
    "tiered_runtime",
    "network_4level_runtime",
    "factory_4level_runtime",
    "QueryOutcome",
    "QueryPlan",
    "Degradation",
    "FlowQLClient",
    "ServePlane",
    "AdmissionError",
    "FaultPlan",
    "LinkOutage",
    "RetryPolicy",
    "Observability",
    "AdaptiveReplicationEngine",
    "BreakEvenPolicy",
    "DistributionAwarePolicy",
    "Simulator",
    "TrafficGenerator",
    "TrafficConfig",
    "build_factory",
    "FactoryScenario",
    "NetworkScenario",
]

"""repro: a reproduction of "Distributed Mega-Datasets: The Need for
Novel Computing Primitives" (Semmler, Smaragdakis, Feldmann — ICDCS 2019).

The paper is a vision paper; this library *builds the vision*:

* **Computing primitives** (:mod:`repro.core`) — the five-property
  aggregator interface and a library of primitives, from time-binned
  statistics and sketches to the paper's novel, domain-aware Flowtree.
* **Flows and the Flowtree** (:mod:`repro.flows`) — generalized flows
  over maskable features and the self-adjusting tree with the eight
  Table II operators.
* **Data stores** (:mod:`repro.datastore`) — aggregators, the three
  storage strategies, triggers, partitions, and federated queries.
* **Hierarchy and network** (:mod:`repro.hierarchy`) — both Figure 1
  settings and a byte-accounted WAN.
* **Analytics** (:mod:`repro.analytics`) — transfer patterns,
  MapReduce, pipelines, and lightweight inference.
* **Control** (:mod:`repro.control`) — controllers with conflict
  resolution and the Manager control plane.
* **Applications** (:mod:`repro.apps`) — predictive maintenance,
  process mining, supply-chain tracing, network trends, traffic
  matrices, and DDoS investigation.
* **Flowstream** (:mod:`repro.flowstream`, :mod:`repro.flowdb`,
  :mod:`repro.flowql`) — the Figure 5 system: routers → data stores →
  FlowDB → FlowQL.
* **Adaptive replication** (:mod:`repro.replication`) — ski-rental
  policies, access prediction, and the Figure 6 engine.
* **Simulation** (:mod:`repro.simulation`) — the discrete-event
  substrate and workload generators standing in for factory sensors,
  router exports, and the enterprise query trace.

Quickstart::

    from repro import Flowstream, TrafficGenerator, TrafficConfig

    fs = Flowstream(sites=["region1/router1", "region2/router1"])
    gen = TrafficGenerator(TrafficConfig(sites=tuple(fs.sites)))
    for epoch in range(3):
        for site in fs.sites:
            fs.ingest(site, gen.epoch(site, epoch))
        fs.close_epoch((epoch + 1) * 60.0)
    print(fs.query("SELECT TOPK(5) FROM ALL BY bytes").rows)
"""

from repro.core import (
    ComputingPrimitive,
    DataSummary,
    FlowtreePrimitive,
    Location,
    QueryRequest,
    SummaryMeta,
    TimeInterval,
    default_registry,
)
from repro.flows import (
    FIVE_TUPLE,
    FlowKey,
    FlowRecord,
    Flowtree,
    GeneralizationPolicy,
    Score,
)
from repro.datastore import Aggregator, DataStore
from repro.hierarchy import (
    Hierarchy,
    NetworkFabric,
    network_monitoring_hierarchy,
    smart_factory_hierarchy,
)
from repro.control import Controller, Manager
from repro.flowdb import FlowDB
from repro.flowql import FlowQLExecutor
from repro.flowstream import Flowstream
from repro.flowstream.tiered import TieredFlowstream
from repro.runtime import (
    HierarchyRuntime,
    LevelConfig,
    VolumeStats,
)
from repro.replication import (
    AdaptiveReplicationEngine,
    BreakEvenPolicy,
    DistributionAwarePolicy,
)
from repro.scenarios import (
    FactoryScenario,
    NetworkScenario,
)
from repro.simulation import (
    Simulator,
    TrafficConfig,
    TrafficGenerator,
    build_factory,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ComputingPrimitive",
    "QueryRequest",
    "DataSummary",
    "SummaryMeta",
    "TimeInterval",
    "Location",
    "default_registry",
    "FlowtreePrimitive",
    "FIVE_TUPLE",
    "FlowKey",
    "FlowRecord",
    "Flowtree",
    "GeneralizationPolicy",
    "Score",
    "DataStore",
    "Aggregator",
    "Hierarchy",
    "NetworkFabric",
    "smart_factory_hierarchy",
    "network_monitoring_hierarchy",
    "Controller",
    "Manager",
    "FlowDB",
    "FlowQLExecutor",
    "Flowstream",
    "TieredFlowstream",
    "HierarchyRuntime",
    "LevelConfig",
    "VolumeStats",
    "AdaptiveReplicationEngine",
    "BreakEvenPolicy",
    "DistributionAwarePolicy",
    "Simulator",
    "TrafficGenerator",
    "TrafficConfig",
    "build_factory",
    "FactoryScenario",
    "NetworkScenario",
]

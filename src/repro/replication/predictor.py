"""Access prediction from partition history (Figure 6, step 2).

The manager "records, for every partition, the time at which it is
accessed and the data volume of query results" and uses it to "predict
further data transfers".  The :class:`AccessPredictor` does exactly
that: partitions idle longer than ``completion_timeout`` are treated as
finished, their total transfer volume joins the empirical demand
distribution, and live partitions get conditional-expectation forecasts
``E[remaining | demand > spent]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class _LivePartition:
    spent_bytes: int = 0
    accesses: int = 0
    last_access: float = 0.0


@dataclass
class AccessPredictor:
    """Empirical demand distribution plus per-partition live state."""

    completion_timeout: float = 3600.0
    completed_demands: List[int] = field(default_factory=list)
    _live: Dict[str, _LivePartition] = field(default_factory=dict)

    def record_access(
        self, partition_id: str, result_bytes: int, time: float
    ) -> None:
        """Account one remote access of a partition."""
        state = self._live.setdefault(partition_id, _LivePartition())
        state.spent_bytes += result_bytes
        state.accesses += 1
        state.last_access = time

    def sweep(self, now: float) -> List[str]:
        """Mark idle partitions completed; returns their ids.

        A completed partition's total demand enters the distribution
        that forecasts *future* partitions — the paper's "older
        partitions ... predict future access for partitions created at a
        later date".
        """
        finished = [
            pid
            for pid, state in self._live.items()
            if now - state.last_access >= self.completion_timeout
        ]
        for pid in finished:
            self.completed_demands.append(self._live.pop(pid).spent_bytes)
        return finished

    def spent(self, partition_id: str) -> int:
        """Bytes shipped so far for a live partition (0 if unseen)."""
        state = self._live.get(partition_id)
        return state.spent_bytes if state else 0

    def expected_remaining(self, partition_id: str) -> Optional[float]:
        """``E[total - spent | total > spent]`` under the empirical
        distribution; None before any partition has completed."""
        if not self.completed_demands:
            return None
        spent = self.spent(partition_id)
        exceeding = [d for d in self.completed_demands if d > spent]
        if not exceeding:
            return 0.0
        return sum(d - spent for d in exceeding) / len(exceeding)

    def exceed_probability(self, partition_id: str, target: float) -> float:
        """P(total demand > target) for a live partition, conditioned on
        what it has already spent."""
        if not self.completed_demands:
            return 0.0
        spent = self.spent(partition_id)
        conditioning = [d for d in self.completed_demands if d > spent]
        if not conditioning:
            return 0.0
        return sum(1 for d in conditioning if d > target) / len(conditioning)

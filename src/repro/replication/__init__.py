"""Transfer optimization via adaptive replication (Section VII, Fig. 6).

The data store can either keep **shipping query results** over the
network (rent) or **replicate the partition** once (buy).  This package
frames that as ski rental:

* :mod:`repro.replication.ski_rental` — decision policies: never/always,
  count/bytes/percent heuristics, the deterministic break-even rule
  (2-competitive, Karlin et al.), the randomized e/(e−1) rule, and the
  distribution-aware average-case-optimal threshold (Fujiwara & Iwama).
* :mod:`repro.replication.predictor` — learns the distribution of
  per-partition transfer volumes from completed partitions, as the
  paper proposes ("aggregate result size for older partitions ... can
  be used to predict future access").
* :mod:`repro.replication.engine` — applies a policy to live partition
  accesses, triggers replication between data stores, and accounts the
  cost of every choice; includes the offline optimum for benchmarking.
"""

from repro.replication.ski_rental import (
    AlwaysReplicate,
    BreakEvenPolicy,
    ConstrainedSkiRental,
    CountThresholdPolicy,
    DistributionAwarePolicy,
    NeverReplicate,
    PartitionAccessState,
    PercentThresholdPolicy,
    PredictorPolicy,
    RandomizedSkiRental,
    ReplicationPolicy,
)
from repro.replication.predictor import AccessPredictor
from repro.replication.engine import (
    AdaptiveReplicationEngine,
    ReplicationOutcome,
    TraceCosts,
    offline_optimal_cost,
    simulate_policy_on_trace,
)

__all__ = [
    "ReplicationPolicy",
    "PartitionAccessState",
    "NeverReplicate",
    "AlwaysReplicate",
    "CountThresholdPolicy",
    "PercentThresholdPolicy",
    "BreakEvenPolicy",
    "RandomizedSkiRental",
    "DistributionAwarePolicy",
    "PredictorPolicy",
    "ConstrainedSkiRental",
    "AccessPredictor",
    "AdaptiveReplicationEngine",
    "ReplicationOutcome",
    "TraceCosts",
    "simulate_policy_on_trace",
    "offline_optimal_cost",
]

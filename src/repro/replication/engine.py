"""The adaptive-replication engine and its evaluation harness.

Two entry points:

* :func:`simulate_policy_on_trace` — replay a partition access trace
  (e.g. from :class:`~repro.simulation.querytrace.QueryTraceGenerator`)
  under one policy and total up the cost.  This is what the Figure 6
  benchmark sweeps; :func:`offline_optimal_cost` provides the
  clairvoyant lower bound for competitive ratios.
* :class:`AdaptiveReplicationEngine` — the live integration: watch two
  data stores, record every remote access (Fig. 6 step 1-2), and fire
  :meth:`~repro.datastore.store.DataStore.replicate_partition` when the
  policy says buy (steps 3-4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.datastore.store import DataStore
from repro.replication.ski_rental import (
    PartitionAccessState,
    ReplicationPolicy,
)
from repro.simulation.querytrace import AccessEvent


@dataclass
class TraceCosts:
    """Cost breakdown of one policy on one trace (bytes)."""

    policy: str
    shipped_bytes: int = 0
    replication_bytes: int = 0
    replications: int = 0
    accesses: int = 0
    accesses_served_locally: int = 0

    @property
    def total_bytes(self) -> int:
        """Everything that crossed the network."""
        return self.shipped_bytes + self.replication_bytes

    def competitive_ratio(self, optimal_bytes: int) -> float:
        """Cost relative to the offline optimum."""
        if optimal_bytes == 0:
            return 1.0 if self.total_bytes == 0 else float("inf")
        return self.total_bytes / optimal_bytes


def simulate_policy_on_trace(
    trace: Iterable[AccessEvent],
    policy: ReplicationPolicy,
    partition_bytes: int,
    partition_sizes: Optional[Dict[str, int]] = None,
) -> TraceCosts:
    """Replay a time-ordered access trace under one policy.

    Each event is a remote query for one partition.  If the partition is
    already replicated the access is free (served locally); otherwise
    its result bytes are shipped and the policy is consulted.  When a
    partition goes quiet forever, its demand is reported to the policy
    (supporting distribution-aware learning) — detected here simply by
    the trace ending, processed in time order per partition.
    """
    costs = TraceCosts(policy=policy.name)
    states: Dict[str, PartitionAccessState] = {}
    demand: Dict[str, int] = {}
    events = sorted(trace, key=lambda e: (e.time, e.partition_id))
    last_access_index: Dict[str, int] = {}
    for index, event in enumerate(events):
        last_access_index[event.partition_id] = index
    for index, event in enumerate(events):
        size = (
            partition_sizes.get(event.partition_id, partition_bytes)
            if partition_sizes
            else partition_bytes
        )
        state = states.setdefault(
            event.partition_id,
            PartitionAccessState(
                partition_id=event.partition_id, partition_bytes=size
            ),
        )
        costs.accesses += 1
        demand[event.partition_id] = (
            demand.get(event.partition_id, 0) + event.result_bytes
        )
        if state.replicated:
            costs.accesses_served_locally += 1
        else:
            state.record(event.result_bytes)
            costs.shipped_bytes += event.result_bytes
            if policy.should_replicate(state):
                state.replicated = True
                costs.replication_bytes += size
                costs.replications += 1
        if last_access_index[event.partition_id] == index:
            # report the partition's *full* demand — what shipping every
            # access would have cost — so distribution learning is not
            # truncated at the replication point
            policy.observe_completed(demand[event.partition_id])
    return costs


def offline_optimal_cost(
    trace: Iterable[AccessEvent],
    partition_bytes: int,
    partition_sizes: Optional[Dict[str, int]] = None,
) -> int:
    """The clairvoyant optimum: per partition, ``min(total demand, C)``.

    (Replicating before the first access costs exactly ``C``; anything
    in between is dominated by one of the two extremes.)
    """
    demand: Dict[str, int] = {}
    for event in trace:
        demand[event.partition_id] = (
            demand.get(event.partition_id, 0) + event.result_bytes
        )
    total = 0
    for partition_id, total_demand in demand.items():
        size = (
            partition_sizes.get(partition_id, partition_bytes)
            if partition_sizes
            else partition_bytes
        )
        total += min(total_demand, size)
    return total


@dataclass(frozen=True)
class ReplicationOutcome:
    """One replication performed by the live engine."""

    partition_id: str
    origin: str
    destination: str
    time: float
    partition_bytes: int


class AdaptiveReplicationEngine:
    """Live policy enforcement between data stores (Fig. 6 steps 1-4).

    Wire it between a *consumer* store (where queries arrive) and the
    *producer* stores that own the data: call :meth:`on_remote_access`
    after every shipped result (the manager records these), and the
    engine replicates the partition to the consumer when the policy
    fires.
    """

    def __init__(self, policy: ReplicationPolicy) -> None:
        self.policy = policy
        self._states: Dict[str, PartitionAccessState] = {}
        self.outcomes: List[ReplicationOutcome] = []
        self.shipped_bytes = 0
        self.replication_bytes = 0

    def on_remote_access(
        self,
        producer: DataStore,
        consumer: DataStore,
        partition_id: str,
        result_bytes: int,
        now: float,
    ) -> bool:
        """Record a shipped result; maybe replicate.  Returns True when a
        replication was triggered."""
        partition = producer.catalog.get(partition_id)
        state = self._states.setdefault(
            partition_id,
            PartitionAccessState(
                partition_id=partition_id,
                partition_bytes=partition.size_bytes,
            ),
        )
        if state.replicated:
            return False
        state.record(result_bytes)
        self.shipped_bytes += result_bytes
        if not self.policy.should_replicate(state):
            return False
        state.replicated = True
        producer.replicate_partition(partition_id, consumer, now=now)
        self.replication_bytes += partition.size_bytes
        self.outcomes.append(
            ReplicationOutcome(
                partition_id=partition_id,
                origin=producer.location.path,
                destination=consumer.location.path,
                time=now,
                partition_bytes=partition.size_bytes,
            )
        )
        return True

    def complete_partition(self, partition_id: str) -> None:
        """Tell the policy a partition's demand is final."""
        state = self._states.get(partition_id)
        if state is not None:
            self.policy.observe_completed(state.shipped_bytes)

    @property
    def total_bytes(self) -> int:
        """All bytes this engine caused to cross the network."""
        return self.shipped_bytes + self.replication_bytes

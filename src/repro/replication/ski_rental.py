"""Ski-rental policies for the ship-vs-replicate decision.

Terminology mapping (Section VII): *renting* is shipping one query's
result bytes across the network; *buying* is replicating the whole
partition (paying its size once, after which queries are free).  The
number of future queries is unknown — exactly the ski-rental setting.

All policies answer one question after each remote access: *replicate
now?*  They see the partition's access state (bytes shipped so far,
access count, partition size) and, for the distribution-aware policy, a
predictor trained on completed partitions.

Classic results implemented here:

* **Break-even** (Karlin et al. 1988): buy once rent paid equals the
  purchase price — never worse than twice the offline optimum, and no
  deterministic policy does better in the worst case.
* **Randomized** (Karlin et al. 1994): buy at a random fraction of the
  price drawn from density ``e^x/(e-1)`` on [0,1] — e/(e−1) ≈ 1.58
  competitive in expectation.
* **Distribution-aware** (Fujiwara & Iwama 2005; Khanafer et al. 2013):
  with the demand distribution known (here: estimated from completed
  partitions), choose the threshold minimizing *expected* total cost.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ReplicationError


@dataclass
class PartitionAccessState:
    """What a policy knows about one partition when deciding."""

    partition_id: str
    partition_bytes: int
    shipped_bytes: int = 0
    access_count: int = 0
    replicated: bool = False

    def record(self, result_bytes: int) -> None:
        """Account one shipped query result."""
        self.shipped_bytes += result_bytes
        self.access_count += 1


class ReplicationPolicy(abc.ABC):
    """Decides, after each shipped result, whether to replicate now."""

    name: str = "abstract"

    @abc.abstractmethod
    def should_replicate(self, state: PartitionAccessState) -> bool:
        """True to replicate the partition immediately."""

    def observe_completed(self, total_shipped_bytes: int) -> None:
        """Feed the final transfer volume of a completed partition.

        Only distribution-aware policies learn from this; the default is
        a no-op.
        """


class NeverReplicate(ReplicationPolicy):
    """Baseline: always ship queries (pure rent)."""

    name = "never"

    def should_replicate(self, state: PartitionAccessState) -> bool:
        return False


class AlwaysReplicate(ReplicationPolicy):
    """Baseline: replicate on first access (pure buy)."""

    name = "always"

    def should_replicate(self, state: PartitionAccessState) -> bool:
        return True


class CountThresholdPolicy(ReplicationPolicy):
    """Section IV heuristic: replicate after ``n`` remote accesses."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ReplicationError(f"access threshold must be >= 1, got {n}")
        self.n = n
        self.name = f"count>={n}"

    def should_replicate(self, state: PartitionAccessState) -> bool:
        return state.access_count >= self.n


class PercentThresholdPolicy(ReplicationPolicy):
    """Section IV heuristic: replicate when shipped bytes reach ``p``
    percent of the partition's own size."""

    def __init__(self, percent: float) -> None:
        if percent <= 0:
            raise ReplicationError(f"percent must be positive, got {percent}")
        self.percent = percent
        self.name = f"volume>={percent:g}%"

    def should_replicate(self, state: PartitionAccessState) -> bool:
        return (
            state.shipped_bytes
            >= state.partition_bytes * self.percent / 100.0
        )


class BreakEvenPolicy(ReplicationPolicy):
    """Deterministic ski rental: buy when rent paid >= purchase price.

    Guarantees total cost <= 2x the offline optimum for every access
    sequence (the classic competitive bound).
    """

    name = "break-even"

    def should_replicate(self, state: PartitionAccessState) -> bool:
        return state.shipped_bytes >= state.partition_bytes


class RandomizedSkiRental(ReplicationPolicy):
    """Randomized ski rental with the optimal e/(e−1) distribution.

    Each partition draws a threshold fraction ``z`` with density
    ``e^z / (e - 1)`` on [0, 1] (inverse-CDF sampling) and replicates
    once shipped bytes reach ``z * partition_bytes``.
    """

    name = "randomized"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)
        self._thresholds: dict = {}

    def _threshold_fraction(self, partition_id: str) -> float:
        fraction = self._thresholds.get(partition_id)
        if fraction is None:
            u = self._rng.random()
            # inverse CDF of f(z) = e^z/(e-1):  F(z) = (e^z - 1)/(e - 1)
            fraction = math.log(1.0 + u * (math.e - 1.0))
            self._thresholds[partition_id] = fraction
        return fraction

    def should_replicate(self, state: PartitionAccessState) -> bool:
        fraction = self._threshold_fraction(state.partition_id)
        return state.shipped_bytes >= fraction * state.partition_bytes


@dataclass
class DistributionAwarePolicy(ReplicationPolicy):
    """Average-case-optimal threshold from observed transfer volumes.

    Keeps the empirical distribution of per-partition total shipped
    bytes (fed via :meth:`observe_completed`).  For a replication cost
    ``C`` and threshold ``t``, a partition with eventual demand ``R``
    costs ``R`` if ``R < t`` else ``t + C``; the policy picks the ``t``
    among the observed demands (plus "never") minimizing the empirical
    expectation — the finite-sample analogue of the Fujiwara–Iwama
    average-case optimum.  Until ``min_observations`` partitions have
    completed it falls back to break-even.
    """

    min_observations: int = 10
    max_history: int = 10_000
    name: str = field(default="distribution-aware", init=False)
    _history: List[int] = field(default_factory=list, init=False)
    _cached_threshold: Optional[float] = field(default=None, init=False)
    _cached_cost: Optional[int] = field(default=None, init=False)

    def observe_completed(self, total_shipped_bytes: int) -> None:
        self._history.append(total_shipped_bytes)
        if len(self._history) > self.max_history:
            self._history = self._history[-self.max_history :]
        self._cached_threshold = None

    def optimal_threshold(self, replication_cost: int) -> float:
        """The expected-cost-minimizing threshold for cost ``C``.

        Candidates are the observed demands and infinity (never buy);
        the optimum of the piecewise-linear objective lies on one of
        them.
        """
        if self._cached_threshold is not None and self._cached_cost == replication_cost:
            return self._cached_threshold
        demands = sorted(self._history)
        # the optimum of the piecewise-linear objective lies on 0 (buy at
        # first access), one of the observed demands, or infinity (never)
        candidates: List[float] = [0.0] + [float(d) for d in demands] + [
            math.inf
        ]

        def expected_cost(threshold: float) -> float:
            total = 0.0
            for demand in demands:
                if demand < threshold:
                    total += demand
                else:
                    total += threshold + replication_cost
            return total / len(demands)

        best = min(candidates, key=expected_cost)
        self._cached_threshold = best
        self._cached_cost = replication_cost
        return best

    def should_replicate(self, state: PartitionAccessState) -> bool:
        if len(self._history) < self.min_observations:
            return state.shipped_bytes >= state.partition_bytes
        threshold = self.optimal_threshold(state.partition_bytes)
        return state.shipped_bytes >= threshold


@dataclass
class PredictorPolicy(ReplicationPolicy):
    """Myopic expected-cost rule over the learned demand distribution.

    Section VII: "More sophisticated strategies can be developed using
    predictions of future accesses."  After each shipped result this
    policy compares the *conditional expected remaining demand*
    ``E[total - spent | total > spent]`` (estimated from completed
    partitions) against the purchase price, and buys as soon as the
    expected future rent alone exceeds the price.  Falls back to
    break-even until ``min_observations`` partitions have completed.
    """

    min_observations: int = 10
    max_history: int = 10_000
    name: str = field(default="predictor", init=False)
    _history: List[int] = field(default_factory=list, init=False)

    def observe_completed(self, total_shipped_bytes: int) -> None:
        self._history.append(total_shipped_bytes)
        if len(self._history) > self.max_history:
            self._history = self._history[-self.max_history :]

    def expected_remaining(self, spent: int) -> Optional[float]:
        """``E[total - spent | total > spent]`` over observed demands."""
        if not self._history:
            return None
        exceeding = [d for d in self._history if d > spent]
        if not exceeding:
            return 0.0
        return sum(d - spent for d in exceeding) / len(exceeding)

    def should_replicate(self, state: PartitionAccessState) -> bool:
        # break-even backstop: the prediction can only make us buy
        # *earlier* than break-even would, never later — so the
        # worst-case 2x guarantee survives the learned component being
        # wrong (e.g. early history is biased toward short-lived
        # partitions, which complete first)
        if state.shipped_bytes >= state.partition_bytes:
            return True
        if len(self._history) < self.min_observations:
            return False
        remaining = self.expected_remaining(state.shipped_bytes)
        if remaining is None:
            return False
        # weight by the probability any future demand exists at all
        p_more = sum(
            1 for d in self._history if d > state.shipped_bytes
        ) / len(self._history)
        return p_more * remaining > state.partition_bytes


class ConstrainedSkiRental(ReplicationPolicy):
    """A replication-budget wrapper (Khanafer et al., INFOCOM 2013).

    The constrained ski-rental problem caps how much may be spent on
    buying.  This wrapper delegates to an inner policy but refuses
    replications once the cumulative purchase cost would exceed
    ``budget_bytes`` — modeling a store whose replica space or transfer
    allowance is capped.
    """

    def __init__(
        self, inner: ReplicationPolicy, budget_bytes: int
    ) -> None:
        if budget_bytes < 0:
            raise ReplicationError(
                f"budget must be non-negative, got {budget_bytes}"
            )
        self.inner = inner
        self.budget_bytes = budget_bytes
        self.spent_bytes = 0
        self.refused = 0
        self.name = f"constrained({inner.name})"

    def observe_completed(self, total_shipped_bytes: int) -> None:
        self.inner.observe_completed(total_shipped_bytes)

    def should_replicate(self, state: PartitionAccessState) -> bool:
        if not self.inner.should_replicate(state):
            return False
        if self.spent_bytes + state.partition_bytes > self.budget_bytes:
            self.refused += 1
            return False
        self.spent_bytes += state.partition_bytes
        return True


def default_policies(seed: int = 0) -> Sequence[ReplicationPolicy]:
    """The policy lineup compared in the Figure 6 benchmark."""
    return (
        NeverReplicate(),
        AlwaysReplicate(),
        CountThresholdPolicy(3),
        PercentThresholdPolicy(50.0),
        BreakEvenPolicy(),
        RandomizedSkiRental(seed=seed),
        DistributionAwarePolicy(),
    )

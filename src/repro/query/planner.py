"""The federated FlowQL planner: one hierarchy-aware query plane.

The paper's central loop (Figs. 3-6) is query-driven: drilldown routes
work *down* the hierarchy, repeated access triggers caching and
ski-rental replication.  :class:`FederatedQueryPlanner` is where those
pieces meet:

* **Routing** — a query whose sites/window the root FlowDB covers runs
  on the cloud executor unchanged; otherwise the planner fans out to
  the shallowest store-bearing level whose stores cover the requested
  sites, rehydrates their partition summaries, recombines the partial
  trees with Merge (and Diff for ``VS``), and applies the same Table II
  operator tail as the cloud path.
* **Caching** — results are memoized in a :class:`QueryCache` keyed on
  (plan, window); :meth:`on_epoch_closed` drops the cache so an epoch
  boundary never serves stale answers.
* **Replication feed** — every remote partition read is recorded
  through :meth:`Manager.record_remote_access`, so real FlowQL traffic
  (not a synthetic trace) drives the Fig. 6 adaptive-replication cycle.
  Partitions the engine has replicated to the planner's root-side
  replica store are served locally on later queries — no WAN traffic.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.datastore.cache import QueryCache
from repro.datastore.partitions import Partition
from repro.datastore.recombine import combine_summaries
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.datastore.summary_query import approx_result_bytes, rehydrate
from repro.errors import FlowQLPlanningError, TransferError
from repro.flowql.ast import FlowQLQuery, TimeSpec
from repro.flowql.executor import FlowQLResult, apply_operator
from repro.flowql.parser import parse
from repro.flows.tree import Flowtree
from repro.obs.bridge import QUERY_SECONDS
from repro.query.plan import (
    ROUTE_CLOUD,
    ROUTE_FEDERATED,
    CacheInfo,
    Degradation,
    QueryOutcome,
    QueryPlan,
    SiteRead,
)
from repro.query.subscriptions import SubscriptionRegistry

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runtime import HierarchyRuntime


def _covers(label: str, site: str) -> bool:
    """Whether a store labeled ``label`` holds exactly ``site``'s data.

    A store covers a requested site when it *is* that site or sits
    strictly below it — an ancestor store's merged tree would overcount
    (it folds in the site's siblings), so it never covers.
    """
    return label == site or label.startswith(site + "/")


class FederatedQueryPlanner:
    """Routes FlowQL across a :class:`HierarchyRuntime`'s stores."""

    def __init__(
        self,
        runtime: "HierarchyRuntime",
        cache: Optional[QueryCache] = None,
        replica_budget_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        self.runtime = runtime
        #: reactive result cache; set to None to disable caching
        self.cache = cache if cache is not None else QueryCache()
        # the landing zone for shipped partials and bought replicas: a
        # root-located store that is *not* registered with the runtime
        # (registering it would make the root part of the rollup)
        self.replica_store = DataStore(
            runtime.hierarchy.root.location,
            RoundRobinStorage(replica_budget_bytes),
            fabric=runtime.fabric,
        )
        #: the planner's notion of "now" (advanced by epoch closes)
        self.clock = 0.0
        #: the routing decision of the most recent execute()
        self.last_plan: Optional[QueryPlan] = None
        #: standing queries, delta-maintained at every epoch close
        self.subscriptions = SubscriptionRegistry(self)
        # the highest FlowDB entry id already inspected for late
        # deliveries (parked exports landing after their epoch closed)
        self._late_watermark = runtime.db.max_entry_id()

    def _topology_generation(self) -> int:
        """The runtime's live topology generation (0 when static)."""
        model = getattr(self.runtime, "model", None)
        return 0 if model is None else model.generation

    # -- plan selection ------------------------------------------------------

    def plan(self, query: FlowQLQuery) -> QueryPlan:
        """Decide where one parsed query executes (no side effects)."""
        window = (query.time.start, query.time.end)
        if self._cloud_covers(query):
            return QueryPlan(
                route=ROUTE_CLOUD, window=window, sites=list(query.sites)
            )
        level, labels = self._federated_target(query)
        return QueryPlan(
            route=ROUTE_FEDERATED, window=window, level=level, sites=labels
        )

    def _windows(self, query: FlowQLQuery) -> List[TimeSpec]:
        specs = [query.time]
        if query.vs_time is not None:
            specs.append(query.vs_time)
        return specs

    def _cloud_covers(self, query: FlowQLQuery) -> bool:
        """Whether the root FlowDB holds data for every site and window."""
        db = self.runtime.db
        sites = query.sites or None
        try:
            return all(
                db.entries(sites, spec.start, spec.end)
                for spec in self._windows(query)
            )
        except FlowQLPlanningError:
            # sites not indexed at the root: drill into the hierarchy
            return False

    def _federated_target(
        self, query: FlowQLQuery
    ) -> Tuple[str, List[str]]:
        """The shallowest store-bearing level covering the query."""
        for level in self.runtime.store_levels():
            labels = self._covering_labels(level, query)
            if labels is not None:
                return level, labels
        raise FlowQLPlanningError(
            "no level's stores cover the requested sites/window "
            f"(sites={query.sites or None}, "
            f"start={query.time.start}, end={query.time.end})"
        )

    def _covering_labels(
        self, level: str, query: FlowQLQuery
    ) -> Optional[List[str]]:
        """Site labels participating at one level, or None if the level
        cannot cover every requested site in every query window."""
        stores = self.runtime.stores_at_level(level)
        participating: set = set()
        for spec in self._windows(query):
            active = {
                label
                for label, store in stores.items()
                if self._window_partitions(store, spec.start, spec.end)
            }
            if query.sites:
                active = {
                    label
                    for label in active
                    if any(_covers(label, site) for site in query.sites)
                }
                for site in query.sites:
                    if not any(_covers(label, site) for label in active):
                        return None
            elif not active:
                return None
            participating |= active
        return sorted(participating)

    # -- execution -----------------------------------------------------------

    def execute(
        self, flowql: Union[str, FlowQLQuery], now: Optional[float] = None
    ) -> QueryOutcome:
        """Plan and run one FlowQL query (text or parsed).

        Returns a typed :class:`~repro.query.plan.QueryOutcome` — the
        result plus its plan, cache provenance, and (when covering
        stores were unreachable) a :class:`~repro.query.plan.
        Degradation` record instead of an exception.  Degraded partial
        answers are never cached.
        """
        query = parse(flowql) if isinstance(flowql, str) else flowql
        now = self.clock if now is None else now
        obs = self.runtime.obs
        started = time.perf_counter()
        with obs.span("query", operator=query.select.name) as span:
            outcome = self._execute_planned(query, now)
            span.set_attr("route", outcome.plan.route)
            span.set_attr("cache_hit", outcome.cache.hit)
            if outcome.degradation is not None:
                span.set_attr("degraded", True)
        obs.observe(
            QUERY_SECONDS,
            time.perf_counter() - started,
            route="cached" if outcome.cache.hit else outcome.plan.route,
        )
        return outcome

    def _execute_planned(
        self, query: FlowQLQuery, now: float
    ) -> QueryOutcome:
        plan = self.plan(query)
        stats = self.runtime.stats
        key = None
        if self.cache is not None:
            key = self.cache.key_for(
                "flowql",
                self._cache_request(query, plan),
                query.time.start,
                query.time.end,
            )
            plan.cache_key = key
            entry = self.cache.get(key, now)
            if entry is not None:
                plan.cache_hit = True
                stats.queries_cached += 1
                self.last_plan = plan
                return QueryOutcome(
                    result=entry.value.copy(),
                    plan=plan,
                    cache=CacheInfo(hit=True, key=key),
                )
        degradation: Optional[Degradation] = None
        if plan.route == ROUTE_CLOUD:
            result = self.runtime.executor.execute_query(query)
            stats.queries_cloud += 1
        else:
            degradation = Degradation()
            result = self._execute_federated(plan, query, now, degradation)
            stats.queries_federated += 1
            if degradation.is_degraded:
                stats.queries_degraded += 1
            else:
                degradation = None
        if self.cache is not None and degradation is None:
            # a partial answer must not satisfy tomorrow's full query
            self.cache.put(
                key,
                result.copy(),
                approx_result_bytes((result.scalar, result.rows)),
                now,
                window=self._effective_window(query),
            )
        self.last_plan = plan
        return QueryOutcome(
            result=result,
            plan=plan,
            degradation=degradation,
            cache=CacheInfo(hit=False, key=key),
        )

    @staticmethod
    def _effective_window(
        query: FlowQLQuery,
    ) -> Tuple[Optional[float], Optional[float]]:
        """The hull of every window the query reads (FROM and VS).

        This is what epoch-scoped cache invalidation keys on: a result
        whose hull closed before the previous boundary cannot be
        changed by newly sealed epochs, so its cache entry survives.
        ``None`` on either side means unbounded (always invalidated).
        """
        starts = [query.time.start]
        ends = [query.time.end]
        if query.vs_time is not None:
            starts.append(query.vs_time.start)
            ends.append(query.vs_time.end)
        start = None if any(s is None for s in starts) else min(starts)
        end = None if any(e is None for e in ends) else max(ends)
        return (start, end)

    def _cache_request(
        self, query: FlowQLQuery, plan: QueryPlan
    ) -> QueryRequest:
        """The (plan, query) fingerprint the cache keys on."""
        return QueryRequest(
            operator=query.select.name,
            params={
                "args": tuple(query.select.args),
                "route": plan.route,
                "level": plan.level,
                "sites": tuple(query.sites),
                "where": tuple(
                    (r.feature, r.value, r.mask) for r in query.where
                ),
                "metric": query.metric,
                "limit": query.limit,
                "vs": (
                    (query.vs_time.start, query.vs_time.end)
                    if query.vs_time is not None
                    else None
                ),
                # a replica promotion mid-window changes how (and from
                # where) a federated plan reads; keying on the replica
                # generation retires entries cached before the promotion
                "replica_gen": len(self.replica_store.replicas.all()),
                # live reconfiguration (join/leave/split/merge/migrate)
                # changes which stores exist and where; keying on the
                # topology generation retires entries cached under the
                # previous shape
                "topology_gen": self._topology_generation(),
            },
        )

    def _execute_federated(
        self,
        plan: QueryPlan,
        query: FlowQLQuery,
        now: float,
        degradation: Degradation,
    ) -> FlowQLResult:
        tree = self._assemble(plan, query, query.time, now, degradation)
        if query.vs_time is not None:
            tree = tree.diff(
                self._assemble(plan, query, query.vs_time, now, degradation)
            )
        volume = self.runtime.stats.level(plan.level)
        volume.queries_served += 1
        volume.query_bytes_out += plan.shipped_bytes
        return apply_operator(tree, query)

    def _assemble(
        self,
        plan: QueryPlan,
        query: FlowQLQuery,
        spec: TimeSpec,
        now: float,
        degradation: Degradation,
    ) -> Flowtree:
        """One window's partial trees from the plan's level, merged.

        A store whose read fails on a faulty link is retried against
        replica coverage, then against covering stores at other levels;
        what stays unreachable lands in ``degradation`` and the merge
        proceeds over the surviving partials.
        """
        stores = self.runtime.stores_at_level(plan.level)
        trees: List[Flowtree] = []
        for label in sorted(stores):
            if query.sites and not any(
                _covers(label, site) for site in query.sites
            ):
                continue
            partitions = self._window_partitions(
                stores[label], spec.start, spec.end
            )
            if not partitions:
                continue
            try:
                read, site_trees = self._read_store(
                    label, plan.level, stores[label], partitions, now
                )
                plan.reads.append(read)
            except TransferError as exc:
                (
                    reads, site_trees, covered, stale, attempted,
                ) = self._degraded_read(
                    label, plan.level, stores[label], partitions, spec, now
                )
                plan.reads.extend(reads)
                if not covered:
                    degradation.note(
                        label, stale, str(exc), attempted=attempted
                    )
            trees.extend(site_trees)
        if not trees:
            if degradation.is_degraded:
                # every covering store was unreachable: an honest empty
                # partial beats an exception — the degradation record
                # carries what is missing
                return Flowtree(
                    self.runtime.policy,
                    node_budget=self.runtime.db.merge_node_budget,
                )
            raise FlowQLPlanningError(
                f"no partitions at level {plan.level!r} match the window "
                f"(start={spec.start}, end={spec.end})"
            )
        merged = Flowtree(
            trees[0].policy,
            node_budget=self.runtime.db.merge_node_budget,
            metric=trees[0].metric,
        )
        for tree in trees:
            merged.merge(tree)
        return merged

    def _degraded_read(
        self,
        label: str,
        level: str,
        store: DataStore,
        partitions: List[Partition],
        spec: TimeSpec,
        now: float,
    ) -> Tuple[
        List[SiteRead], List[Flowtree], bool, Optional[float], List[str]
    ]:
        """Fallback coverage for a store whose remote read failed.

        Tries, in order: root-side replicas of the failed store's
        partitions (no fabric traffic), then covering stores at other
        store-bearing levels strictly under the failed store.  Returns
        ``(reads, trees, fully_covered, stale_through, attempted)`` —
        ``fully_covered=False`` means the site must be reported in the
        degradation record, with the served data complete only through
        ``stale_through``; ``attempted`` lists every node path the
        fallback chain actually tried (the failed store first), which
        lands in :attr:`Degradation.attempted_paths` for operator
        debugging and gateway error bodies.
        """
        attempted = [store.location.path]
        # replicas answer locally even while the link is down
        read, trees = self._read_store(
            label, level, store, partitions, now, replicas_only=True
        )
        attempted.append(self.replica_store.location.path)
        reads = [read] if read.replica_partitions else []
        if len(read.replica_partitions) == len(partitions):
            return reads, trees, True, None, attempted
        # shallower/deeper coverage: stores at other levels holding
        # exactly this site's data (never an ancestor — it overcounts)
        for other_level in self.runtime.store_levels():
            if other_level == level:
                continue
            candidates = {
                lab: st
                for lab, st in self.runtime.stores_at_level(
                    other_level
                ).items()
                if _covers(lab, label) and lab != label
            }
            if not candidates:
                continue
            alt_reads: List[SiteRead] = []
            alt_trees: List[Flowtree] = []
            try:
                for lab in sorted(candidates):
                    parts = self._window_partitions(
                        candidates[lab], spec.start, spec.end
                    )
                    if not parts:
                        continue
                    attempted.append(candidates[lab].location.path)
                    alt_read, alt_site_trees = self._read_store(
                        lab, other_level, candidates[lab], parts, now
                    )
                    alt_reads.append(alt_read)
                    alt_trees.extend(alt_site_trees)
            except TransferError:
                continue  # that level is unreachable too
            if alt_trees:
                return (
                    reads + alt_reads, trees + alt_trees, True, None,
                    attempted,
                )
        # partial at best: the replica subset (possibly nothing)
        replicated = set()
        if read.replica_partitions:
            replicated = set(read.replica_partitions)
        stale = None
        for partition in partitions:
            if partition.partition_id in replicated:
                end = partition.summary.meta.interval.end
                stale = end if stale is None else max(stale, end)
        return reads, trees, False, stale, attempted

    @staticmethod
    def _window_partitions(
        store: DataStore,
        start: Optional[float],
        end: Optional[float],
        aggregator: Optional[str] = None,
    ) -> List[Partition]:
        """Flowtree partitions at one store overlapping a window."""
        selected = []
        for partition in store.catalog.all():
            if partition.summary.kind != "flowtree":
                continue
            if aggregator is not None and partition.aggregator != aggregator:
                continue
            interval = partition.summary.meta.interval
            if start is not None and interval.end <= start:
                continue
            if end is not None and interval.start >= end:
                continue
            selected.append(partition)
        return selected

    def _read_store(
        self,
        label: str,
        level: str,
        store: DataStore,
        partitions: List[Partition],
        now: float,
        replicas_only: bool = False,
    ) -> Tuple[SiteRead, List[Flowtree]]:
        """Fetch one store's partials: replicas locally, the rest shipped.

        Remote reads are accounted on the fabric and fed to the manager's
        replication engine — the engine may replicate the partition into
        :attr:`replica_store` mid-stream, so later reads turn local.
        With ``replicas_only`` the remote ship is skipped entirely (the
        degraded-read path: serve what the root already holds).
        """
        read = SiteRead(
            site=label,
            level=level,
            partitions=[p.partition_id for p in partitions],
        )
        root_path = self.replica_store.location.path
        summaries = []
        remote: Dict[str, List[Partition]] = {}
        with self.runtime.obs.span(
            "fetch", site=label, level=level
        ) as span:
            for partition in partitions:
                replica_id = f"{partition.partition_id}@{root_path}"
                if replica_id in self.replica_store.replicas:
                    replica = self.replica_store.replicas.get(replica_id)
                    replica.record_access(
                        now, replica.size_bytes, remote=False
                    )
                    read.replica_partitions.append(partition.partition_id)
                    summaries.append(replica.summary)
                else:
                    remote.setdefault(partition.aggregator, []).append(
                        partition
                    )
            if replicas_only:
                remote = {}
            for aggregator, parts in sorted(remote.items()):
                combined = combine_summaries(
                    [p.summary for p in parts], shrink=1.0
                )
                if store.privacy is not None:
                    # the partial leaves the level's trust domain
                    combined = store.privacy.export(aggregator, combined)
                share = max(1, combined.size_bytes // len(parts))
                for partition in parts:
                    partition.record_access(now, share, remote=True)
                    self.runtime.manager.record_remote_access(
                        store, self.replica_store, partition.partition_id,
                        share, now,
                    )
                if store.location.path != root_path:
                    self.runtime.fabric.transfer(
                        store.location, self.replica_store.location,
                        combined.size_bytes, now,
                    )
                read.shipped_bytes += combined.size_bytes
                summaries.append(combined)
            span.set_attr("shipped_bytes", read.shipped_bytes)
            span.set_attr(
                "replica_partitions", len(read.replica_partitions)
            )
        return read, [rehydrate(summary).tree for summary in summaries]

    # -- deprecated direct-call shim -----------------------------------------

    #: whether the warn-once deprecation below has already fired
    _query_shim_warned = False

    def query(
        self, flowql: Union[str, FlowQLQuery], now: Optional[float] = None
    ) -> QueryOutcome:
        """Deprecated: go through :class:`repro.client.FlowQLClient`.

        Applications used to reach into ``runtime.planner.query(...)``
        directly; the unified client facade (backed by this planner
        in-process, or by a ``repro serve`` endpoint over HTTP) is the
        one query API now.  This shim forwards to :meth:`execute` and
        warns once per process.
        """
        if not FederatedQueryPlanner._query_shim_warned:
            FederatedQueryPlanner._query_shim_warned = True
            import warnings

            warnings.warn(
                "FederatedQueryPlanner.query() is deprecated; use "
                "repro.client.FlowQLClient (or runtime.query) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.execute(flowql, now=now)

    # -- drilldown API for applications --------------------------------------

    def window_tree(
        self,
        site: Union[str, Location],
        start: Optional[float] = None,
        end: Optional[float] = None,
        aggregator: Optional[str] = None,
        now: Optional[float] = None,
    ) -> Optional[Flowtree]:
        """One site's merged Flowtree for a window, via the federated
        read path (replica-first, fabric-accounted, feeding replication).

        This is the planner-backed replacement for applications'
        hand-rolled ``store.window_summary(..., record_access=True)``
        drilldowns.  Returns None when no partition overlaps.
        """
        if isinstance(site, Location):
            site = self.runtime.site_label(site)
        now = self.clock if now is None else now
        store = self.runtime.store_for(site)
        level = self.runtime.hierarchy.node(store.location).level.name
        partitions = self._window_partitions(store, start, end, aggregator)
        if not partitions:
            return None
        read, trees = self._read_store(site, level, store, partitions, now)
        volume = self.runtime.stats.level(level)
        volume.queries_served += 1
        volume.query_bytes_out += read.shipped_bytes
        merged = Flowtree(
            trees[0].policy,
            node_budget=self.runtime.db.merge_node_budget,
            metric=trees[0].metric,
        )
        for tree in trees:
            merged.merge(tree)
        return merged

    # -- cache lifecycle -----------------------------------------------------

    def invalidate_cache(self) -> int:
        """Drop every cached result; returns how many were dropped."""
        if self.cache is None:
            return 0
        return self.cache.invalidate()

    def on_epoch_closed(self, now: float) -> int:
        """Epoch boundary: scope invalidation to what actually changed.

        A close seals data *after* the previous boundary, so cached
        results over fully-closed historical windows are still exact —
        only entries whose window was open (reaching past the previous
        boundary, or unbounded) are dropped.  Two escape hatches keep
        this safe:

        * **Late deliveries.**  Parked exports can land whole epochs
          after the interval they describe; any FlowDB entry that
          arrived since the last close with an interval at or before
          the previous boundary re-opens the cached windows it overlaps.
        * **Topology.**  Reconfiguration doesn't come through here at
          all — :meth:`invalidate_cache` stays the wholesale drop for
          elastic operations, and cache keys carry the topology
          generation besides.

        Standing queries refresh after invalidation, so a subscription
        rebuild that re-executes never sees a stale entry.  Returns the
        number of cache entries dropped.
        """
        boundary = self.clock
        self.clock = max(self.clock, now)
        dropped = 0
        if self.cache is not None:
            dropped = self.cache.invalidate_open(boundary)
            for entry in self.runtime.db.entries_since(
                self._late_watermark
            ):
                if entry.interval.end <= boundary:
                    dropped += self.cache.invalidate_window(
                        entry.interval.start, entry.interval.end
                    )
        self._late_watermark = self.runtime.db.max_entry_id()
        self.subscriptions.on_epoch_closed(self.clock)
        return dropped

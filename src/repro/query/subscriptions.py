"""Standing FlowQL queries: the planner-side subscription registry.

Dashboards and detectors re-issue the same FlowQL every epoch; the
reactive :class:`~repro.datastore.cache.QueryCache` only helps *within*
an epoch, because each close seals new data.  ``SUBSCRIBE <flowql>``
turns such a query into a *standing* one: the planner materializes its
plan's result once and then **delta-maintains** it on every epoch close
— Merge of the newly sealed partitions into the materialized view
instead of re-reading (and re-shipping) the whole window.

Correctness contract — the delta path is provably identical to a cold
re-execution of the same query:

* **Cloud route.**  A fresh ``FlowDB.merged_tree`` merges entries in
  ``(interval.start, location)`` order; new epochs always sort after
  everything already folded.  The maintained view therefore undergoes
  the *identical* operation sequence a cold merge would — including
  compression timing — so the result is bit-identical by construction.
  The registry validates the folded prefix (entry ids) every close and
  rebuilds when it does not match (restart recovery re-ids entries).
* **Federated route.**  A cold read folds each site's window
  partitions into one per-site tree (``combine_flowtrees``: first
  partition's tree copied, the rest merged in catalog order, under the
  *partition's* node budget) and then merges the per-site trees — in
  sorted site order — into a fresh tree under the root's merge budget.
  Both folds are deterministic, so the view maintains the *same state*
  incrementally: one fold tree per (site, aggregator) advanced by
  exactly the merges a cold fold would append (new partitions only ever
  arrive at the catalog's tail), plus a recomputed top-level merge per
  close.  Identical operation sequences compress at identical points,
  so the view stays bit-identical to re-execution even after per-site
  compression sets in.  What *breaks* the sequence triggers a rebuild:
  a folded partition vanishing (expiration, site restart), a partition
  turning replica-resident at the root (cold then serves it
  individually instead of folding it — a different merge order), a
  participating store growing a privacy guard, or a degraded read.
* **Topology.**  A generation bump (join/leave/split/merge/migrate)
  invalidates and rebuilds the view — the *only* structural event that
  does; ordinary closes never rebuild.

Updates are typed (:class:`SubscriptionUpdate`), sequence-numbered, and
kept in a bounded ring per subscription, which is what makes the
serving plane's long-poll ``/v1/subscribe`` route cursor-resumable: a
reconnecting client replays from its cursor, or resyncs to the latest
snapshot when the gap outgrew the ring (every update carries the full
result, so a resync loses history, never correctness).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)
from collections import deque

from repro.errors import (
    FlowQLPlanningError,
    TransferError,
    WireSchemaError,
)
from repro.flowql.ast import FlowQLQuery, TimeSpec
from repro.flowql.executor import FlowQLResult, apply_operator
from repro.flowql.parser import parse
from repro.flows.tree import Flowtree
from repro.query.plan import (
    ROUTE_CLOUD,
    ROUTE_FEDERATED,
    Degradation,
    QueryPlan,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.planner import FederatedQueryPlanner

#: ``repro_subscribe_*`` metric family names
ACTIVE = "repro_subscribe_active"
UPDATES_TOTAL = "repro_subscribe_updates_total"
REFRESH_SECONDS = "repro_subscribe_refresh_seconds"
SHIPPED_BYTES_TOTAL = "repro_subscribe_shipped_bytes_total"
REBUILDS_TOTAL = "repro_subscribe_rebuilds_total"

#: refresh-latency buckets: sub-millisecond deltas up to full rebuilds
_REFRESH_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: updates kept per subscription for cursor resume
HISTORY = 64

_subscription_ids = itertools.count(1)

#: update modes
MODE_INIT = "init"
MODE_DELTA = "delta"
MODE_REBUILD = "rebuild"


class _RebuildNeeded(Exception):
    """Internal: the delta path cannot prove identity; rebuild instead."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class SubscriptionUpdate:
    """One epoch's push for one standing query.

    Every update is a *snapshot*: ``result`` is the query's complete
    current answer (identical to what a cold execution at the same
    boundary returns), so a client that missed updates only needs the
    latest one.  ``mode`` records how the snapshot was produced
    (``init`` at registration, ``delta`` for an incremental merge,
    ``rebuild`` for a from-scratch re-materialization) and
    ``shipped_bytes`` what the refresh moved across the fabric — the
    two numbers the subscribe benchmark compares against re-execution.
    """

    subscription_id: str
    seq: int
    epoch: float
    generation: int
    mode: str
    result: FlowQLResult
    route: str
    shipped_bytes: int = 0
    changed: bool = True
    degraded: bool = False

    def to_wire(self) -> dict:
        return {
            "subscription_id": self.subscription_id,
            "seq": self.seq,
            "epoch": self.epoch,
            "generation": self.generation,
            "mode": self.mode,
            "result": self.result.to_wire(),
            "route": self.route,
            "shipped_bytes": self.shipped_bytes,
            "changed": self.changed,
            "degraded": self.degraded,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "SubscriptionUpdate":
        try:
            return cls(
                subscription_id=data["subscription_id"],
                seq=int(data["seq"]),
                epoch=float(data["epoch"]),
                generation=int(data["generation"]),
                mode=data["mode"],
                result=FlowQLResult.from_wire(data["result"]),
                route=data.get("route", ROUTE_FEDERATED),
                shipped_bytes=int(data.get("shipped_bytes", 0)),
                changed=bool(data.get("changed", True)),
                degraded=bool(data.get("degraded", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WireSchemaError(
                f"bad SubscriptionUpdate on the wire: {exc}"
            )


class _WindowView:
    """One materialized window (FROM or VS) of a standing query."""

    def __init__(self, spec: TimeSpec) -> None:
        self.spec = spec
        self.tree: Optional[Flowtree] = None
        #: cloud route: entry ids folded, in merge order
        self.folded_entries: List[int] = []
        #: federated route: store label -> partition ids folded, in
        #: catalog order
        self.folded_partitions: Dict[str, List[str]] = {}
        #: federated route: label -> aggregator -> the per-site fold
        #: tree, maintained by the same operation sequence a cold
        #: ``combine_flowtrees`` performs
        self.site_trees: Dict[str, Dict[str, Flowtree]] = {}

    # -- cloud route ---------------------------------------------------------

    def build_cloud(
        self, planner: "FederatedQueryPlanner", query: FlowQLQuery
    ) -> None:
        """Materialize from the root FlowDB, mirroring ``merged_tree``
        exactly (same entry order, same budget) so later deltas are a
        continuation of the cold computation."""
        db = planner.runtime.db
        entries = db.entries(
            query.sites or None, self.spec.start, self.spec.end
        )
        if not entries:
            raise FlowQLPlanningError(
                "no Flowtree summaries match the subscribed window"
            )
        tree = Flowtree(
            entries[0].tree.policy,
            node_budget=db.merge_node_budget,
            metric=entries[0].tree.metric,
        )
        for entry in entries:
            tree.merge(entry.tree)
        self.tree = tree
        self.folded_entries = [e.entry_id for e in entries]

    def advance_cloud(
        self, planner: "FederatedQueryPlanner", query: FlowQLQuery
    ) -> int:
        """Merge entries sealed since the last refresh; returns bytes
        shipped (always 0 — the root reads its own FlowDB locally)."""
        db = planner.runtime.db
        entries = db.entries(
            query.sites or None, self.spec.start, self.spec.end
        )
        ids = [e.entry_id for e in entries]
        folded = self.folded_entries
        if ids[: len(folded)] != folded:
            # recovery re-ids entries, retention may drop them: the
            # continuation property no longer holds
            raise _RebuildNeeded("entry-prefix")
        for entry in entries[len(folded):]:
            self.tree.merge(entry.tree)
        self.folded_entries = ids
        return 0

    # -- federated route -----------------------------------------------------

    def _current_partitions(
        self,
        planner: "FederatedQueryPlanner",
        plan: QueryPlan,
        query: FlowQLQuery,
    ) -> Dict[str, list]:
        """label -> window partitions at the plan's level, the same
        selection ``_assemble`` makes."""
        from repro.query.planner import _covers

        stores = planner.runtime.stores_at_level(plan.level)
        current: Dict[str, list] = {}
        for label in sorted(stores):
            if query.sites and not any(
                _covers(label, site) for site in query.sites
            ):
                continue
            if stores[label].privacy is not None:
                # per-epoch privacy export need not commute with the
                # whole-window export a cold read performs
                raise _RebuildNeeded("privacy-guard")
            partitions = planner._window_partitions(
                stores[label], self.spec.start, self.spec.end
            )
            if partitions:
                current[label] = partitions
        return current

    @staticmethod
    def _replica_resident(planner: "FederatedQueryPlanner", pid: str) -> bool:
        root_path = planner.replica_store.location.path
        return f"{pid}@{root_path}" in planner.replica_store.replicas

    def _fold_sites(
        self, planner: "FederatedQueryPlanner", current: Dict[str, list]
    ) -> Dict[str, Dict[str, Flowtree]]:
        """Per-site fold trees by ``combine_flowtrees``' exact sequence:
        the first partition's tree copied (keeping the partition node
        budget), the rest merged in catalog order."""
        site_trees: Dict[str, Dict[str, Flowtree]] = {}
        for label in sorted(current):
            groups: Dict[str, Flowtree] = {}
            for partition in current[label]:
                if self._replica_resident(planner, partition.partition_id):
                    # a cold read serves a root-replicated partition
                    # individually, outside the site fold — a different
                    # merge sequence than the one this view maintains
                    raise _RebuildNeeded("replica-served")
                fold = groups.get(partition.aggregator)
                if fold is None:
                    groups[partition.aggregator] = (
                        partition.summary.payload.copy()
                    )
                else:
                    fold.merge(partition.summary.payload)
            site_trees[label] = groups
        return site_trees

    def _top_merge(self, planner: "FederatedQueryPlanner") -> Flowtree:
        """The cold assembly's final step: per-site trees merged — in
        sorted site then aggregator order — into a fresh tree under the
        root's merge budget."""
        ordered: List[Flowtree] = []
        for label in sorted(self.site_trees):
            groups = self.site_trees[label]
            ordered.extend(groups[agg] for agg in sorted(groups))
        if not ordered:
            raise _RebuildNeeded("partition-prefix")
        budget = planner.runtime.db.merge_node_budget
        if len(ordered) == 1 and (
            budget is None or ordered[0].node_count <= budget
        ):
            # single-site window (the AT <edge site> shape): cold's
            # final merge absorbs one fold tree into a fresh tree and,
            # under the root budget, cannot compress — an exact
            # structural copy.  Serve the fold directly instead of
            # copying it every close.
            return ordered[0]
        merged = Flowtree(
            ordered[0].policy,
            node_budget=budget,
            metric=ordered[0].metric,
        )
        for tree in ordered:
            merged.merge(tree)
        return merged

    def seed_federated(
        self,
        planner: "FederatedQueryPlanner",
        plan: QueryPlan,
        query: FlowQLQuery,
        tree: Flowtree,
    ) -> None:
        """Adopt a freshly assembled tree plus the per-site fold state
        future deltas will advance."""
        current = self._current_partitions(planner, plan, query)
        self.site_trees = self._fold_sites(planner, current)
        self.tree = tree
        self.folded_partitions = {
            label: [p.partition_id for p in partitions]
            for label, partitions in current.items()
        }

    def advance_federated(
        self,
        planner: "FederatedQueryPlanner",
        plan: QueryPlan,
        query: FlowQLQuery,
        now: float,
    ) -> int:
        """Fetch and fold partitions sealed since the last refresh.

        Reads go through the planner's ``_read_store`` — fabric-
        accounted, feeding the Fig. 6 replication cycle just like any
        query — but only for the *new* partitions, which is the entire
        saving.  Each fresh partition extends its site's fold tree by
        exactly the merge a cold ``combine_flowtrees`` would append,
        then the top-level merge is recomputed the way ``_assemble``
        builds it; identical operation sequences keep the view
        bit-identical to re-execution, compression included.  Returns
        the bytes shipped.
        """
        stores = planner.runtime.stores_at_level(plan.level)
        current = self._current_partitions(planner, plan, query)
        folded = self.folded_partitions
        for label, pids in folded.items():
            seen = [
                p.partition_id for p in current.get(label, [])
            ][: len(pids)]
            if seen != pids:
                # a folded partition vanished (expiration, restart) or
                # the catalog was rewritten under us
                raise _RebuildNeeded("partition-prefix")
        for label in sorted(current):
            for partition in current[label]:
                if self._replica_resident(planner, partition.partition_id):
                    # replication promoted a window partition to the
                    # root since the last fold: cold reads now serve it
                    # individually, so the fold sequence diverged
                    raise _RebuildNeeded("replica-served")
        shipped = 0
        advanced = False
        for label in sorted(current):
            partitions = current[label]
            known = len(folded.get(label, []))
            fresh = partitions[known:]
            if fresh:
                advanced = True
                read, _ = planner._read_store(
                    label, plan.level, stores[label], fresh, now
                )
                shipped += read.shipped_bytes
                groups = self.site_trees.setdefault(label, {})
                for partition in fresh:
                    fold = groups.get(partition.aggregator)
                    if fold is None:
                        groups[partition.aggregator] = (
                            partition.summary.payload.copy()
                        )
                    else:
                        fold.merge(partition.summary.payload)
            folded[label] = [p.partition_id for p in partitions]
        if advanced:
            self.tree = self._top_merge(planner)
        return shipped


class Subscription:
    """One standing query and its delta-maintained state."""

    def __init__(
        self,
        subscription_id: str,
        query: FlowQLQuery,
        text: str,
        registry: "SubscriptionRegistry",
    ) -> None:
        self.id = subscription_id
        self.query = query
        self.text = text
        self._registry = registry
        self.active = True
        self.seq = 0
        self.updates: Deque[SubscriptionUpdate] = deque(maxlen=HISTORY)
        self.callbacks: List[Callable[[SubscriptionUpdate], None]] = []
        self.callback_errors = 0
        #: materialized windows (None until the first successful build)
        self.views: Optional[List[_WindowView]] = None
        self.generation = -1
        self.route: Optional[str] = None
        self.level: Optional[str] = None
        self.last_result: Optional[FlowQLResult] = None
        #: lifetime counters (census / benchmark)
        self.delta_refreshes = 0
        self.rebuilds = 0
        self.shipped_bytes_total = 0

    # -- consumer API --------------------------------------------------------

    def latest(self) -> Optional[SubscriptionUpdate]:
        """The most recent update (None before materialization)."""
        with self._registry._lock:
            return self.updates[-1] if self.updates else None

    def updates_since(
        self, cursor: int
    ) -> Tuple[List[SubscriptionUpdate], bool]:
        """Updates with ``seq > cursor``; ``(updates, resynced)``.

        When the cursor has fallen out of the ring, returns whatever
        the ring still holds with ``resynced=True`` — the first update
        is then a snapshot newer than the gap, not its continuation.
        """
        with self._registry._lock:
            pending = [u for u in self.updates if u.seq > cursor]
            resynced = bool(
                pending
                and cursor > 0
                and pending[0].seq != cursor + 1
            )
            return pending, resynced

    def cancel(self) -> None:
        """Deregister: no further updates are produced."""
        self._registry.cancel(self.id)

    def on_update(
        self, callback: Callable[[SubscriptionUpdate], None]
    ) -> None:
        """Register an in-process callback fired per published update."""
        self.callbacks.append(callback)


class SubscribeMetrics:
    """``repro_subscribe_*`` families; a no-op shell when obs is off."""

    def __init__(self, obs) -> None:
        self.enabled = obs.enabled
        if not self.enabled:
            return
        registry = obs.registry
        self.active = registry.gauge(
            ACTIVE, "Standing queries currently registered"
        )
        self.updates = registry.counter(
            UPDATES_TOTAL,
            "Subscription updates published, by mode "
            "(init, delta, rebuild)",
            ("mode",),
        )
        self.refresh_seconds = registry.histogram(
            REFRESH_SECONDS,
            "Per-subscription refresh latency at each epoch close",
            buckets=_REFRESH_BUCKETS,
        )
        self.shipped = registry.counter(
            SHIPPED_BYTES_TOTAL,
            "Fabric bytes moved by subscription refreshes",
        )
        self.rebuilds = registry.counter(
            REBUILDS_TOTAL,
            "Full view rebuilds, by reason (generation, entry-prefix, "
            "partition-prefix, replica-served, privacy-guard, "
            "degraded, route-changed)",
            ("reason",),
        )

    def published(
        self, mode: str, seconds: float, shipped_bytes: int
    ) -> None:
        if not self.enabled:
            return
        self.updates.labels(mode=mode).inc()
        self.refresh_seconds.labels().observe(seconds)
        if shipped_bytes:
            self.shipped.labels().inc(shipped_bytes)

    def rebuild(self, reason: str) -> None:
        if not self.enabled:
            return
        self.rebuilds.labels(reason=reason).inc()

    def set_active(self, count: int) -> None:
        if not self.enabled:
            return
        self.active.labels().set(count)


class SubscriptionRegistry:
    """Every standing query of one planner, refreshed at epoch closes."""

    def __init__(self, planner: "FederatedQueryPlanner") -> None:
        self.planner = planner
        self._subscriptions: Dict[str, Subscription] = {}
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self.metrics = SubscribeMetrics(planner.runtime.obs)
        #: lifetime census (the benchmark and ``/healthz`` read these)
        self.updates_published = 0
        self.rebuilds = 0
        self.delta_refreshes = 0
        self.shipped_bytes_total = 0
        self.refresh_seconds_total = 0.0

    def __len__(self) -> int:
        return len(self._subscriptions)

    # -- registration --------------------------------------------------------

    def register(
        self,
        flowql: Union[str, FlowQLQuery],
        on_update: Optional[
            Callable[[SubscriptionUpdate], None]
        ] = None,
        now: Optional[float] = None,
    ) -> Subscription:
        """Register one standing query and materialize it once.

        Accepts ``SUBSCRIBE SELECT ...`` or bare ``SELECT ...`` text
        (or a parsed query).  When the hierarchy holds no matching data
        yet, the subscription stays pending and materializes at the
        first close that covers it.
        """
        query = parse(flowql) if isinstance(flowql, str) else flowql
        text = flowql if isinstance(flowql, str) else ""
        if query.subscribe:
            query = replace(query, subscribe=False)
        subscription = Subscription(
            f"sub-{next(_subscription_ids)}", query, text, self
        )
        if on_update is not None:
            subscription.on_update(on_update)
        now = self.planner.clock if now is None else now
        with self._lock:
            self._subscriptions[subscription.id] = subscription
            try:
                self._rebuild(subscription, now, mode=MODE_INIT)
            except FlowQLPlanningError:
                pass  # nothing to materialize yet; retry at each close
            self.metrics.set_active(len(self._subscriptions))
        return subscription

    def get(self, subscription_id: str) -> Optional[Subscription]:
        with self._lock:
            return self._subscriptions.get(subscription_id)

    def cancel(self, subscription_id: str) -> bool:
        with self._cond:
            subscription = self._subscriptions.pop(subscription_id, None)
            if subscription is None:
                return False
            subscription.active = False
            self.metrics.set_active(len(self._subscriptions))
            self._cond.notify_all()
            return True

    # -- the epoch hook ------------------------------------------------------

    def on_epoch_closed(self, now: float) -> int:
        """Refresh every standing query; returns updates published.

        Runs inside the runtime's ``close_epoch`` (and on restart
        recovery), after rollup/export so the newly sealed partitions
        and FlowDB entries are visible.
        """
        with self._lock:
            subscriptions = list(self._subscriptions.values())
        published = 0
        for subscription in subscriptions:
            if not subscription.active:
                continue
            try:
                self._refresh(subscription, now)
                published += 1
            except FlowQLPlanningError:
                # the query does not plan right now (no coverage after
                # a leave/restart, or no data yet): stay pending and
                # retry at the next boundary
                subscription.views = None
        return published

    # -- refresh machinery ---------------------------------------------------

    def _refresh(self, subscription: Subscription, now: float) -> None:
        started = time.perf_counter()
        generation = self.planner._topology_generation()
        if subscription.views is None:
            self._rebuild(subscription, now, mode=MODE_INIT)
            return
        if generation != subscription.generation:
            self.metrics.rebuild("generation")
            self._rebuild(subscription, now, mode=MODE_REBUILD)
            return
        plan = self.planner.plan(subscription.query)
        if (
            plan.route != subscription.route
            or plan.level != subscription.level
        ):
            self.metrics.rebuild("route-changed")
            self._rebuild(subscription, now, mode=MODE_REBUILD)
            return
        try:
            shipped = 0
            for view in subscription.views:
                if plan.route == ROUTE_CLOUD:
                    shipped += view.advance_cloud(
                        self.planner, subscription.query
                    )
                else:
                    shipped += view.advance_federated(
                        self.planner, plan, subscription.query, now
                    )
        except _RebuildNeeded as exc:
            self.metrics.rebuild(exc.reason)
            self._rebuild(subscription, now, mode=MODE_REBUILD)
            return
        except TransferError:
            # a link died mid-delta: the view may hold a torn window,
            # so drop it and answer this boundary with a (possibly
            # degraded) cold rebuild
            self.metrics.rebuild("degraded")
            self._rebuild(subscription, now, mode=MODE_REBUILD)
            return
        result = apply_operator(
            self._combined(subscription), subscription.query
        )
        subscription.delta_refreshes += 1
        self.delta_refreshes += 1
        self._publish(
            subscription,
            result,
            now,
            generation,
            MODE_DELTA,
            plan.route,
            shipped,
            degraded=False,
            started=started,
        )

    def _combined(self, subscription: Subscription) -> Flowtree:
        views = subscription.views
        if len(views) == 1:
            return views[0].tree
        return views[0].tree.diff(views[1].tree)

    def _rebuild(
        self, subscription: Subscription, now: float, mode: str
    ) -> None:
        """Materialize from scratch, mirroring a cold execution."""
        started = time.perf_counter()
        planner = self.planner
        query = subscription.query
        plan = planner.plan(query)
        generation = planner._topology_generation()
        specs = [query.time] + (
            [query.vs_time] if query.vs_time is not None else []
        )
        views: List[_WindowView] = []
        shipped = 0
        degradation = Degradation()
        continuable = True
        for spec in specs:
            view = _WindowView(spec)
            if plan.route == ROUTE_CLOUD:
                view.build_cloud(planner, query)
            else:
                window_plan = QueryPlan(
                    route=plan.route,
                    window=(spec.start, spec.end),
                    level=plan.level,
                    sites=list(plan.sites),
                )
                tree = planner._assemble(
                    window_plan, query, spec, now, degradation
                )
                shipped += window_plan.shipped_bytes
                if any(
                    read.level != plan.level
                    for read in window_plan.reads
                ):
                    # alternative-coverage fallback reads served this
                    # window from other levels; the folded census would
                    # not describe the tree
                    continuable = False
                try:
                    view.seed_federated(planner, plan, query, tree)
                except _RebuildNeeded:
                    continuable = False
                    view.tree = tree
            views.append(view)
        degraded = degradation.is_degraded
        result = apply_operator(
            views[0].tree
            if len(views) == 1
            else views[0].tree.diff(views[1].tree),
            query,
        )
        if degraded or not continuable:
            # the snapshot is honest, but the view cannot be continued:
            # stay unmaterialized and rebuild again next boundary
            subscription.views = None
            if degraded:
                self.metrics.rebuild("degraded")
        else:
            subscription.views = views
            subscription.generation = generation
            subscription.route = plan.route
            subscription.level = plan.level
        if mode != MODE_INIT:
            subscription.rebuilds += 1
            self.rebuilds += 1
        self._publish(
            subscription,
            result,
            now,
            generation,
            mode,
            plan.route,
            shipped,
            degraded=degraded,
            started=started,
        )

    def _publish(
        self,
        subscription: Subscription,
        result: FlowQLResult,
        now: float,
        generation: int,
        mode: str,
        route: str,
        shipped: int,
        degraded: bool,
        started: float,
    ) -> None:
        elapsed = time.perf_counter() - started
        with self._cond:
            subscription.seq += 1
            changed = (
                subscription.last_result is None
                or result.to_wire()
                != subscription.last_result.to_wire()
            )
            update = SubscriptionUpdate(
                subscription_id=subscription.id,
                seq=subscription.seq,
                epoch=now,
                generation=generation,
                mode=mode,
                result=result.copy(),
                route=route,
                shipped_bytes=shipped,
                changed=changed,
                degraded=degraded,
            )
            subscription.updates.append(update)
            subscription.last_result = result
            subscription.shipped_bytes_total += shipped
            self.updates_published += 1
            self.shipped_bytes_total += shipped
            self.refresh_seconds_total += elapsed
            self.metrics.published(mode, elapsed, shipped)
            self._cond.notify_all()
        for callback in list(subscription.callbacks):
            try:
                callback(update)
            except Exception:  # noqa: BLE001 - apps must not kill closes
                subscription.callback_errors += 1

    # -- blocking consumers (the serving plane's long-poll) ------------------

    def wait_for(
        self,
        subscription_id: str,
        cursor: int,
        timeout_s: float,
    ) -> Tuple[List[SubscriptionUpdate], bool, bool]:
        """Block until updates past ``cursor`` exist (or timeout).

        Returns ``(updates, resynced, known)`` — ``known=False`` means
        the subscription does not exist (or was cancelled while
        waiting).
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._cond:
            while True:
                subscription = self._subscriptions.get(subscription_id)
                if subscription is None:
                    return [], False, False
                pending, resynced = subscription.updates_since(cursor)
                if pending:
                    return pending, resynced, True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False, True
                self._cond.wait(timeout=remaining)

    # -- introspection -------------------------------------------------------

    def census(self) -> dict:
        """A JSON-able snapshot (plane ``/healthz``, CLI)."""
        with self._lock:
            return {
                "active": len(self._subscriptions),
                "updates_published": self.updates_published,
                "delta_refreshes": self.delta_refreshes,
                "rebuilds": self.rebuilds,
                "shipped_bytes_total": self.shipped_bytes_total,
                "subscriptions": {
                    sub.id: {
                        "query": sub.text or sub.query.select.name,
                        "seq": sub.seq,
                        "route": sub.route,
                        "delta_refreshes": sub.delta_refreshes,
                        "rebuilds": sub.rebuilds,
                        "shipped_bytes": sub.shipped_bytes_total,
                    }
                    for sub in self._subscriptions.values()
                },
            }

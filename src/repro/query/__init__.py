"""The federated query plane.

One planner unifies the repository's query paths: FlowQL over the root
FlowDB when the rollup covers the request, fan-out over hierarchy
stores otherwise, a reactive result cache in front of both, and the
live remote-access feed that drives adaptive replication (Fig. 6).
Every query returns a typed :class:`QueryOutcome`; when links are down
the planner degrades gracefully and reports exactly what is missing in
a :class:`Degradation` record instead of throwing.
"""

from repro.query.plan import (
    ROUTE_CLOUD,
    ROUTE_FEDERATED,
    CacheInfo,
    Degradation,
    QueryOutcome,
    QueryPlan,
    SiteRead,
)
from repro.query.planner import FederatedQueryPlanner

__all__ = [
    "ROUTE_CLOUD",
    "ROUTE_FEDERATED",
    "CacheInfo",
    "Degradation",
    "QueryOutcome",
    "QueryPlan",
    "SiteRead",
    "FederatedQueryPlanner",
]

"""Plan nodes and typed outcomes for the federated FlowQL planner.

A :class:`QueryPlan` records one routing decision: *where* a FlowQL
query executes (the root FlowDB, or a fan-out over one hierarchy
level's stores), which stores and partitions it touched, and whether
the result came out of the reactive cache.  Plans are what the CLI
prints (``repro query``) and what the planner benchmarks assert on.

:class:`QueryOutcome` is the planner's (and the runtime's) single
return type: the result plus its plan, cache provenance, and — when
links were down — a structured :class:`Degradation` naming exactly the
sites whose partitions were unreachable, instead of an exception.  It
duck-types :class:`~repro.flowql.executor.FlowQLResult` (``rows``,
``scalar``, ``columns``, ``operator``) so result-consuming code does
not care which it holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro.errors import WireSchemaError
from repro.flowql.executor import FlowQLResult


def _wire_key(key: Optional[Hashable]):
    """Cache keys ride the wire as an opaque JSON-safe token.

    Keys are tuples of plan fingerprints locally; remotely they only
    need to be *stable and comparable*, so non-primitive keys are
    rendered to their ``repr``.
    """
    if key is None or isinstance(key, (str, int, float, bool)):
        return key
    return repr(key)

#: Routing outcomes.
ROUTE_CLOUD = "cloud"
ROUTE_FEDERATED = "federated"


@dataclass
class SiteRead:
    """One store's contribution to a federated plan."""

    site: str
    level: str
    #: partitions read from the producer's catalog (shipped or local)
    partitions: List[str] = field(default_factory=list)
    #: the subset served from root-side replicas (no WAN traffic)
    replica_partitions: List[str] = field(default_factory=list)
    #: partial-summary bytes shipped across the fabric for this read
    shipped_bytes: int = 0

    @property
    def served_locally(self) -> bool:
        """Whether every partition came from a local replica."""
        return bool(self.partitions) and not self.shipped_bytes

    def to_wire(self) -> dict:
        return {
            "site": self.site,
            "level": self.level,
            "partitions": list(self.partitions),
            "replica_partitions": list(self.replica_partitions),
            "shipped_bytes": self.shipped_bytes,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "SiteRead":
        try:
            return cls(
                site=data["site"],
                level=data["level"],
                partitions=list(data.get("partitions", [])),
                replica_partitions=list(
                    data.get("replica_partitions", [])
                ),
                shipped_bytes=int(data.get("shipped_bytes", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WireSchemaError(f"bad SiteRead on the wire: {exc}")


@dataclass
class QueryPlan:
    """Where one FlowQL query executed and what it cost."""

    route: str
    window: Tuple[Optional[float], Optional[float]]
    #: store-bearing level fanned out to (federated plans only)
    level: Optional[str] = None
    #: site labels read (FlowDB locations for cloud plans)
    sites: List[str] = field(default_factory=list)
    reads: List[SiteRead] = field(default_factory=list)
    cache_hit: bool = False
    cache_key: Optional[Hashable] = None

    @property
    def shipped_bytes(self) -> int:
        """Partial-result bytes the plan moved across the fabric."""
        return sum(read.shipped_bytes for read in self.reads)

    @property
    def partitions_read(self) -> int:
        """Total partitions the plan touched."""
        return sum(len(read.partitions) for read in self.reads)

    def describe(self) -> str:
        """One-line, human-readable routing summary."""
        if self.cache_hit:
            origin = f"cache ({self.route})"
        elif self.route == ROUTE_CLOUD:
            origin = "cloud FlowDB"
        else:
            origin = f"level {self.level!r}"
        sites = ", ".join(self.sites) if self.sites else "<all>"
        parts = []
        if self.route == ROUTE_FEDERATED and not self.cache_hit:
            parts.append(f"{self.partitions_read} partitions")
            parts.append(f"{self.shipped_bytes} B shipped")
        detail = f" ({', '.join(parts)})" if parts else ""
        return f"{origin} @ [{sites}]{detail}"

    def to_wire(self) -> dict:
        return {
            "route": self.route,
            "window": list(self.window),
            "level": self.level,
            "sites": list(self.sites),
            "reads": [read.to_wire() for read in self.reads],
            "cache_hit": self.cache_hit,
            "cache_key": _wire_key(self.cache_key),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "QueryPlan":
        try:
            window = data["window"]
            return cls(
                route=data["route"],
                window=(window[0], window[1]),
                level=data.get("level"),
                sites=list(data.get("sites", [])),
                reads=[
                    SiteRead.from_wire(read)
                    for read in data.get("reads", [])
                ],
                cache_hit=bool(data.get("cache_hit", False)),
                cache_key=data.get("cache_key"),
            )
        except (KeyError, TypeError, IndexError) as exc:
            raise WireSchemaError(f"bad QueryPlan on the wire: {exc}")


@dataclass
class Degradation:
    """What a partial answer is missing, and how stale it is.

    Produced instead of an exception when covering stores were
    unreachable and no replica/alternative coverage existed.
    ``missing_sites`` lists exactly the store labels whose partitions
    could not be read; ``stale_through`` is the latest epoch timestamp
    through which the served data for those sites *is* complete
    (``None`` when nothing of theirs was served at all);
    ``attempted_paths`` records every node path the planner (or a
    serving node) actually tried before giving up — the fallback
    replica read and each alternative-coverage candidate — so an
    operator staring at a partial answer (or a gateway error body) can
    see *where* the read chain died, not just that it did.
    """

    missing_sites: List[str] = field(default_factory=list)
    stale_through: Optional[float] = None
    #: one human-readable reason per failed read (link, drop/outage)
    reasons: List[str] = field(default_factory=list)
    #: node paths tried while assembling the answer, in attempt order
    attempted_paths: List[str] = field(default_factory=list)

    def note(
        self,
        site: str,
        stale_through: Optional[float],
        reason: str,
        attempted: Optional[List[str]] = None,
    ) -> None:
        """Record one unreachable site (idempotent per site)."""
        if site not in self.missing_sites:
            self.missing_sites.append(site)
            self.missing_sites.sort()
            self.reasons.append(reason)
        for path in attempted or []:
            if path not in self.attempted_paths:
                self.attempted_paths.append(path)
        if stale_through is not None:
            self.stale_through = (
                stale_through
                if self.stale_through is None
                else max(self.stale_through, stale_through)
            )

    @property
    def is_degraded(self) -> bool:
        return bool(self.missing_sites)

    def describe(self) -> str:
        """One-line summary for CLI output."""
        sites = ", ".join(self.missing_sites) or "<none>"
        stale = (
            f" stale-through={self.stale_through:g}"
            if self.stale_through is not None
            else ""
        )
        return f"partial: missing [{sites}]{stale}"

    def to_wire(self) -> dict:
        return {
            "missing_sites": list(self.missing_sites),
            "stale_through": self.stale_through,
            "reasons": list(self.reasons),
            "attempted_paths": list(self.attempted_paths),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "Degradation":
        try:
            return cls(
                missing_sites=list(data.get("missing_sites", [])),
                stale_through=data.get("stale_through"),
                reasons=list(data.get("reasons", [])),
                attempted_paths=list(data.get("attempted_paths", [])),
            )
        except TypeError as exc:
            raise WireSchemaError(f"bad Degradation on the wire: {exc}")


@dataclass(frozen=True)
class CacheInfo:
    """Cache provenance of one outcome."""

    hit: bool = False
    key: Optional[Hashable] = None

    def to_wire(self) -> dict:
        return {"hit": self.hit, "key": _wire_key(self.key)}

    @classmethod
    def from_wire(cls, data: dict) -> "CacheInfo":
        try:
            return cls(hit=bool(data.get("hit", False)),
                       key=data.get("key"))
        except TypeError as exc:
            raise WireSchemaError(f"bad CacheInfo on the wire: {exc}")


@dataclass
class QueryOutcome:
    """The typed return of every planner/runtime query.

    Wraps the :class:`~repro.flowql.executor.FlowQLResult` with the
    plan that produced it, its cache provenance, and the degradation
    record (``None`` means the answer is complete).  Result access
    delegates, so ``outcome.rows`` / ``outcome.scalar`` read exactly
    like the bare result they replaced.
    """

    result: FlowQLResult
    plan: QueryPlan
    degradation: Optional[Degradation] = None
    cache: CacheInfo = field(default_factory=CacheInfo)

    # -- FlowQLResult delegation -------------------------------------------

    @property
    def operator(self) -> str:
        return self.result.operator

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.result.columns

    @property
    def rows(self):
        return self.result.rows

    @property
    def scalar(self):
        return self.result.scalar

    def __len__(self) -> int:
        return len(self.result)

    # -- outcome-level accessors -------------------------------------------

    @property
    def is_degraded(self) -> bool:
        """Whether this is a partial answer (sites were unreachable)."""
        return self.degradation is not None and self.degradation.is_degraded

    @property
    def missing_sites(self) -> List[str]:
        """Unreachable store labels (empty for complete answers)."""
        return list(self.degradation.missing_sites) if self.degradation else []

    def copy(self) -> "QueryOutcome":
        """An independent copy (mutating ``rows`` cannot leak back)."""
        return QueryOutcome(
            result=self.result.copy(),
            plan=self.plan,
            degradation=self.degradation,
            cache=self.cache,
        )

    # -- wire schema ---------------------------------------------------------

    def to_wire(self) -> dict:
        """The outcome's JSON-safe wire body (un-enveloped).

        :func:`repro.serve.wire.encode_outcome` wraps this in the
        versioned envelope the serving plane actually ships.
        """
        return {
            "result": self.result.to_wire(),
            "plan": self.plan.to_wire(),
            "degradation": (
                self.degradation.to_wire()
                if self.degradation is not None
                else None
            ),
            "cache": self.cache.to_wire(),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "QueryOutcome":
        try:
            degradation = data.get("degradation")
            return cls(
                result=FlowQLResult.from_wire(data["result"]),
                plan=QueryPlan.from_wire(data["plan"]),
                degradation=(
                    Degradation.from_wire(degradation)
                    if degradation is not None
                    else None
                ),
                cache=CacheInfo.from_wire(data.get("cache", {})),
            )
        except (KeyError, TypeError) as exc:
            raise WireSchemaError(f"bad QueryOutcome on the wire: {exc}")

"""Plan nodes for the federated FlowQL planner.

A :class:`QueryPlan` records one routing decision: *where* a FlowQL
query executes (the root FlowDB, or a fan-out over one hierarchy
level's stores), which stores and partitions it touched, and whether
the result came out of the reactive cache.  Plans are what the CLI
prints (``repro query``) and what the planner benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

#: Routing outcomes.
ROUTE_CLOUD = "cloud"
ROUTE_FEDERATED = "federated"


@dataclass
class SiteRead:
    """One store's contribution to a federated plan."""

    site: str
    level: str
    #: partitions read from the producer's catalog (shipped or local)
    partitions: List[str] = field(default_factory=list)
    #: the subset served from root-side replicas (no WAN traffic)
    replica_partitions: List[str] = field(default_factory=list)
    #: partial-summary bytes shipped across the fabric for this read
    shipped_bytes: int = 0

    @property
    def served_locally(self) -> bool:
        """Whether every partition came from a local replica."""
        return bool(self.partitions) and not self.shipped_bytes


@dataclass
class QueryPlan:
    """Where one FlowQL query executed and what it cost."""

    route: str
    window: Tuple[Optional[float], Optional[float]]
    #: store-bearing level fanned out to (federated plans only)
    level: Optional[str] = None
    #: site labels read (FlowDB locations for cloud plans)
    sites: List[str] = field(default_factory=list)
    reads: List[SiteRead] = field(default_factory=list)
    cache_hit: bool = False
    cache_key: Optional[Hashable] = None

    @property
    def shipped_bytes(self) -> int:
        """Partial-result bytes the plan moved across the fabric."""
        return sum(read.shipped_bytes for read in self.reads)

    @property
    def partitions_read(self) -> int:
        """Total partitions the plan touched."""
        return sum(len(read.partitions) for read in self.reads)

    def describe(self) -> str:
        """One-line, human-readable routing summary."""
        if self.cache_hit:
            origin = f"cache ({self.route})"
        elif self.route == ROUTE_CLOUD:
            origin = "cloud FlowDB"
        else:
            origin = f"level {self.level!r}"
        sites = ", ".join(self.sites) if self.sites else "<all>"
        parts = []
        if self.route == ROUTE_FEDERATED and not self.cache_hit:
            parts.append(f"{self.partitions_read} partitions")
            parts.append(f"{self.shipped_bytes} B shipped")
        detail = f" ({', '.join(parts)})" if parts else ""
        return f"{origin} @ [{sites}]{detail}"

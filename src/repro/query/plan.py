"""Plan nodes and typed outcomes for the federated FlowQL planner.

A :class:`QueryPlan` records one routing decision: *where* a FlowQL
query executes (the root FlowDB, or a fan-out over one hierarchy
level's stores), which stores and partitions it touched, and whether
the result came out of the reactive cache.  Plans are what the CLI
prints (``repro query``) and what the planner benchmarks assert on.

:class:`QueryOutcome` is the planner's (and the runtime's) single
return type: the result plus its plan, cache provenance, and — when
links were down — a structured :class:`Degradation` naming exactly the
sites whose partitions were unreachable, instead of an exception.  It
duck-types :class:`~repro.flowql.executor.FlowQLResult` (``rows``,
``scalar``, ``columns``, ``operator``) so result-consuming code does
not care which it holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro.flowql.executor import FlowQLResult

#: Routing outcomes.
ROUTE_CLOUD = "cloud"
ROUTE_FEDERATED = "federated"


@dataclass
class SiteRead:
    """One store's contribution to a federated plan."""

    site: str
    level: str
    #: partitions read from the producer's catalog (shipped or local)
    partitions: List[str] = field(default_factory=list)
    #: the subset served from root-side replicas (no WAN traffic)
    replica_partitions: List[str] = field(default_factory=list)
    #: partial-summary bytes shipped across the fabric for this read
    shipped_bytes: int = 0

    @property
    def served_locally(self) -> bool:
        """Whether every partition came from a local replica."""
        return bool(self.partitions) and not self.shipped_bytes


@dataclass
class QueryPlan:
    """Where one FlowQL query executed and what it cost."""

    route: str
    window: Tuple[Optional[float], Optional[float]]
    #: store-bearing level fanned out to (federated plans only)
    level: Optional[str] = None
    #: site labels read (FlowDB locations for cloud plans)
    sites: List[str] = field(default_factory=list)
    reads: List[SiteRead] = field(default_factory=list)
    cache_hit: bool = False
    cache_key: Optional[Hashable] = None

    @property
    def shipped_bytes(self) -> int:
        """Partial-result bytes the plan moved across the fabric."""
        return sum(read.shipped_bytes for read in self.reads)

    @property
    def partitions_read(self) -> int:
        """Total partitions the plan touched."""
        return sum(len(read.partitions) for read in self.reads)

    def describe(self) -> str:
        """One-line, human-readable routing summary."""
        if self.cache_hit:
            origin = f"cache ({self.route})"
        elif self.route == ROUTE_CLOUD:
            origin = "cloud FlowDB"
        else:
            origin = f"level {self.level!r}"
        sites = ", ".join(self.sites) if self.sites else "<all>"
        parts = []
        if self.route == ROUTE_FEDERATED and not self.cache_hit:
            parts.append(f"{self.partitions_read} partitions")
            parts.append(f"{self.shipped_bytes} B shipped")
        detail = f" ({', '.join(parts)})" if parts else ""
        return f"{origin} @ [{sites}]{detail}"


@dataclass
class Degradation:
    """What a partial answer is missing, and how stale it is.

    Produced instead of an exception when covering stores were
    unreachable and no replica/alternative coverage existed.
    ``missing_sites`` lists exactly the store labels whose partitions
    could not be read; ``stale_through`` is the latest epoch timestamp
    through which the served data for those sites *is* complete
    (``None`` when nothing of theirs was served at all).
    """

    missing_sites: List[str] = field(default_factory=list)
    stale_through: Optional[float] = None
    #: one human-readable reason per failed read (link, drop/outage)
    reasons: List[str] = field(default_factory=list)

    def note(
        self, site: str, stale_through: Optional[float], reason: str
    ) -> None:
        """Record one unreachable site (idempotent per site)."""
        if site not in self.missing_sites:
            self.missing_sites.append(site)
            self.missing_sites.sort()
            self.reasons.append(reason)
        if stale_through is not None:
            self.stale_through = (
                stale_through
                if self.stale_through is None
                else max(self.stale_through, stale_through)
            )

    @property
    def is_degraded(self) -> bool:
        return bool(self.missing_sites)

    def describe(self) -> str:
        """One-line summary for CLI output."""
        sites = ", ".join(self.missing_sites) or "<none>"
        stale = (
            f" stale-through={self.stale_through:g}"
            if self.stale_through is not None
            else ""
        )
        return f"partial: missing [{sites}]{stale}"


@dataclass(frozen=True)
class CacheInfo:
    """Cache provenance of one outcome."""

    hit: bool = False
    key: Optional[Hashable] = None


@dataclass
class QueryOutcome:
    """The typed return of every planner/runtime query.

    Wraps the :class:`~repro.flowql.executor.FlowQLResult` with the
    plan that produced it, its cache provenance, and the degradation
    record (``None`` means the answer is complete).  Result access
    delegates, so ``outcome.rows`` / ``outcome.scalar`` read exactly
    like the bare result they replaced.
    """

    result: FlowQLResult
    plan: QueryPlan
    degradation: Optional[Degradation] = None
    cache: CacheInfo = field(default_factory=CacheInfo)

    # -- FlowQLResult delegation -------------------------------------------

    @property
    def operator(self) -> str:
        return self.result.operator

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.result.columns

    @property
    def rows(self):
        return self.result.rows

    @property
    def scalar(self):
        return self.result.scalar

    def __len__(self) -> int:
        return len(self.result)

    # -- outcome-level accessors -------------------------------------------

    @property
    def is_degraded(self) -> bool:
        """Whether this is a partial answer (sites were unreachable)."""
        return self.degradation is not None and self.degradation.is_degraded

    @property
    def missing_sites(self) -> List[str]:
        """Unreachable store labels (empty for complete answers)."""
        return list(self.degradation.missing_sites) if self.degradation else []

    def copy(self) -> "QueryOutcome":
        """An independent copy (mutating ``rows`` cannot leak back)."""
        return QueryOutcome(
            result=self.result.copy(),
            plan=self.plan,
            degradation=self.degradation,
            cache=self.cache,
        )

"""Unified per-level volume and latency accounting.

:class:`VolumeStats` replaces the two hand-rolled counters the legacy
data planes grew independently (``FlowstreamStats`` with
``raw_bytes_ingested``/``summary_bytes_exported`` and ``TierStats`` with
``raw_bytes``/``router_summary_bytes``/``region_summary_bytes``): one
structure tracks, for every level of an arbitrary-depth hierarchy, the
raw volume entering it, the summary volume flowing through it, and the
wall-clock the rollup spent there.

The legacy attribute names survive as deprecated aliases so existing
callers and tests keep working:

* ``raw_bytes_ingested`` → :attr:`VolumeStats.raw_bytes`
* ``raw_records_ingested`` → :attr:`VolumeStats.raw_records`
* ``summary_bytes_exported`` → :attr:`VolumeStats.exported_bytes`
* ``<level>_summary_bytes`` (e.g. ``router_summary_bytes``,
  ``region_summary_bytes``) → that level's ``summary_bytes_out``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class LevelVolume:
    """Byte/latency accounting for one hierarchy level."""

    level: str
    raw_bytes: int = 0
    raw_items: int = 0
    #: summary bytes received from child stores during rollup
    summary_bytes_in: int = 0
    #: summary bytes this level shipped upward (or into FlowDB)
    summary_bytes_out: int = 0
    #: number of summaries this level exported
    exports: int = 0
    #: wall-clock seconds the epoch rollup spent at this level
    rollup_seconds: float = 0.0
    #: federated queries answered (at least partially) from this level
    queries_served: int = 0
    #: partial-result bytes this level shipped to the query plane
    query_bytes_out: int = 0


class VolumeStats:
    """Volume accounting across a whole hierarchy runtime."""

    def __init__(self, levels: Optional[Iterable[str]] = None) -> None:
        self.per_level: Dict[str, LevelVolume] = {}
        for name in levels or ():
            self.per_level[name] = LevelVolume(name)
        self.epochs_closed = 0
        #: summaries delivered into FlowDB at the root, and their bytes
        self.exported_summaries = 0
        self.exported_bytes = 0
        #: query-plane routing census (filled by the federated planner)
        self.queries_cloud = 0
        self.queries_federated = 0
        self.queries_cached = 0

    # -- structured access --------------------------------------------------

    def level(self, name: str) -> LevelVolume:
        """The accounting bucket for one level (created on first use)."""
        bucket = self.per_level.get(name)
        if bucket is None:
            bucket = self.per_level[name] = LevelVolume(name)
        return bucket

    def levels(self) -> List[LevelVolume]:
        """All level buckets, in registration order."""
        return list(self.per_level.values())

    @property
    def raw_bytes(self) -> int:
        """Raw bytes ingested across every level."""
        return sum(v.raw_bytes for v in self.per_level.values())

    @property
    def raw_records(self) -> int:
        """Raw items ingested across every level."""
        return sum(v.raw_items for v in self.per_level.values())

    @property
    def reduction_factor(self) -> float:
        """Raw traffic volume over root-exported summary volume."""
        if self.exported_bytes == 0:
            return float("inf") if self.raw_bytes else 1.0
        return self.raw_bytes / self.exported_bytes

    # -- deprecated legacy aliases -------------------------------------------

    @property
    def raw_bytes_ingested(self) -> int:
        """Deprecated: use :attr:`raw_bytes`."""
        warnings.warn(
            "raw_bytes_ingested is deprecated; use VolumeStats.raw_bytes",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.raw_bytes

    @property
    def raw_records_ingested(self) -> int:
        """Deprecated: use :attr:`raw_records`."""
        warnings.warn(
            "raw_records_ingested is deprecated; use VolumeStats.raw_records",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.raw_records

    @property
    def summary_bytes_exported(self) -> int:
        """Deprecated: use :attr:`exported_bytes`."""
        warnings.warn(
            "summary_bytes_exported is deprecated; use "
            "VolumeStats.exported_bytes",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.exported_bytes

    def __getattr__(self, name: str):
        # legacy per-level aliases: router_summary_bytes, region_summary_bytes,
        # and their arbitrary-depth siblings (<level>_summary_bytes)
        if name.endswith("_summary_bytes"):
            level = name[: -len("_summary_bytes")]
            bucket = self.__dict__.get("per_level", {}).get(level)
            if bucket is not None:
                warnings.warn(
                    f"{name} is deprecated; use "
                    f"VolumeStats.level({level!r}).summary_bytes_out",
                    DeprecationWarning,
                    stacklevel=2,
                )
                return bucket.summary_bytes_out
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        levels = ", ".join(
            f"{v.level}: raw={v.raw_bytes} out={v.summary_bytes_out}"
            for v in self.per_level.values()
        )
        return (
            f"VolumeStats(epochs={self.epochs_closed}, "
            f"exported={self.exported_bytes}B, {levels})"
        )

"""Unified per-level volume and latency accounting.

:class:`VolumeStats` replaces the two hand-rolled counters the legacy
data planes grew independently (``FlowstreamStats`` with
``raw_bytes_ingested``/``summary_bytes_exported`` and ``TierStats`` with
``raw_bytes``/``router_summary_bytes``/``region_summary_bytes``): one
structure tracks, for every level of an arbitrary-depth hierarchy, the
raw volume entering it, the summary volume flowing through it, and the
wall-clock the rollup spent there.  The legacy alias attributes were
removed after one deprecation cycle — use :attr:`VolumeStats.raw_bytes`,
:attr:`VolumeStats.raw_records`, :attr:`VolumeStats.exported_bytes`,
and ``stats.level(name).summary_bytes_out``.

Fault accounting rides on the same buckets: every rollup export attempt
(first try, retry, or redelivery of a parked export) lands in its
level's ``transfer_attempts``/``transfer_failures``/``retried_bytes``,
so delivered volume and retry overhead stay separable.

These counters are the **single source of truth** for volume
accounting.  The observability layer (:mod:`repro.obs`) does not
double-count: :func:`repro.obs.bridge.install_runtime_metrics`
registers a collector that syncs the registry's volume families *from*
these fields (in lockstep, at collection time), so the Prometheus
exposition can never drift from the numbers the tests and benchmarks
pin, and the hot path pays nothing for metrics it is not exporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass
class LevelVolume:
    """Byte/latency accounting for one hierarchy level."""

    level: str
    raw_bytes: int = 0
    raw_items: int = 0
    #: summary bytes received from child stores during rollup
    summary_bytes_in: int = 0
    #: summary bytes this level shipped upward (or into FlowDB)
    summary_bytes_out: int = 0
    #: number of summaries this level exported
    exports: int = 0
    #: wall-clock seconds the epoch rollup spent at this level
    rollup_seconds: float = 0.0
    #: federated queries answered (at least partially) from this level
    queries_served: int = 0
    #: partial-result bytes this level shipped to the query plane
    query_bytes_out: int = 0
    #: rollup transfer attempts made at this level (incl. retries)
    transfer_attempts: int = 0
    #: rollup transfer attempts refused by the fault plan
    transfer_failures: int = 0
    #: bytes re-sent in retry/redelivery attempts (overhead, not volume)
    retried_bytes: int = 0
    #: exports parked after exhausting their retry budget
    exports_parked: int = 0
    #: parked exports later redelivered successfully
    exports_recovered: int = 0


class VolumeStats:
    """Volume accounting across a whole hierarchy runtime."""

    def __init__(self, levels: Optional[Iterable[str]] = None) -> None:
        self.per_level: Dict[str, LevelVolume] = {}
        for name in levels or ():
            self.per_level[name] = LevelVolume(name)
        self.epochs_closed = 0
        #: summaries delivered into FlowDB at the root, and their bytes
        self.exported_summaries = 0
        self.exported_bytes = 0
        #: query-plane routing census (filled by the federated planner)
        self.queries_cloud = 0
        self.queries_federated = 0
        self.queries_cached = 0
        #: federated queries that returned a partial (degraded) answer
        self.queries_degraded = 0

    # -- structured access --------------------------------------------------

    def level(self, name: str) -> LevelVolume:
        """The accounting bucket for one level (created on first use)."""
        bucket = self.per_level.get(name)
        if bucket is None:
            bucket = self.per_level[name] = LevelVolume(name)
        return bucket

    def levels(self) -> List[LevelVolume]:
        """All level buckets, in registration order."""
        return list(self.per_level.values())

    @property
    def raw_bytes(self) -> int:
        """Raw bytes ingested across every level."""
        return sum(v.raw_bytes for v in self.per_level.values())

    @property
    def raw_records(self) -> int:
        """Raw items ingested across every level."""
        return sum(v.raw_items for v in self.per_level.values())

    @property
    def reduction_factor(self) -> float:
        """Raw traffic volume over root-exported summary volume."""
        if self.exported_bytes == 0:
            return float("inf") if self.raw_bytes else 1.0
        return self.raw_bytes / self.exported_bytes

    # -- fault/retry accounting (summed across levels) -----------------------

    @property
    def transfer_attempts(self) -> int:
        """Rollup transfer attempts across every level (incl. retries)."""
        return sum(v.transfer_attempts for v in self.per_level.values())

    @property
    def transfer_failures(self) -> int:
        """Rollup transfer attempts the fault plan refused."""
        return sum(v.transfer_failures for v in self.per_level.values())

    @property
    def retried_bytes(self) -> int:
        """Bytes re-sent in retry/redelivery attempts across every level."""
        return sum(v.retried_bytes for v in self.per_level.values())

    @property
    def exports_parked(self) -> int:
        """Exports parked after exhausting retries, across every level."""
        return sum(v.exports_parked for v in self.per_level.values())

    @property
    def exports_recovered(self) -> int:
        """Parked exports redelivered successfully, across every level."""
        return sum(v.exports_recovered for v in self.per_level.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        levels = ", ".join(
            f"{v.level}: raw={v.raw_bytes} out={v.summary_bytes_out}"
            for v in self.per_level.values()
        )
        return (
            f"VolumeStats(epochs={self.epochs_closed}, "
            f"exported={self.exported_bytes}B, {levels})"
        )

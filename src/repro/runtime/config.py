"""Per-level configuration for the hierarchy runtime.

A :class:`~repro.runtime.runtime.HierarchyRuntime` provisions one data
store per hierarchy node; a :class:`LevelConfig` describes every store
at one *level* of the hierarchy: which aggregator kind it runs, the
primitive's granularity (node budget), the storage strategy and its
capacity, the privacy guard applied at that level's trust boundary, and
the level's export policy.  The paper's settings become pure
configuration — the flat Figure 5 system, the tiered Figure 2b variant,
and the full 4-level Figure 1 topologies all use the same runtime with
different level tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.datastore.storage import RoundRobinStorage, StorageStrategy
from repro.errors import PlacementError

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datastore.privacy import PrivacyGuard

#: Export policies: ``auto`` rolls summaries up to the nearest ancestor
#: store (or into FlowDB at the root when there is none); ``none`` keeps
#: every partition local — the store still cuts epochs, but nothing
#: leaves the level (the scenario harnesses, whose applications read the
#: stores directly, use this).
EXPORT_AUTO = "auto"
EXPORT_NONE = "none"
_EXPORT_POLICIES = (EXPORT_AUTO, EXPORT_NONE)


@dataclass
class LevelConfig:
    """How one hierarchy level's data stores are provisioned and run.

    ``aggregator`` is a primitive kind from the registry (``None``
    provisions a bare store whose aggregators are installed later, e.g.
    by applications through the Manager).  ``node_budget`` is the
    Flowtree granularity knob; ``config`` carries extra constructor
    arguments for non-Flowtree kinds.  ``storage`` overrides the default
    :class:`RoundRobinStorage` built from ``storage_bytes``.
    ``retain_partitions`` decides whether a store that forwards its
    summary to a parent also keeps the epoch partition in its own
    catalog (interior tiers usually do; pure edge forwarders do not).
    ``parallel`` opts this level's edge sites into the sharded ingest
    pool when the runtime runs with one (Flowtree aggregators only);
    setting it ``False`` keeps the level on in-process serial ingest.
    """

    aggregator: Optional[str] = "flowtree"
    aggregator_name: Optional[str] = None
    node_budget: Optional[int] = 8192
    config: Dict = field(default_factory=dict)
    storage_bytes: int = 256 * 1024 * 1024
    storage: Optional[Callable[[], StorageStrategy]] = None
    privacy: Optional["PrivacyGuard"] = None
    export: str = EXPORT_AUTO
    retain_partitions: bool = True
    parallel: bool = True
    #: bounds for adaptive budget resizing (the runtime's BudgetTuner);
    #: ``None`` defers to the tuner's global clamp.  ``node_budget``
    #: itself is *live* state once a tuner runs — resizes write back
    #: here so newly provisioned stores at this level match.
    min_node_budget: Optional[int] = None
    max_node_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.export not in _EXPORT_POLICIES:
            raise PlacementError(
                f"unknown export policy {self.export!r}; "
                f"known: {list(_EXPORT_POLICIES)}"
            )
        if self.storage is None and self.storage_bytes <= 0:
            raise PlacementError(
                f"storage_bytes must be positive, got {self.storage_bytes}"
            )
        if (
            self.min_node_budget is not None
            and self.max_node_budget is not None
            and self.max_node_budget < self.min_node_budget
        ):
            raise PlacementError(
                f"max_node_budget {self.max_node_budget} below "
                f"min_node_budget {self.min_node_budget}"
            )

    @property
    def resolved_aggregator_name(self) -> str:
        """The installed aggregator's name (defaults to its kind)."""
        return self.aggregator_name or self.aggregator or "flowtree"

    def make_storage(self) -> StorageStrategy:
        """A fresh storage strategy for one store at this level."""
        if self.storage is not None:
            return self.storage()
        return RoundRobinStorage(self.storage_bytes)

"""The generic arbitrary-depth data plane (Figures 1–3, unified).

The paper describes one recursive structure: data stores at *every*
level of a hierarchy (machine → line → factory → cloud; router → region
→ network → cloud), each aggregating its children's summaries and
shipping its own summary one level up, with only the root's exports
crossing the WAN.  Historically this repository had three divergent
hand-rolled copies of that data plane (the flat ``Flowstream``, the
3-level ``TieredFlowstream``, and the scenario harnesses wiring flat
stores through ``Manager.close_epochs``).  :class:`HierarchyRuntime`
replaces all of them:

* **Provisioning** — one :class:`~repro.datastore.store.DataStore` per
  hierarchy node whose level has a :class:`~repro.runtime.config.LevelConfig`,
  each with its level's aggregator, storage strategy, and privacy guard,
  all registered with a :class:`~repro.control.manager.Manager`.
* **Rollup** — a single generic level-by-level epoch close: edge stores
  export their live summaries into the nearest ancestor store (a
  fabric-accounted hop), interior stores merge + compress, and stores
  with no ancestor store export their epoch partitions into
  :class:`~repro.flowdb.db.FlowDB` across the WAN.
* **Query and control** — a :class:`~repro.flowql.executor.FlowQLExecutor`
  over the root FlowDB, and controller registration per node, over the
  same store set.

Per-hop volume and latency land in :class:`~repro.runtime.stats.VolumeStats`.
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.control.controller import BudgetTuner, Controller
from repro.control.manager import Manager
from repro.core.flowtree import FlowtreePrimitive
from repro.core.registry import PrimitiveRegistry, default_registry
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.partitions import Partition, PartitionCatalog
from repro.datastore.store import DataStore
from repro.datastore.summary_query import rehydrate
from repro.errors import PlacementError, StorageError, TransferError
from repro.faults import (
    FaultPlan,
    PendingExport,
    PendingExportQueue,
    RetryPolicy,
)
from repro.elastic import TopologyModel
from repro.flowdb.db import FlowDB
from repro.flowql.executor import FlowQLExecutor
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema, GeneralizationPolicy
from repro.flows.tree import Flowtree
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import Hierarchy, HierarchyNode, LevelSpec
from repro.obs import Observability
from repro.obs.bridge import (
    INGEST_SECONDS,
    ROLLUP_SECONDS,
    install_runtime_metrics,
)
from repro.parallel import (
    ParallelIngestConfig,
    ShardedIngestPool,
    SiteShardSpec,
)
from repro.query.plan import QueryOutcome
from repro.query.planner import FederatedQueryPlanner
from repro.runtime.config import EXPORT_AUTO, EXPORT_NONE, LevelConfig
from repro.runtime.stats import VolumeStats
from repro.storage import StorageEngine, decode_summary, encode_summary


class HierarchyRuntime:
    """Data stores at every configured level of an arbitrary hierarchy."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        levels: Mapping[str, LevelConfig],
        schema: FeatureSchema = FIVE_TUPLE,
        policy: Optional[GeneralizationPolicy] = None,
        epoch_seconds: float = 60.0,
        merge_node_budget: Optional[int] = 65536,
        fabric: Optional[NetworkFabric] = None,
        manager: Optional[Manager] = None,
        db: Optional[FlowDB] = None,
        registry: Optional[PrimitiveRegistry] = None,
        raw_record_bytes: int = 48,
        faults: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        observability: Optional[Observability] = None,
        parallel: Union[None, bool, int, ParallelIngestConfig] = None,
        storage: Optional[StorageEngine] = None,
    ) -> None:
        if not levels:
            raise PlacementError(
                "HierarchyRuntime needs at least one configured level"
            )
        known_levels = {spec.name for spec in hierarchy.levels()}
        unknown = sorted(set(levels) - known_levels)
        if unknown:
            raise PlacementError(
                f"levels {unknown} do not exist in the hierarchy; "
                f"known: {sorted(known_levels)}"
            )
        #: the single mutable topology seam: hierarchy + level table +
        #: generation; every derived view below rebuilds from it
        self.model = TopologyModel(hierarchy, dict(levels))
        self.policy = policy or GeneralizationPolicy.default_for(schema)
        self.epoch_seconds = epoch_seconds
        self.raw_record_bytes = raw_record_bytes
        self.fabric = fabric or NetworkFabric(hierarchy)
        self.retry_policy = retry_policy or RetryPolicy()
        #: metrics + tracing; pass ``Observability.disabled()`` to
        #: measure the uninstrumented baseline (bench_obs does)
        self.obs = observability or Observability()
        #: parked exports awaiting redelivery, by origin store path
        self._pending: Dict[str, PendingExportQueue] = {}
        #: timestamp of the previous epoch close (the current window start)
        self._last_close = 0.0
        if faults is not None:
            self.inject_faults(faults)
        self.manager = manager or Manager(
            hierarchy=hierarchy, fabric=self.fabric
        )
        if db is None:
            db = FlowDB(merge_node_budget=merge_node_budget, engine=storage)
        elif storage is not None:
            db.engine = storage
        self.db = db
        #: the storage seam shared with FlowDB: summaries land in its
        #: record log, runtime state in its manifest (memory by default)
        self.engine = db.engine
        self.executor = FlowQLExecutor(self.db)
        self.registry = registry or default_registry()
        self.controllers: Dict[str, Controller] = {}
        self._root = hierarchy.root.location
        # sharded parallel ingest (opt-in): resolve which edge sites are
        # pooled now, but fork the worker pool lazily on the first
        # pooled ingest so parallel-off runs never pay for it
        if isinstance(parallel, bool):
            parallel = ParallelIngestConfig() if parallel else None
        elif isinstance(parallel, int):
            parallel = ParallelIngestConfig(workers=parallel)
        self.parallel_config: Optional[ParallelIngestConfig] = parallel
        self._pool: Optional[ShardedIngestPool] = None
        #: adaptive budget tuner (opt-in via enable_adaptive_budgets)
        self._budget_tuner = None
        #: reconfig/restart drills already applied, by drill identity
        self._applied_drills: set = set()
        #: durability counters (fed to observability)
        self._restarts = 0
        self._recoveries = 0
        self._recovered_records = 0
        # provision one store per configured node, hierarchy order
        self._stores: Dict[str, DataStore] = {}  # by location path
        for node in hierarchy.nodes():
            config = self.model.levels.get(node.level.name)
            if config is None:
                continue
            self._provision_store(node, config)
        self._rebuild_views()
        self.stats = VolumeStats(
            [node.level.name for node, _, _ in self._plan]
        )
        # the unified query plane: FlowQL routes through the planner
        # (cloud executor, federated fan-out, cache, replication feed)
        self.planner = FederatedQueryPlanner(self)
        # opening over an engine that already holds a manifest *is* the
        # crash-recovery path: rebuild the FlowDB index from the record
        # log and restore queues/replicas/counters from the checkpoint
        manifest = self.engine.read_manifest()
        if manifest is not None:
            with self.obs.span("recover", engine=self.engine.name):
                self._recovered_records += self.db.recover(self.policy)
                self._restore_state(manifest)
                self._recoveries += 1
        install_runtime_metrics(self.obs, self)

    # -- the topology seam ---------------------------------------------------

    @property
    def hierarchy(self) -> Hierarchy:
        """The live (mutable, generation-versioned) hierarchy."""
        return self.model.hierarchy

    @property
    def levels(self) -> Dict[str, LevelConfig]:
        """The live per-level config table (the model's, not a copy)."""
        return self.model.levels

    def _provision_store(
        self, node: HierarchyNode, config: LevelConfig
    ) -> DataStore:
        """Create, equip, and register the store for one node."""
        store = DataStore(
            node.location,
            config.make_storage(),
            fabric=self.fabric,
            privacy=config.privacy,
        )
        if config.aggregator is not None:
            store.install_aggregator(
                Aggregator(
                    config.resolved_aggregator_name,
                    self._make_primitive(config, node.location),
                )
            )
        self.manager.register_store(store)
        self._stores[node.location.path] = store
        return store

    def _rebuild_views(self) -> None:
        """Re-derive every topology-indexed view from the model.

        Called once at construction and again after every
        reconfiguration op.  The derivations are pure functions of the
        hierarchy's DFS order and the store map, so a zero-reconfig run
        produces exactly the views the pre-elastic inline construction
        did — provisioning order, rollup order, labels, and ingestible
        set are all bit-identical.
        """
        plan: List[Tuple[HierarchyNode, LevelConfig, DataStore]] = []
        labels: Dict[str, str] = {}
        by_label: Dict[str, DataStore] = {}
        for node in self.model.hierarchy.nodes():
            store = self._stores.get(node.location.path)
            if store is None:
                continue
            config = self.model.levels.get(node.level.name)
            if config is None:
                continue
            plan.append((node, config, store))
            labels[node.location.path] = self._label_of(node)
            by_label[labels[node.location.path]] = store
        self._plan = plan
        self._labels = labels
        self._by_label = by_label
        # rollup bottom-up: deepest stores first; DFS order breaks ties,
        # so siblings close in provisioning order (deterministic)
        self._rollup_order = sorted(
            self._plan, key=lambda entry: -len(entry[0].ancestors())
        )
        # data enters at the edge: store-bearing nodes with no
        # store-bearing descendant are the ingest targets
        self._ingestible = {}
        for node, _, store in self._plan:
            if not any(
                child.location.path in self._stores
                for child in node.walk()
                if child is not node
            ):
                self._ingestible[self._labels[node.location.path]] = store
        self._pool_aggs = {}
        if self.parallel_config is not None:
            for node, config, store in self._plan:
                label = self._labels[node.location.path]
                if label not in self._ingestible or not config.parallel:
                    continue
                if config.aggregator is None:
                    continue
                name = config.resolved_aggregator_name
                primitive = store.aggregator(name).primitive
                if isinstance(primitive, FlowtreePrimitive):
                    self._pool_aggs[label] = name
        stats = getattr(self, "stats", None)
        if stats is not None:
            for node, _, _ in self._plan:
                stats.level(node.level.name)

    # -- live reconfiguration (the elastic ops) ------------------------------

    def site_join(
        self,
        site: str,
        level: Union[None, str, "LevelSpec"] = None,
        deadline: Optional[float] = None,
    ) -> HierarchyNode:
        """Attach a new site between epoch closes; see elastic.ops."""
        from repro.elastic import ops

        return ops.site_join(self, site, level=level, deadline=deadline)

    def site_leave(self, site: str, now: Optional[float] = None) -> int:
        """Drain a site out, migrating its summaries to a sibling."""
        from repro.elastic import ops

        return ops.site_leave(self, site, now=now)

    def level_split(
        self,
        level: str,
        new_level: str,
        groups: Mapping[str, Iterable[str]],
        deadline: Optional[float] = None,
        config: Optional[LevelConfig] = None,
    ) -> List[HierarchyNode]:
        """Insert a new level below ``level`` by grouping its children."""
        from repro.elastic import ops

        return ops.level_split(
            self, level, new_level,
            {name: list(members) for name, members in groups.items()},
            deadline=deadline, config=config,
        )

    def level_merge(self, level: str, now: Optional[float] = None) -> int:
        """Dissolve a level, reattaching its children one level up."""
        from repro.elastic import ops

        return ops.level_merge(self, level, now=now)

    def migrate_store(
        self, site: str, new_parent: str, now: Optional[float] = None
    ) -> Dict[str, str]:
        """Re-home a store (and subtree) under a new parent node."""
        from repro.elastic import ops

        return ops.migrate_store(self, site, new_parent, now=now)

    def enable_adaptive_budgets(
        self, tuner: Optional[BudgetTuner] = None
    ) -> BudgetTuner:
        """Let the control plane resize Flowtree budgets each close.

        Opt-in: without a tuner, level budgets stay exactly the static
        ``LevelConfig`` values and runs are bit-identical to the
        pre-elastic runtime.
        """
        self._budget_tuner = tuner or BudgetTuner()
        return self._budget_tuner

    # -- provisioning helpers ----------------------------------------------

    def _make_primitive(self, config: LevelConfig, location: Location):
        if config.aggregator == "flowtree":
            # built directly so every level shares the runtime's policy
            return FlowtreePrimitive(
                location, self.policy, node_budget=config.node_budget,
                **config.config,
            )
        return self.registry.create(
            config.aggregator, location, dict(config.config)
        )

    def _label_of(self, node: HierarchyNode) -> str:
        """A node's site label: its path relative to the hierarchy root."""
        path = node.location.path
        prefix = self._root.path + "/"
        return path[len(prefix):] if path.startswith(prefix) else path

    def _parent_store(
        self, node: HierarchyNode
    ) -> Optional[DataStore]:
        """The nearest ancestor node that carries a store."""
        probe = node.parent
        while probe is not None:
            store = self._stores.get(probe.location.path)
            if store is not None:
                return store
            probe = probe.parent
        return None

    # -- store access --------------------------------------------------------

    def stores(self) -> List[DataStore]:
        """Every provisioned store, hierarchy (DFS) order."""
        return [store for _, _, store in self._plan]

    def store_at(self, location: Location) -> DataStore:
        """The store at exactly this hierarchy location."""
        try:
            return self._stores[location.path]
        except KeyError as exc:
            raise PlacementError(
                f"no store provisioned at {location.path!r}"
            ) from exc

    def store_for(self, site: str) -> DataStore:
        """The store addressed by a root-relative site label."""
        store = self._by_label.get(site)
        if store is None:
            raise PlacementError(
                f"unknown site {site!r}; known: {sorted(self._by_label)}"
            )
        return store

    def stores_at_level(self, level_name: str) -> Dict[str, DataStore]:
        """Site label → store for every store at one level."""
        return {
            self._labels[node.location.path]: store
            for node, _, store in self._plan
            if node.level.name == level_name
        }

    def ingest_sites(self) -> List[str]:
        """Labels of the stores that accept raw ingest (the edge)."""
        return list(self._ingestible)

    def site_label(self, location: Location) -> str:
        """The root-relative site label of a store-bearing location."""
        label = self._labels.get(location.path)
        if label is None:
            raise PlacementError(
                f"no store provisioned at {location.path!r}"
            )
        return label

    def store_levels(self) -> List[str]:
        """Store-bearing level names, shallowest first."""
        depths: Dict[str, int] = {}
        for node, _, _ in self._plan:
            depth = len(node.ancestors())
            name = node.level.name
            if name not in depths or depth < depths[name]:
                depths[name] = depth
        return sorted(depths, key=lambda name: depths[name])

    # -- control plane -------------------------------------------------------

    def attach_controller(
        self, location: Location, controller: Optional[Controller] = None
    ) -> Controller:
        """Register (or create) the controller governing one node."""
        self.hierarchy.node(location)  # raises PlacementError if absent
        controller = controller or Controller(location)
        self.controllers[location.path] = controller
        return controller

    # -- fault tolerance ------------------------------------------------------

    @property
    def faults(self) -> Optional[FaultPlan]:
        """The active fault schedule (``None`` = faultless fabric)."""
        return self.fabric.faults

    def inject_faults(self, faults: Optional[FaultPlan]) -> None:
        """Install (or clear) the fault schedule on the fabric.

        A plan without an explicit ``epoch_seconds`` adopts the
        runtime's, so its outage windows line up with epoch closes.
        """
        if faults is not None and faults.epoch_seconds is None:
            faults.epoch_seconds = self.epoch_seconds
        self.fabric.inject_faults(faults)

    def _pending_for(self, store: DataStore) -> PendingExportQueue:
        queue = self._pending.get(store.location.path)
        if queue is None:
            queue = self._pending[store.location.path] = PendingExportQueue()
        return queue

    def pending_exports(self) -> int:
        """Exports parked across all stores, awaiting redelivery."""
        return sum(len(queue) for queue in self._pending.values())

    def pending_queue(self, site: str) -> PendingExportQueue:
        """The pending-export queue of one store (by site label)."""
        return self._pending_for(self.store_for(site))

    def _transfer_with_retry(self, volume, send, size_bytes, now):
        """Run one export through the bounded retry/backoff schedule.

        ``send(at_time)`` performs the transfer at a simulated time;
        attempt *n* runs at ``now`` plus the accumulated backoff.
        Returns ``(result, True)`` on delivery or ``(last_error,
        False)`` when the retry budget is exhausted; every attempt is
        accounted in the level's volume bucket.
        """
        last_error: Optional[TransferError] = None
        for attempt, at_time in self.retry_policy.attempt_times(now):
            volume.transfer_attempts += 1
            if attempt > 0:
                volume.retried_bytes += size_bytes
            with self.obs.span(
                "attempt", n=attempt, at=at_time, size_bytes=size_bytes
            ) as span:
                try:
                    return send(at_time), True
                except TransferError as exc:
                    volume.transfer_failures += 1
                    span.fail(getattr(exc, "reason", None) or str(exc))
                    link = getattr(exc, "link", None)
                    if link is not None:
                        span.set_attr("link", link)
                    last_error = exc
        return last_error, False

    # -- data path -----------------------------------------------------------

    def ingest(
        self,
        site: str,
        records: Iterable,
        stream_id: str = "flows",
        size_bytes: Optional[int] = None,
    ) -> int:
        """Feed raw records into an edge site's data store.

        Records need a ``first_seen`` timestamp (flow/packet records);
        raw volume is accounted against the site's level using each
        record's ``bytes`` attribute when present.  The batch-size
        fallback counts *once per batch*: records without a ``bytes``
        attribute must not each re-count the whole batch size.
        """
        store = self._ingestible.get(site)
        if store is None:
            raise PlacementError(
                f"unknown site {site!r}; known: {sorted(self._ingestible)}"
            )
        started = time.perf_counter()
        size = self.raw_record_bytes if size_bytes is None else size_bytes
        batch = [(record, record.first_seen) for record in records]
        pool_agg = self._pool_aggs.get(site)
        if pool_agg is not None and store.aggregator(pool_agg).wants(stream_id):
            # the pooled aggregator is fed through its worker process;
            # the store call still covers stats, triggers, and any other
            # subscribed aggregators
            count = store.ingest(
                stream_id, batch, size_bytes=size, exclude=pool_agg
            )
            self._ensure_pool().submit(
                site, [record for record, _ in batch]
            )
        else:
            count = store.ingest(stream_id, batch, size_bytes=size)
        node = self.hierarchy.node(store.location)
        volume = self.stats.level(node.level.name)
        volume.raw_items += count
        batch_bytes = 0
        unsized = False
        for record, _ in batch:
            record_bytes = getattr(record, "bytes", None)
            if record_bytes is None:
                unsized = True
            else:
                batch_bytes += record_bytes
        if unsized:
            batch_bytes += size
        volume.raw_bytes += batch_bytes
        self.obs.observe(
            INGEST_SECONDS,
            time.perf_counter() - started,
            level=node.level.name,
        )
        return count

    def close_epoch(self, now: float) -> int:
        """One generic level-by-level rollup (deepest stores first).

        Every store with an ancestor store forwards its live summary to
        it over the fabric (the interior merge); stores with no ancestor
        store cut their epoch partitions and export the Flowtree ones
        into FlowDB across the WAN (privacy-degraded when the level has
        a guard).  Returns the number of summaries exported to FlowDB.

        Exports run under the runtime's :class:`~repro.faults.
        RetryPolicy`; an export that exhausts its retries is parked in
        the store's pending queue and redelivered here, at the store's
        slot, on a later close — deepest-first order lets recovered
        child mass still reach the root within the same close.
        """
        exported = 0
        with self.obs.span(
            "close_epoch", epoch=self.stats.epochs_closed, at=now
        ) as root:
            if self._pool is not None:
                # the epoch barrier: drain every ingest worker and fold
                # the shard trees into the edge aggregators before the
                # (unchanged) deepest-first rollup sees them
                with self.obs.span(
                    "parallel_drain", epoch=self.stats.epochs_closed
                ):
                    self._install_shards(self._pool.flush())
            # compression pressure must be sampled before the rollup
            # resets the live trees for the next epoch
            pressure = (
                self._sample_pressure()
                if self._budget_tuner is not None
                else None
            )
            for node, config, store in self._rollup_order:
                started = time.perf_counter()
                level = node.level.name
                volume = self.stats.level(level)
                with self.obs.span(
                    "rollup",
                    site=self._labels[store.location.path],
                    level=level,
                ):
                    exported += self._drain_pending(node, store, now)
                    parent_store = (
                        self._parent_store(node)
                        if config.export == EXPORT_AUTO
                        else None
                    )
                    if config.export == EXPORT_NONE:
                        store.close_epoch(now)
                    elif parent_store is not None:
                        self._forward(node, config, store, parent_store, now)
                    else:
                        exported += self._export_to_db(node, store, now)
                elapsed = time.perf_counter() - started
                volume.rollup_seconds += elapsed
                self.obs.observe(ROLLUP_SECONDS, elapsed, level=level)
            if pressure is not None:
                self._adapt_budgets(pressure, now)
            if self._pool is not None:
                # adaptation may have resized edge trees during rollup;
                # push the current parameters to the workers so the next
                # epoch's shards are built to match
                self._sync_pool_specs()
            self.stats.epochs_closed += 1
            self._last_close = now
            # new data invalidates cached answers and advances query time
            self.planner.on_epoch_closed(now)
            # the epoch boundary is the durability point: everything
            # appended this close seals into one segment, and the
            # manifest checkpoint commits queues/replicas/counters —
            # a crash from here on recovers to *this* boundary
            self.engine.seal_epoch(
                self.stats.epochs_closed - 1, meta={"closed_at": now}
            )
            self.engine.write_manifest(self._storage_state())
            root.set_attr("exported", exported)
        # reconfiguration drills fire *between* closes: the epoch is
        # fully rolled up, the next one has not opened
        if self._apply_reconfig_drills(now):
            # reconfigs rename paths and bump the generation; re-commit
            # so a crash right after the drill recovers the new topology
            self.engine.write_manifest(self._storage_state())
        self._apply_restart_drills(now)
        return exported

    # -- adaptive budgets ----------------------------------------------------

    def _sample_pressure(self) -> Dict[str, Tuple[float, float]]:
        """Per-level (pressure, fullness) from the live edge trees.

        Pressure is the mean number of budget-overflow compress passes
        this epoch across the level's Flowtree stores; fullness is the
        mean end-of-epoch node count relative to the budget.
        """
        sums: Dict[str, List[float]] = {}
        for node, config, store in self._plan:
            if config.aggregator is None or config.node_budget is None:
                continue
            primitive = store.aggregator(
                config.resolved_aggregator_name
            ).primitive
            if not isinstance(primitive, FlowtreePrimitive):
                continue
            tree = primitive.tree
            bucket = sums.setdefault(node.level.name, [0.0, 0.0, 0.0])
            bucket[0] += tree._compressions
            bucket[1] += tree.node_count / max(1, primitive.node_budget)
            bucket[2] += 1.0
        return {
            level: (total / count, fullness / count)
            for level, (total, fullness, count) in sums.items()
            if count
        }

    def _adapt_budgets(
        self, pressure: Mapping[str, Tuple[float, float]], now: float
    ) -> None:
        """Apply the tuner's proposals to live trees and the model."""
        tuner = self._budget_tuner
        floor = self.policy.depth + 1
        for level, (level_pressure, fullness) in pressure.items():
            config = self.model.levels.get(level)
            if config is None or config.node_budget is None:
                continue
            proposed = tuner.propose(
                level,
                config.node_budget,
                level_pressure,
                fullness,
                floor,
                min_budget=config.min_node_budget,
                max_budget=config.max_node_budget,
                now=now,
            )
            if proposed is None:
                continue
            config.node_budget = proposed
            for node, node_config, store in self._plan:
                if node.level.name != level or node_config.aggregator is None:
                    continue
                primitive = store.aggregator(
                    node_config.resolved_aggregator_name
                ).primitive
                if isinstance(primitive, FlowtreePrimitive):
                    primitive.set_granularity(proposed)
            self.model.ledger.record("budget_resize")

    # -- reconfiguration drills (FaultPlan reconfig= grammar) -----------------

    def _apply_reconfig_drills(self, now: float) -> int:
        """Run the fault plan's scheduled reconfig ops for this boundary.

        A drill with ``epoch=e`` fires after the close that completed
        epoch ``e`` (0-based), exactly once.  Returns how many fired.
        """
        plan = self.faults
        if plan is None or not getattr(plan, "reconfigs", None):
            return 0
        applied = 0
        boundary = self.stats.epochs_closed - 1
        for drill in plan.reconfigs:
            if drill.epoch != boundary or drill in self._applied_drills:
                continue
            self._applied_drills.add(drill)
            applied += 1
            with self.obs.span(
                "reconfig_drill", op=drill.op, path=drill.path, at=now
            ):
                if drill.op == "join":
                    self.site_join(drill.path)
                elif drill.op == "leave":
                    self.site_leave(drill.path, now=now)
                elif drill.op == "migrate":
                    self.migrate_store(
                        drill.path, drill.new_parent or "", now=now
                    )
        return applied

    # -- durability (storage engine, manifests, restart drills) ---------------

    def _path_label(self, path: str) -> str:
        """A location path's root-relative site label."""
        prefix = self._root.path + "/"
        return path[len(prefix):] if path.startswith(prefix) else path

    def _encode_partition(self, partition: Partition) -> Dict[str, object]:
        return {
            "partition_id": partition.partition_id,
            "aggregator": partition.aggregator,
            "summary": encode_summary(partition.summary),
            "created_at": partition.created_at,
            "replicated_to": list(partition.replicated_to),
        }

    def _decode_partition(
        self, record: Mapping[str, object]
    ) -> Partition:
        return Partition(
            partition_id=record["partition_id"],
            aggregator=record["aggregator"],
            summary=decode_summary(record["summary"], self.policy),
            created_at=record["created_at"],
            replicated_to=list(record.get("replicated_to", [])),
        )

    def _encode_replicas(
        self, catalog: PartitionCatalog
    ) -> List[Dict[str, object]]:
        encoded = []
        for partition in catalog.all():
            try:
                encoded.append(self._encode_partition(partition))
            except StorageError:
                # non-flowtree replica: not durable, dropped on restart
                continue
        return encoded

    def _storage_state(self) -> Dict[str, object]:
        """The runtime state a manifest checkpoints at each boundary.

        Everything a killed process cannot re-derive from the record
        log: epoch counters, topology generation, parked exports (with
        their dedup sets), and replica catalogs.  Live aggregator trees
        are deliberately absent — at a boundary they are empty, which is
        exactly why the boundary is the durability point.
        """
        pending = {}
        for path, queue in self._pending.items():
            if queue.entries or queue._delivered_ids:
                pending[path] = queue.to_state(encode_summary)
        replicas = {}
        for _, _, store in self._plan:
            encoded = self._encode_replicas(store.replicas)
            if encoded:
                replicas[store.location.path] = encoded
        return {
            "epochs_closed": self.stats.epochs_closed,
            "last_close": self._last_close,
            "generation": self.model.generation,
            "pending": pending,
            "replicas": replicas,
            "planner_replicas": self._encode_replicas(
                self.planner.replica_store.replicas
            ),
        }

    def _restore_state(self, manifest: Mapping[str, object]) -> None:
        """Adopt a manifest checkpoint (counters, queues, replicas)."""
        self.stats.epochs_closed = int(manifest.get("epochs_closed", 0))
        self._last_close = float(manifest.get("last_close", 0.0))
        self.model.generation = int(
            manifest.get("generation", self.model.generation)
        )
        for path, state in manifest.get("pending", {}).items():
            if path in self._stores:
                self._pending[path] = PendingExportQueue.from_state(
                    state, lambda record: decode_summary(record, self.policy)
                )
        for path, records in manifest.get("replicas", {}).items():
            store = self._stores.get(path)
            if store is None:
                continue
            for record in records:
                if record["partition_id"] not in store.replicas:
                    store.replicas.add(self._decode_partition(record))
        replica_store = self.planner.replica_store
        for record in manifest.get("planner_replicas", []):
            if record["partition_id"] not in replica_store.replicas:
                replica_store.replicas.add(self._decode_partition(record))

    def _reset_store(self, store: DataStore, config: LevelConfig) -> None:
        """Discard one store's volatile state (the 'kill' half).

        Aggregators are reinstalled from the level config (fresh, empty
        primitives) and both partition catalogs are cleared; retained
        interior partitions are volatile by design — root mass never
        depends on them, and the manifest restores replicas separately.
        """
        for aggregator in list(store.aggregators()):
            store.remove_aggregator(aggregator.name)
        if config.aggregator is not None:
            store.install_aggregator(
                Aggregator(
                    config.resolved_aggregator_name,
                    self._make_primitive(config, store.location),
                )
            )
        store.catalog = PartitionCatalog()
        store.replicas = PartitionCatalog()

    def restart(self, now: float) -> Dict[str, int]:
        """Kill and recover the whole runtime from its storage engine.

        The in-process equivalent of SIGKILL + reopen: ingest workers
        stop, every store is reprovisioned empty, the pending queues and
        FlowDB index are dropped — then everything recovers from the
        engine (record log + last manifest).  Fabric and volume counters
        survive deliberately: the network is not part of the process,
        and keeping them makes drilled runs comparable to clean ones.
        """
        with self.obs.span("restart", site="*", at=now):
            self.shutdown()
            for _, config, store in self._plan:
                self._reset_store(store, config)
            self._pending = {}
            self.planner.replica_store.replicas = PartitionCatalog()
            recovered = self.db.recover(self.policy)
            manifest = self.engine.read_manifest()
            if manifest is not None:
                self._restore_state(manifest)
            self.planner.on_epoch_closed(now)
            self._restarts += 1
            self._recoveries += 1
            self._recovered_records += recovered
        return {"recovered_records": recovered}

    def restart_site(self, site: str, now: float) -> Dict[str, int]:
        """Kill and recover one store (by site label) from the engine."""
        store = self.store_for(site)
        node = self.hierarchy.node(store.location)
        config = self.model.levels[node.level.name]
        with self.obs.span("restart", site=site, at=now):
            self._reset_store(store, config)
            self._pending.pop(store.location.path, None)
            restored = 0
            manifest = self.engine.read_manifest()
            if manifest is not None:
                state = manifest.get("pending", {}).get(store.location.path)
                if state is not None:
                    self._pending[store.location.path] = (
                        PendingExportQueue.from_state(
                            state,
                            lambda record: decode_summary(
                                record, self.policy
                            ),
                        )
                    )
                    restored += len(self._pending[store.location.path])
                for record in manifest.get("replicas", {}).get(
                    store.location.path, []
                ):
                    store.replicas.add(self._decode_partition(record))
                    restored += 1
            self._restarts += 1
        return {"restored": restored}

    def _apply_restart_drills(self, now: float) -> None:
        """Run the fault plan's scheduled restarts for this boundary.

        Fires after reconfig drills (a drill schedule that renames a
        site and restarts it in the same boundary sees the new name),
        exactly once per drill.  Naming the hierarchy root restarts the
        whole runtime.
        """
        plan = self.faults
        if plan is None or not getattr(plan, "restarts", None):
            return
        boundary = self.stats.epochs_closed - 1
        for drill in plan.restarts:
            if drill.epoch != boundary or drill in self._applied_drills:
                continue
            self._applied_drills.add(drill)
            # the root (store-bearing or not) means the whole runtime
            if drill.site == self._root.path:
                self.restart(now)
            else:
                self.restart_site(drill.site, now)

    def storage_stats(self) -> Dict[str, object]:
        """Engine counters plus the runtime's durability counters."""
        stats = self.engine.stats()
        stats["restarts"] = self._restarts
        stats["recoveries"] = self._recoveries
        stats["recovered_records"] = self._recovered_records
        return stats

    # -- parallel ingest -----------------------------------------------------

    def _site_shard_spec(self, site: str) -> SiteShardSpec:
        primitive = self._ingestible[site].aggregator(
            self._pool_aggs[site]
        ).primitive
        return SiteShardSpec(
            node_budget=primitive.node_budget,
            compress_ratio=primitive.tree.compress_ratio,
            metric=primitive.metric,
        )

    def _ensure_pool(self) -> ShardedIngestPool:
        """The sharded ingest pool, forked on first pooled ingest.

        A pool forked under an older topology generation is drained
        (its shards fold into the edge aggregators) and replaced, so
        the worker site assignment always matches the live topology.
        """
        if (
            self._pool is not None
            and self._pool.generation != self.model.generation
        ):
            self._install_shards(self._pool.flush())
            self._pool.shutdown()
            self._pool = None
        if self._pool is None:
            crash_points = {}
            if self.faults is not None:
                for site in self._pool_aggs:
                    points = self.faults.crash_points(site)
                    if points:
                        crash_points[site] = points
            self._pool = ShardedIngestPool(
                self.policy,
                {site: self._site_shard_spec(site) for site in self._pool_aggs},
                self.parallel_config,
                base_epoch=self.stats.epochs_closed,
                crash_points=crash_points or None,
                generation=self.model.generation,
            )
        return self._pool

    def _install_shards(
        self, summaries: Mapping[str, Dict[str, object]]
    ) -> None:
        """Fold the workers' epoch shards into the edge aggregators.

        An aggregator that saw nothing in-process this epoch adopts the
        shard tree wholesale — node seqs and compression counters
        included, which is what keeps parallel mode bit-identical to
        serial ingest.  Anything already ingested in-process (mixed
        serial/parallel use of one site) merges instead.
        """
        for site, summary in summaries.items():
            self.engine.record_shard(site, summary["items"])
            aggregator = self._ingestible[site].aggregator(
                self._pool_aggs[site]
            )
            primitive = aggregator.primitive
            shard = Flowtree.restore_state(self.policy, summary["state"])
            tree = primitive.tree
            if (
                primitive.items_ingested == 0
                and tree._next_seq == 1
                and tree._compressions == 0
            ):
                primitive.tree = shard
            else:
                tree.merge(shard)
            primitive.items_ingested += summary["items"]
            start = summary["epoch_start"]
            end = summary["epoch_end"]
            if start is not None and (
                primitive._epoch_start is None
                or start < primitive._epoch_start
            ):
                primitive._epoch_start = start
            if end is not None and (
                primitive._epoch_end is None or end > primitive._epoch_end
            ):
                primitive._epoch_end = end
            aggregator.items_this_epoch += summary["items"]
            if aggregator.epoch_opened_at is None:
                aggregator.epoch_opened_at = summary["opened_at"]

    def _sync_pool_specs(self) -> None:
        for site in self._pool.sites:
            self._pool.sync_site(site, self._site_shard_spec(site))

    def shutdown(self) -> None:
        """Stop the parallel ingest workers, if any were started."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "HierarchyRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _forward(
        self,
        node: HierarchyNode,
        config: LevelConfig,
        store: DataStore,
        parent_store: DataStore,
        now: float,
    ) -> None:
        """Ship one store's live summary into its parent store."""
        name = config.resolved_aggregator_name
        aggregator = (
            store.aggregator(name) if config.aggregator is not None else None
        )
        if aggregator is None or aggregator.items_this_epoch == 0:
            if config.retain_partitions:
                store.close_epoch(now)
            return
        summary_bytes = aggregator.primitive.footprint_bytes()
        volume = self.stats.level(node.level.name)
        with self.obs.span(
            "forward",
            parent=parent_store.location.path,
            size_bytes=summary_bytes,
        ) as span:
            _, delivered = self._transfer_with_retry(
                volume,
                lambda at: store.export_summaries(name, parent_store, now=at),
                summary_bytes,
                now,
            )
            span.set_attr("outcome", "delivered" if delivered else "parked")
        if delivered:
            volume.summary_bytes_out += summary_bytes
            volume.exports += 1
            parent_node = self.hierarchy.node(parent_store.location)
            self.stats.level(parent_node.level.name).summary_bytes_in += (
                summary_bytes
            )
        else:
            # snapshot what would have crossed the link (privacy already
            # applied) before the local close wipes the live epoch
            outgoing = aggregator.primitive.summary()
            if store.privacy is not None:
                outgoing = store.privacy.export(name, outgoing)
            parked = self._pending_for(store).park(
                PendingExport(
                    export_id=(
                        f"{store.location.path}:{name}"
                        f":{self.stats.epochs_closed}"
                    ),
                    kind="forward",
                    summary=outgoing,
                    items=aggregator.items_this_epoch,
                    size_bytes=outgoing.size_bytes,
                    origin=store.location.path,
                    label=name,
                    created_at=now,
                )
            )
            if parked:
                volume.exports_parked += 1
        if config.retain_partitions:
            store.close_epoch(now)
        else:
            aggregator.close_epoch(now, store.storage_pressure())

    def _export_to_db(
        self, node: HierarchyNode, store: DataStore, now: float
    ) -> int:
        """Cut a top store's epoch and export its Flowtrees to FlowDB."""
        volume = self.stats.level(node.level.name)
        exported = 0
        for partition in store.close_epoch(now):
            if partition.summary.kind != "flowtree":
                continue
            outgoing = partition.summary
            if store.privacy is not None:
                # the WAN hop leaves this level's trust domain: the
                # cloud only ever sees the policy-degraded view
                outgoing = store.privacy.export(
                    partition.aggregator, outgoing
                )
            if store.location.path != self._root.path:
                with self.obs.span(
                    "flowdb_export",
                    partition=partition.partition_id,
                    size_bytes=outgoing.size_bytes,
                ) as span:
                    _, delivered = self._transfer_with_retry(
                        volume,
                        lambda at: self.fabric.transfer(
                            store.location, self._root,
                            outgoing.size_bytes, at,
                        ),
                        outgoing.size_bytes,
                        now,
                    )
                    span.set_attr(
                        "outcome", "delivered" if delivered else "parked"
                    )
                if not delivered:
                    parked = self._pending_for(store).park(
                        PendingExport(
                            export_id=partition.partition_id,
                            kind="flowdb",
                            summary=outgoing,
                            items=0,
                            size_bytes=outgoing.size_bytes,
                            origin=store.location.path,
                            label=partition.partition_id,
                            created_at=now,
                        )
                    )
                    if parked:
                        volume.exports_parked += 1
                    continue
            volume.summary_bytes_out += outgoing.size_bytes
            volume.exports += 1
            self.stats.exported_bytes += outgoing.size_bytes
            self.stats.exported_summaries += 1
            self.db.insert(
                location=self._labels[store.location.path],
                interval=outgoing.meta.interval,
                tree=outgoing.payload,
            )
            exported += 1
        return exported

    def _drain_pending(
        self, node: HierarchyNode, store: DataStore, now: float
    ) -> int:
        """Redeliver this store's parked exports, oldest first.

        Runs before the store's fresh export so recovered mass joins
        the current rollup.  A redelivery that fails again (the link is
        still down) is re-queued at the front and the drain stops — the
        remaining entries would cross the same links.  Returns how many
        parked summaries reached FlowDB.
        """
        queue = self._pending.get(store.location.path)
        if not queue:
            return 0
        exported = 0
        while queue:
            entry = queue.pop()
            entry.attempts += 1
            with self.obs.span(
                "redeliver",
                export_id=entry.export_id,
                kind=entry.kind,
                size_bytes=entry.size_bytes,
            ) as span:
                if entry.kind == "forward":
                    delivered = self._deliver_forward(
                        node, store, entry, now
                    )
                else:
                    delivered = self._deliver_flowdb(node, store, entry, now)
                    exported += int(delivered)
                span.set_attr(
                    "outcome", "recovered" if delivered else "requeued"
                )
            if not delivered:
                queue.requeue(entry)
                break
            queue.mark_delivered(entry.export_id)
            # a delivered re-homed migration is no longer in flight
            self.model.ledger.resolve(entry.export_id)
        return exported

    def _deliver_forward(
        self,
        node: HierarchyNode,
        store: DataStore,
        entry: PendingExport,
        now: float,
    ) -> bool:
        """Redeliver one parked child→parent summary (Merge on arrival).

        The snapshot is already privacy-degraded; it is combined into
        the parent's *current* live epoch under the shared-location
        rule, so the mass arrives delayed but intact.
        """
        parent_store = self._parent_store(node)
        if parent_store is None:
            # the level lost its ancestor store (reconfiguration);
            # redeliver straight to FlowDB rather than strand the data
            return self._deliver_flowdb(node, store, entry, now)
        volume = self.stats.level(node.level.name)
        _, delivered = self._transfer_with_retry(
            volume,
            lambda at: self.fabric.transfer(
                store.location, parent_store.location, entry.size_bytes, at
            ),
            entry.size_bytes,
            now,
        )
        if not delivered:
            return False
        primitive = rehydrate(entry.summary)
        primitive.items_ingested = entry.items
        # the mass arrives *delayed*: it joins the parent's current
        # epoch window so the paper's shared-time merge precondition
        # holds against this close's fresh exports (the child's own
        # retained partition keeps the original interval)
        primitive._epoch_start = self._last_close
        primitive._epoch_end = now
        if parent_store.owns(entry.label):
            target = parent_store.aggregator(entry.label)
            target.primitive.combine(primitive)
        else:
            # a reconfigured parent may lack the aggregator (re-homed
            # migration landing at a store of another kind): adopt it
            target = Aggregator(entry.label, primitive)
            parent_store.install_aggregator(target)
        target.items_this_epoch += entry.items
        if target.epoch_opened_at is None:
            target.epoch_opened_at = now
        store.lineage.record(
            operation="export",
            location=parent_store.location,
            timestamp=now,
            detail=(
                f"{entry.label}->{parent_store.location.path} "
                f"(recovered after {entry.attempts} closes)"
            ),
        )
        volume.summary_bytes_out += entry.size_bytes
        volume.exports += 1
        volume.exports_recovered += 1
        parent_node = self.hierarchy.node(parent_store.location)
        self.stats.level(parent_node.level.name).summary_bytes_in += (
            entry.size_bytes
        )
        return True

    def _deliver_flowdb(
        self,
        node: HierarchyNode,
        store: DataStore,
        entry: PendingExport,
        now: float,
    ) -> bool:
        """Redeliver one parked root-level partition into FlowDB."""
        volume = self.stats.level(node.level.name)
        if store.location.path != self._root.path:
            _, delivered = self._transfer_with_retry(
                volume,
                lambda at: self.fabric.transfer(
                    store.location, self._root, entry.size_bytes, at
                ),
                entry.size_bytes,
                now,
            )
            if not delivered:
                return False
        volume.summary_bytes_out += entry.size_bytes
        volume.exports += 1
        volume.exports_recovered += 1
        self.stats.exported_bytes += entry.size_bytes
        self.stats.exported_summaries += 1
        self.db.insert(
            location=self._labels[store.location.path],
            interval=entry.summary.meta.interval,
            tree=entry.summary.payload,
        )
        return True

    # -- query path ------------------------------------------------------------

    def query(
        self, flowql: str, now: Optional[float] = None
    ) -> QueryOutcome:
        """Answer a FlowQL query through the federated planner.

        Queries the root FlowDB covers run there unchanged; anything
        else fans out to the shallowest covering hierarchy level.
        Returns a typed :class:`~repro.query.plan.QueryOutcome` —
        result access (``rows``/``scalar``/...) delegates to the
        underlying :class:`~repro.flowql.executor.FlowQLResult`, and
        ``outcome.plan`` / ``outcome.degradation`` / ``outcome.cache``
        say where the answer came from and whether any site was
        unreachable.
        """
        return self.planner.execute(flowql, now=now)

    def subscribe(
        self,
        flowql: str,
        on_update: Optional[Callable] = None,
        now: Optional[float] = None,
    ):
        """Register a standing FlowQL query (``SUBSCRIBE SELECT ...``).

        The planner materializes the query once and delta-maintains the
        result at every epoch close, publishing a typed
        :class:`~repro.query.subscriptions.SubscriptionUpdate` per
        boundary — identical to what re-executing the query would
        return, at a fraction of the read/shipping cost.  Returns the
        :class:`~repro.query.subscriptions.Subscription` handle
        (``latest()``, ``updates_since()``, ``cancel()``); pass
        ``on_update`` to be called synchronously per update instead of
        polling.  Bare ``SELECT ...`` text is accepted too.
        """
        return self.planner.subscriptions.register(
            flowql, on_update=on_update, now=now
        )

    def wan_bytes(self) -> int:
        """Bytes that crossed a link into the hierarchy root."""
        return self.fabric.wan_bytes()

    def total_network_bytes(self) -> int:
        """Bytes carried across every fabric link (each hop counts)."""
        return self.fabric.total_bytes()

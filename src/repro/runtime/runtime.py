"""The generic arbitrary-depth data plane (Figures 1–3, unified).

The paper describes one recursive structure: data stores at *every*
level of a hierarchy (machine → line → factory → cloud; router → region
→ network → cloud), each aggregating its children's summaries and
shipping its own summary one level up, with only the root's exports
crossing the WAN.  Historically this repository had three divergent
hand-rolled copies of that data plane (the flat ``Flowstream``, the
3-level ``TieredFlowstream``, and the scenario harnesses wiring flat
stores through ``Manager.close_epochs``).  :class:`HierarchyRuntime`
replaces all of them:

* **Provisioning** — one :class:`~repro.datastore.store.DataStore` per
  hierarchy node whose level has a :class:`~repro.runtime.config.LevelConfig`,
  each with its level's aggregator, storage strategy, and privacy guard,
  all registered with a :class:`~repro.control.manager.Manager`.
* **Rollup** — a single generic level-by-level epoch close: edge stores
  export their live summaries into the nearest ancestor store (a
  fabric-accounted hop), interior stores merge + compress, and stores
  with no ancestor store export their epoch partitions into
  :class:`~repro.flowdb.db.FlowDB` across the WAN.
* **Query and control** — a :class:`~repro.flowql.executor.FlowQLExecutor`
  over the root FlowDB, and controller registration per node, over the
  same store set.

Per-hop volume and latency land in :class:`~repro.runtime.stats.VolumeStats`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.control.controller import Controller
from repro.control.manager import Manager
from repro.core.flowtree import FlowtreePrimitive
from repro.core.registry import PrimitiveRegistry, default_registry
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.store import DataStore
from repro.errors import PlacementError
from repro.flowdb.db import FlowDB
from repro.flowql.executor import FlowQLExecutor, FlowQLResult
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema, GeneralizationPolicy
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import Hierarchy, HierarchyNode
from repro.query.planner import FederatedQueryPlanner
from repro.runtime.config import EXPORT_AUTO, EXPORT_NONE, LevelConfig
from repro.runtime.stats import VolumeStats


class HierarchyRuntime:
    """Data stores at every configured level of an arbitrary hierarchy."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        levels: Mapping[str, LevelConfig],
        schema: FeatureSchema = FIVE_TUPLE,
        policy: Optional[GeneralizationPolicy] = None,
        epoch_seconds: float = 60.0,
        merge_node_budget: Optional[int] = 65536,
        fabric: Optional[NetworkFabric] = None,
        manager: Optional[Manager] = None,
        db: Optional[FlowDB] = None,
        registry: Optional[PrimitiveRegistry] = None,
        raw_record_bytes: int = 48,
    ) -> None:
        if not levels:
            raise PlacementError(
                "HierarchyRuntime needs at least one configured level"
            )
        known_levels = {spec.name for spec in hierarchy.levels()}
        unknown = sorted(set(levels) - known_levels)
        if unknown:
            raise PlacementError(
                f"levels {unknown} do not exist in the hierarchy; "
                f"known: {sorted(known_levels)}"
            )
        self.hierarchy = hierarchy
        self.levels: Dict[str, LevelConfig] = dict(levels)
        self.policy = policy or GeneralizationPolicy.default_for(schema)
        self.epoch_seconds = epoch_seconds
        self.raw_record_bytes = raw_record_bytes
        self.fabric = fabric or NetworkFabric(hierarchy)
        self.manager = manager or Manager(
            hierarchy=hierarchy, fabric=self.fabric
        )
        self.db = db or FlowDB(merge_node_budget=merge_node_budget)
        self.executor = FlowQLExecutor(self.db)
        self.registry = registry or default_registry()
        self.controllers: Dict[str, Controller] = {}
        self._root = hierarchy.root.location
        # provision one store per configured node, hierarchy order
        self._plan: List[Tuple[HierarchyNode, LevelConfig, DataStore]] = []
        self._stores: Dict[str, DataStore] = {}  # by location path
        self._labels: Dict[str, str] = {}  # location path -> site label
        self._by_label: Dict[str, DataStore] = {}  # site label -> store
        for node in hierarchy.nodes():
            config = self.levels.get(node.level.name)
            if config is None:
                continue
            store = DataStore(
                node.location,
                config.make_storage(),
                fabric=self.fabric,
                privacy=config.privacy,
            )
            if config.aggregator is not None:
                store.install_aggregator(
                    Aggregator(
                        config.resolved_aggregator_name,
                        self._make_primitive(config, node.location),
                    )
                )
            self.manager.register_store(store)
            self._plan.append((node, config, store))
            self._stores[node.location.path] = store
            self._labels[node.location.path] = self._label_of(node)
            self._by_label[self._labels[node.location.path]] = store
        self.stats = VolumeStats(
            [node.level.name for node, _, _ in self._plan]
        )
        # rollup bottom-up: deepest stores first; DFS order breaks ties,
        # so siblings close in provisioning order (deterministic)
        self._rollup_order = sorted(
            self._plan, key=lambda entry: -len(entry[0].ancestors())
        )
        # data enters at the edge: store-bearing nodes with no
        # store-bearing descendant are the ingest targets
        self._ingestible: Dict[str, DataStore] = {}
        for node, _, store in self._plan:
            if not any(
                child.location.path in self._stores
                for child in node.walk()
                if child is not node
            ):
                self._ingestible[self._labels[node.location.path]] = store
        # the unified query plane: FlowQL routes through the planner
        # (cloud executor, federated fan-out, cache, replication feed)
        self.planner = FederatedQueryPlanner(self)

    # -- provisioning helpers ----------------------------------------------

    def _make_primitive(self, config: LevelConfig, location: Location):
        if config.aggregator == "flowtree":
            # built directly so every level shares the runtime's policy
            return FlowtreePrimitive(
                location, self.policy, node_budget=config.node_budget,
                **config.config,
            )
        return self.registry.create(
            config.aggregator, location, dict(config.config)
        )

    def _label_of(self, node: HierarchyNode) -> str:
        """A node's site label: its path relative to the hierarchy root."""
        path = node.location.path
        prefix = self._root.path + "/"
        return path[len(prefix):] if path.startswith(prefix) else path

    def _parent_store(
        self, node: HierarchyNode
    ) -> Optional[DataStore]:
        """The nearest ancestor node that carries a store."""
        probe = node.parent
        while probe is not None:
            store = self._stores.get(probe.location.path)
            if store is not None:
                return store
            probe = probe.parent
        return None

    # -- store access --------------------------------------------------------

    def stores(self) -> List[DataStore]:
        """Every provisioned store, hierarchy (DFS) order."""
        return [store for _, _, store in self._plan]

    def store_at(self, location: Location) -> DataStore:
        """The store at exactly this hierarchy location."""
        try:
            return self._stores[location.path]
        except KeyError as exc:
            raise PlacementError(
                f"no store provisioned at {location.path!r}"
            ) from exc

    def store_for(self, site: str) -> DataStore:
        """The store addressed by a root-relative site label."""
        store = self._by_label.get(site)
        if store is None:
            raise PlacementError(
                f"unknown site {site!r}; known: {sorted(self._by_label)}"
            )
        return store

    def stores_at_level(self, level_name: str) -> Dict[str, DataStore]:
        """Site label → store for every store at one level."""
        return {
            self._labels[node.location.path]: store
            for node, _, store in self._plan
            if node.level.name == level_name
        }

    def ingest_sites(self) -> List[str]:
        """Labels of the stores that accept raw ingest (the edge)."""
        return list(self._ingestible)

    def site_label(self, location: Location) -> str:
        """The root-relative site label of a store-bearing location."""
        label = self._labels.get(location.path)
        if label is None:
            raise PlacementError(
                f"no store provisioned at {location.path!r}"
            )
        return label

    def store_levels(self) -> List[str]:
        """Store-bearing level names, shallowest first."""
        depths: Dict[str, int] = {}
        for node, _, _ in self._plan:
            depth = len(node.ancestors())
            name = node.level.name
            if name not in depths or depth < depths[name]:
                depths[name] = depth
        return sorted(depths, key=lambda name: depths[name])

    # -- control plane -------------------------------------------------------

    def attach_controller(
        self, location: Location, controller: Optional[Controller] = None
    ) -> Controller:
        """Register (or create) the controller governing one node."""
        self.hierarchy.node(location)  # raises PlacementError if absent
        controller = controller or Controller(location)
        self.controllers[location.path] = controller
        return controller

    # -- data path -----------------------------------------------------------

    def ingest(
        self,
        site: str,
        records: Iterable,
        stream_id: str = "flows",
        size_bytes: Optional[int] = None,
    ) -> int:
        """Feed raw records into an edge site's data store.

        Records need a ``first_seen`` timestamp (flow/packet records);
        raw volume is accounted against the site's level using each
        record's ``bytes`` attribute when present.
        """
        store = self._ingestible.get(site)
        if store is None:
            raise PlacementError(
                f"unknown site {site!r}; known: {sorted(self._ingestible)}"
            )
        size = self.raw_record_bytes if size_bytes is None else size_bytes
        batch = [(record, record.first_seen) for record in records]
        count = store.ingest_batch(stream_id, batch, size_bytes=size)
        node = self.hierarchy.node(store.location)
        volume = self.stats.level(node.level.name)
        volume.raw_items += count
        volume.raw_bytes += sum(
            getattr(record, "bytes", size) for record, _ in batch
        )
        return count

    def close_epoch(self, now: float) -> int:
        """One generic level-by-level rollup (deepest stores first).

        Every store with an ancestor store forwards its live summary to
        it over the fabric (the interior merge); stores with no ancestor
        store cut their epoch partitions and export the Flowtree ones
        into FlowDB across the WAN (privacy-degraded when the level has
        a guard).  Returns the number of summaries exported to FlowDB.
        """
        exported = 0
        for node, config, store in self._rollup_order:
            started = time.perf_counter()
            volume = self.stats.level(node.level.name)
            parent_store = (
                self._parent_store(node)
                if config.export == EXPORT_AUTO
                else None
            )
            if config.export == EXPORT_NONE:
                store.close_epoch(now)
            elif parent_store is not None:
                self._forward(node, config, store, parent_store, now)
            else:
                exported += self._export_to_db(node, store, now)
            volume.rollup_seconds += time.perf_counter() - started
        self.stats.epochs_closed += 1
        # new data invalidates cached answers and advances query time
        self.planner.on_epoch_closed(now)
        return exported

    def _forward(
        self,
        node: HierarchyNode,
        config: LevelConfig,
        store: DataStore,
        parent_store: DataStore,
        now: float,
    ) -> None:
        """Ship one store's live summary into its parent store."""
        name = config.resolved_aggregator_name
        aggregator = (
            store.aggregator(name) if config.aggregator is not None else None
        )
        if aggregator is None or aggregator.items_this_epoch == 0:
            if config.retain_partitions:
                store.close_epoch(now)
            return
        summary_bytes = aggregator.primitive.footprint_bytes()
        store.export_summaries(name, parent_store, now=now)
        volume = self.stats.level(node.level.name)
        volume.summary_bytes_out += summary_bytes
        volume.exports += 1
        parent_node = self.hierarchy.node(parent_store.location)
        self.stats.level(parent_node.level.name).summary_bytes_in += (
            summary_bytes
        )
        if config.retain_partitions:
            store.close_epoch(now)
        else:
            aggregator.close_epoch(now, store.storage_pressure())

    def _export_to_db(
        self, node: HierarchyNode, store: DataStore, now: float
    ) -> int:
        """Cut a top store's epoch and export its Flowtrees to FlowDB."""
        volume = self.stats.level(node.level.name)
        exported = 0
        for partition in store.close_epoch(now):
            if partition.summary.kind != "flowtree":
                continue
            outgoing = partition.summary
            if store.privacy is not None:
                # the WAN hop leaves this level's trust domain: the
                # cloud only ever sees the policy-degraded view
                outgoing = store.privacy.export(
                    partition.aggregator, outgoing
                )
            if store.location.path != self._root.path:
                self.fabric.transfer(
                    store.location, self._root, outgoing.size_bytes, now
                )
            volume.summary_bytes_out += outgoing.size_bytes
            volume.exports += 1
            self.stats.exported_bytes += outgoing.size_bytes
            self.stats.exported_summaries += 1
            self.db.insert(
                location=self._labels[store.location.path],
                interval=outgoing.meta.interval,
                tree=outgoing.payload,
            )
            exported += 1
        return exported

    # -- query path ------------------------------------------------------------

    def query(
        self, flowql: str, now: Optional[float] = None
    ) -> FlowQLResult:
        """Answer a FlowQL query through the federated planner.

        Queries the root FlowDB covers run there unchanged; anything
        else fans out to the shallowest covering hierarchy level.  The
        chosen plan is available as ``planner.last_plan``.
        """
        return self.planner.execute(flowql, now=now)

    def wan_bytes(self) -> int:
        """Bytes that crossed a link into the hierarchy root."""
        return self.fabric.wan_bytes()

    def total_network_bytes(self) -> int:
        """Bytes carried across every fabric link (each hop counts)."""
        return self.fabric.total_bytes()

"""The unified hierarchy runtime: one data plane for every depth.

:class:`HierarchyRuntime` provisions data stores over any
:class:`~repro.hierarchy.topology.Hierarchy` from per-level
:class:`LevelConfig` tables and runs the generic epoch rollup (edge →
interior merge → WAN export into FlowDB) with per-hop fabric accounting
in :class:`VolumeStats`.  The flat/tiered Flowstream systems and the
scenario harnesses are facades over it; the :mod:`presets
<repro.runtime.presets>` module has the paper's 4-level topologies.
"""

from repro.runtime.config import EXPORT_AUTO, EXPORT_NONE, LevelConfig
from repro.runtime.presets import (
    factory_4level_runtime,
    flat_runtime,
    network_4level_runtime,
    tiered_runtime,
)
from repro.runtime.runtime import HierarchyRuntime
from repro.runtime.stats import LevelVolume, VolumeStats

__all__ = [
    "EXPORT_AUTO",
    "EXPORT_NONE",
    "LevelConfig",
    "LevelVolume",
    "VolumeStats",
    "HierarchyRuntime",
    "flat_runtime",
    "tiered_runtime",
    "network_4level_runtime",
    "factory_4level_runtime",
]

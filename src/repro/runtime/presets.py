"""Paper-faithful hierarchy runtimes as one-call presets.

The legacy systems become level tables over the same runtime:

* :func:`flat_runtime` — the Figure 5 Flowstream: edge stores only,
  summaries cross the WAN straight into FlowDB.
* :func:`tiered_runtime` — Figure 2b: a region tier merges router trees
  before anything touches the WAN.
* :func:`network_4level_runtime` — the full Figure 1b topology
  (router → region → network → cloud) with stores at all three
  non-cloud levels.
* :func:`factory_4level_runtime` — the Figure 1a topology
  (machine → line → factory → cloud); machine telemetry is modeled as
  flow records so the same Flowtree/FlowQL stack spans both use cases.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import PlacementError
from repro.faults import FaultPlan, RetryPolicy
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema, GeneralizationPolicy
from repro.hierarchy.topology import (
    EDGE_DEADLINE,
    LINE_DEADLINE,
    MACHINE_DEADLINE,
    Hierarchy,
)
from repro.obs import Observability
from repro.parallel import ParallelIngestConfig
from repro.runtime.config import LevelConfig
from repro.runtime.runtime import HierarchyRuntime
from repro.storage import StorageEngine


def flat_runtime(
    sites: List[str],
    schema: FeatureSchema = FIVE_TUPLE,
    policy: Optional[GeneralizationPolicy] = None,
    node_budget: int = 8192,
    epoch_seconds: float = 60.0,
    store_budget_bytes: int = 64 * 1024 * 1024,
    merge_node_budget: Optional[int] = 65536,
    faults: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    observability: Optional[Observability] = None,
    parallel: Union[None, bool, int, ParallelIngestConfig] = None,
    adaptive_budgets: bool = False,
    storage: Optional[StorageEngine] = None,
) -> HierarchyRuntime:
    """Edge stores at every site path, exporting straight to FlowDB."""
    if not sites:
        raise PlacementError("flat runtime needs at least one site")
    depths = {len(site.split("/")) for site in sites}
    if len(depths) > 1:
        raise PlacementError(
            "flat runtime needs sites of uniform depth; got depths "
            f"{sorted(depths)}"
        )
    hierarchy = Hierarchy.from_site_paths(sites)
    depth = depths.pop()
    levels = {
        # only the deepest level is store-bearing; intermediate path
        # segments are plain fabric nodes, exactly like the legacy
        # Flowstream
        f"level{depth}": LevelConfig(
            aggregator="flowtree",
            node_budget=node_budget,
            storage_bytes=store_budget_bytes,
        )
    }
    runtime = HierarchyRuntime(
        hierarchy,
        levels,
        schema=schema,
        policy=policy,
        epoch_seconds=epoch_seconds,
        merge_node_budget=merge_node_budget,
        faults=faults,
        retry_policy=retry_policy,
        observability=observability,
        parallel=parallel,
        storage=storage,
    )
    if adaptive_budgets:
        runtime.enable_adaptive_budgets()
    return runtime


def tiered_runtime(
    sites: List[str],
    schema: FeatureSchema = FIVE_TUPLE,
    policy: Optional[GeneralizationPolicy] = None,
    router_node_budget: int = 8192,
    region_node_budget: Optional[int] = 8192,
    epoch_seconds: float = 60.0,
    merge_node_budget: Optional[int] = 65536,
    store_budget_bytes: int = 256 * 1024 * 1024,
    faults: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    observability: Optional[Observability] = None,
    parallel: Union[None, bool, int, ParallelIngestConfig] = None,
    adaptive_budgets: bool = False,
    storage: Optional[StorageEngine] = None,
) -> HierarchyRuntime:
    """Router stores merging into region stores before the WAN hop."""
    if not sites:
        raise PlacementError("tiered runtime needs at least one site")
    hierarchy = Hierarchy.from_site_paths(
        sites, level_names=["region", "router"]
    )
    levels = {
        "router": LevelConfig(
            aggregator="flowtree",
            node_budget=router_node_budget,
            storage_bytes=store_budget_bytes,
            retain_partitions=False,
        ),
        "region": LevelConfig(
            aggregator="flowtree",
            node_budget=region_node_budget,
            storage_bytes=store_budget_bytes,
        ),
    }
    runtime = HierarchyRuntime(
        hierarchy,
        levels,
        schema=schema,
        policy=policy,
        epoch_seconds=epoch_seconds,
        merge_node_budget=merge_node_budget,
        faults=faults,
        retry_policy=retry_policy,
        observability=observability,
        parallel=parallel,
        storage=storage,
    )
    if adaptive_budgets:
        runtime.enable_adaptive_budgets()
    return runtime


def network_4level_runtime(
    networks: int = 1,
    regions_per_network: int = 2,
    routers_per_region: int = 2,
    schema: FeatureSchema = FIVE_TUPLE,
    policy: Optional[GeneralizationPolicy] = None,
    router_node_budget: int = 8192,
    region_node_budget: Optional[int] = 8192,
    network_node_budget: Optional[int] = None,
    epoch_seconds: float = 60.0,
    merge_node_budget: Optional[int] = 65536,
    retain_partitions: bool = False,
    faults: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    observability: Optional[Observability] = None,
    parallel: Union[None, bool, int, ParallelIngestConfig] = None,
    adaptive_budgets: bool = False,
    storage: Optional[StorageEngine] = None,
) -> HierarchyRuntime:
    """The Figure 1b topology: router → region → network → cloud.

    Routers forward into region stores, regions into network stores,
    and only the network tier's (optionally unbounded) merged trees
    cross the WAN into FlowDB.  ``retain_partitions`` keeps epoch
    partitions in the router/region catalogs too, letting the federated
    planner drill below the export tier.
    """
    sites = [
        f"network{n + 1}/region{r + 1}/router{i + 1}"
        for n in range(networks)
        for r in range(regions_per_network)
        for i in range(routers_per_region)
    ]
    hierarchy = Hierarchy.from_site_paths(
        sites,
        level_names=["network", "region", "router"],
        deadlines=[EDGE_DEADLINE, LINE_DEADLINE, MACHINE_DEADLINE],
    )
    levels = {
        "router": LevelConfig(
            aggregator="flowtree",
            node_budget=router_node_budget,
            retain_partitions=retain_partitions,
        ),
        "region": LevelConfig(
            aggregator="flowtree",
            node_budget=region_node_budget,
            retain_partitions=retain_partitions,
        ),
        "network": LevelConfig(
            aggregator="flowtree", node_budget=network_node_budget
        ),
    }
    runtime = HierarchyRuntime(
        hierarchy,
        levels,
        schema=schema,
        policy=policy,
        epoch_seconds=epoch_seconds,
        merge_node_budget=merge_node_budget,
        faults=faults,
        retry_policy=retry_policy,
        observability=observability,
        parallel=parallel,
        storage=storage,
    )
    if adaptive_budgets:
        runtime.enable_adaptive_budgets()
    return runtime


def factory_4level_runtime(
    factories: int = 1,
    lines_per_factory: int = 2,
    machines_per_line: int = 3,
    schema: FeatureSchema = FIVE_TUPLE,
    policy: Optional[GeneralizationPolicy] = None,
    machine_node_budget: int = 4096,
    line_node_budget: Optional[int] = 8192,
    factory_node_budget: Optional[int] = None,
    epoch_seconds: float = 60.0,
    merge_node_budget: Optional[int] = 65536,
    retain_partitions: bool = False,
    faults: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    observability: Optional[Observability] = None,
    parallel: Union[None, bool, int, ParallelIngestConfig] = None,
    adaptive_budgets: bool = False,
    storage: Optional[StorageEngine] = None,
) -> HierarchyRuntime:
    """The Figure 1a topology: machine → line → factory → cloud (hq).

    Machine telemetry enters as flow records (the generalized-flow model
    covers any maskable feature schema), rolls up machine → line →
    factory, and only the factory tier's summaries reach FlowDB at hq.
    ``retain_partitions`` keeps epoch partitions in the machine/line
    catalogs too, letting the federated planner drill below the
    export tier.
    """
    sites = [
        f"factory{f + 1}/line{l + 1}/machine{m + 1}"
        for f in range(factories)
        for l in range(lines_per_factory)
        for m in range(machines_per_line)
    ]
    hierarchy = Hierarchy.from_site_paths(
        sites,
        root="hq",
        level_names=["factory", "line", "machine"],
        deadlines=[EDGE_DEADLINE, LINE_DEADLINE, MACHINE_DEADLINE],
    )
    levels = {
        "machine": LevelConfig(
            aggregator="flowtree",
            node_budget=machine_node_budget,
            retain_partitions=retain_partitions,
        ),
        "line": LevelConfig(
            aggregator="flowtree",
            node_budget=line_node_budget,
            retain_partitions=retain_partitions,
        ),
        "factory": LevelConfig(
            aggregator="flowtree", node_budget=factory_node_budget
        ),
    }
    runtime = HierarchyRuntime(
        hierarchy,
        levels,
        schema=schema,
        policy=policy,
        epoch_seconds=epoch_seconds,
        merge_node_budget=merge_node_budget,
        faults=faults,
        retry_policy=retry_policy,
        observability=observability,
        parallel=parallel,
        storage=storage,
    )
    if adaptive_budgets:
        runtime.enable_adaptive_budgets()
    return runtime

"""Flowtree wrapped as a computing primitive (Section VI).

The underlying data structure lives in :mod:`repro.flows.tree`; this
wrapper adds what the architecture needs around it: summary metadata
(time interval + location, enforcing the paper's merge precondition),
epoching, granularity control via the node budget, and self-adaptation.

This is the paper's exemplar of a *novel* computing primitive: it is the
only one in the library that satisfies all five design properties at
once, including domain knowledge (aggregation along subnet structure).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location
from repro.errors import GranularityError, SchemaMismatchError
from repro.flows.flowkey import GeneralizationPolicy
from repro.flows.records import FlowRecord, PacketRecord
from repro.flows.tree import Flowtree


class FlowtreePrimitive(ComputingPrimitive):
    """A Flowtree aggregator for one stream of flow/packet records.

    Supported query operators (Table II):

    * ``"query"`` — param ``key``: popularity score of one flow.
    * ``"drilldown"`` — param ``key``: children and scores.
    * ``"top_k"`` — params ``k``, ``depth``, ``metric``.
    * ``"above_x"`` — params ``x``, ``depth``, ``metric``.
    * ``"hhh"`` — params ``threshold``, ``metric``.
    * ``"total"`` — total ingested popularity mass.
    * ``"tree"`` — the live :class:`~repro.flows.tree.Flowtree` itself
      (used by FlowDB and the replication engine).
    """

    kind = "flowtree"

    def __init__(
        self,
        location: Location,
        policy: GeneralizationPolicy,
        node_budget: Optional[int] = 4096,
        metric: str = "bytes",
    ) -> None:
        super().__init__(location)
        self.policy = policy
        self.node_budget = node_budget
        self.metric = metric
        self.tree = Flowtree(policy, node_budget=node_budget, metric=metric)

    # -- ingest ----------------------------------------------------------

    def _ingest(self, item: Any, timestamp: float) -> None:
        if isinstance(item, FlowRecord):
            self.tree.add_flow(item)
        elif isinstance(item, PacketRecord):
            self.tree.add_packet(item)
        else:
            raise SchemaMismatchError(
                f"flowtree primitive cannot ingest {type(item).__name__}"
            )

    def ingest_many(self, timed_items) -> int:
        """Batched ingest through :meth:`Flowtree.add_many`.

        Epoch bounds and the item count update once for the whole batch,
        and the tree checks its node budget with bounded overshoot
        instead of per record.
        """
        pairs = []
        first = last = None
        for item, timestamp in timed_items:
            if isinstance(item, FlowRecord):
                pairs.append((item.key, item.score()))
            elif isinstance(item, PacketRecord):
                pairs.append((item.key, item.score()))
            else:
                raise SchemaMismatchError(
                    f"flowtree primitive cannot ingest {type(item).__name__}"
                )
            if first is None or timestamp < first:
                first = timestamp
            if last is None or timestamp > last:
                last = timestamp
        if not pairs:
            return 0
        if self._epoch_start is None or first < self._epoch_start:
            self._epoch_start = first
        if self._epoch_end is None or last > self._epoch_end:
            self._epoch_end = last
        self.items_ingested += len(pairs)
        self.tree.add_many(pairs)
        return len(pairs)

    def _reset(self) -> None:
        self.tree = Flowtree(
            self.policy, node_budget=self.node_budget, metric=self.metric
        )

    # -- summaries -------------------------------------------------------

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=self.tree.copy(),
            size_bytes=self.footprint_bytes(),
            attrs={
                "schema": self.policy.schema.name,
                "node_budget": self.node_budget,
                "metric": self.metric,
                "nodes": self.tree.node_count,
            },
        )

    def footprint_bytes(self) -> int:
        return self.tree.estimated_size_bytes()

    # -- queries ---------------------------------------------------------

    def query(self, request: QueryRequest) -> Any:
        params = request.params
        if request.operator == "query":
            return self.tree.query(params["key"])
        if request.operator == "query_bound":
            return self.tree.query_with_bound(params["key"])
        if request.operator == "drilldown":
            return self.tree.drilldown(params["key"])
        if request.operator == "top_k":
            return self.tree.top_k(
                params.get("k", 10),
                depth=params.get("depth"),
                metric=params.get("metric"),
            )
        if request.operator == "above_x":
            return self.tree.above_x(
                params["x"],
                depth=params.get("depth"),
                metric=params.get("metric"),
            )
        if request.operator == "hhh":
            return self.tree.hhh(
                params["threshold"], metric=params.get("metric")
            )
        if request.operator == "group_by":
            return self.tree.aggregate_by_feature(
                params["feature"],
                params["level"],
                metric=params.get("metric"),
                within=params.get("within"),
            )
        if request.operator == "total":
            return self.tree.total()
        if request.operator == "tree":
            return self.tree
        raise ValueError(
            f"flowtree primitive does not support operator {request.operator!r}"
        )

    # -- combine -----------------------------------------------------------

    def combine(self, other: "ComputingPrimitive") -> None:
        """Table II Merge, with the paper's shared-time-or-location check."""
        self._check_combinable(other)
        assert isinstance(other, FlowtreePrimitive)
        self.tree.merge(other.tree)

    # -- granularity / adaptation -------------------------------------------

    def set_granularity(self, granularity: float) -> None:
        """Granularity is the node budget; shrinking compresses now."""
        budget = int(granularity)
        if budget < self.policy.depth + 1:
            raise GranularityError(
                f"node budget {budget} below minimum chain length "
                f"{self.policy.depth + 1}"
            )
        self.node_budget = budget
        self.tree.node_budget = budget
        if self.tree.node_count > budget:
            self.tree.compress(target_nodes=budget)

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Grow the budget for hot, queried trees; shrink under pressure.

        This is the data-driven self-adjustment of Section VI: the tree
        invests nodes where data and queries are, within storage limits.
        Unbudgeted trees (``node_budget=None``) opt out of adaptation —
        they exist precisely to be exact.
        """
        if self.node_budget is None:
            return
        budget = self.node_budget
        if feedback.storage_pressure > 0.5:
            budget = max(self.policy.depth + 1, budget // 2)
        elif feedback.query_rate > 1.0 and feedback.storage_pressure < 0.1:
            budget = budget * 2
        if budget != self.node_budget:
            self.set_granularity(budget)

    @property
    def uses_domain_knowledge(self) -> bool:
        """Aggregation follows subnet/port structure — domain semantics."""
        return True

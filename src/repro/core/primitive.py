"""The computing-primitive interface (Section V.A).

A :class:`ComputingPrimitive` is a streaming aggregator that a data store
instantiates per subscribed stream.  The abstract interface maps the
paper's five design properties onto methods:

=====================================  ==================================
Design property                        Interface
=====================================  ==================================
(1) support arbitrary queries          :meth:`ComputingPrimitive.query`
(2) combinable summaries               :meth:`ComputingPrimitive.combine`
(3) adjustable aggregation granularity :meth:`ComputingPrimitive.set_granularity`
(4) self-adaptation                    :meth:`ComputingPrimitive.adapt`
(5) domain knowledge                   :attr:`ComputingPrimitive.uses_domain_knowledge`
=====================================  ==================================

Primitives also expose their resource footprint
(:meth:`ComputingPrimitive.footprint_bytes`) because the data store's
storage strategies and the manager's placement decisions are driven by
it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import SchemaMismatchError
from repro.core.summary import DataSummary, Location, SummaryMeta, TimeInterval


@dataclass(frozen=True)
class QueryRequest:
    """A generic query against a primitive's summary.

    ``operator`` selects among the primitive's supported operations (each
    primitive documents its set); ``params`` carries operator arguments.
    Primitives raise ``ValueError`` for unsupported operators, which is
    how the data store discovers it must route a sub-query elsewhere.
    """

    operator: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class AdaptationFeedback:
    """What a primitive learns from its environment between epochs.

    The data store computes this from observed stream rates, its storage
    pressure, and the granularity of recent queries; primitives use it to
    re-tune themselves (design property 4).
    """

    ingest_rate: float = 0.0
    storage_pressure: float = 0.0
    requested_granularity: Optional[float] = None
    query_rate: float = 0.0


class ComputingPrimitive(abc.ABC):
    """Base class for all aggregators installed in data stores."""

    #: A short, registry-unique kind name (e.g. ``"flowtree"``).
    kind: str = "abstract"

    def __init__(self, location: Location) -> None:
        self.location = location
        self._epoch_start: Optional[float] = None
        self._epoch_end: Optional[float] = None
        self.items_ingested = 0

    # -- ingest --------------------------------------------------------

    def ingest(self, item: Any, timestamp: float) -> None:
        """Feed one stream item into the aggregator."""
        if self._epoch_start is None or timestamp < self._epoch_start:
            self._epoch_start = timestamp
        if self._epoch_end is None or timestamp > self._epoch_end:
            self._epoch_end = timestamp
        self.items_ingested += 1
        self._ingest(item, timestamp)

    @abc.abstractmethod
    def _ingest(self, item: Any, timestamp: float) -> None:
        """Primitive-specific ingest."""

    def ingest_many(self, timed_items: Iterable[Tuple[Any, float]]) -> int:
        """Feed a batch of ``(item, timestamp)`` pairs; returns the count.

        The default just loops :meth:`ingest`.  Primitives with a cheaper
        batched path (amortized budget checks, fewer epoch-bound updates)
        override this — behavior must stay equivalent to the loop.
        """
        count = 0
        for item, timestamp in timed_items:
            self.ingest(item, timestamp)
            count += 1
        return count

    # -- summaries -----------------------------------------------------

    def interval(self) -> TimeInterval:
        """The time span covered by ingested data so far."""
        if self._epoch_start is None:
            return TimeInterval(0.0, 0.0)
        return TimeInterval(self._epoch_start, self._epoch_end)

    def meta(self) -> SummaryMeta:
        """Current summary metadata."""
        return SummaryMeta(interval=self.interval(), location=self.location)

    @abc.abstractmethod
    def summary(self) -> DataSummary:
        """Snapshot the current aggregate as a :class:`DataSummary`."""

    def reset_epoch(self) -> DataSummary:
        """Emit the current summary and start a fresh epoch.

        Data stores call this at epoch boundaries; the default
        implementation snapshots then delegates clearing to
        :meth:`_reset`.
        """
        snapshot = self.summary()
        self._epoch_start = None
        self._epoch_end = None
        self.items_ingested = 0
        self._reset()
        return snapshot

    @abc.abstractmethod
    def _reset(self) -> None:
        """Clear primitive state for a new epoch."""

    # -- the five design properties -------------------------------------

    @abc.abstractmethod
    def query(self, request: QueryRequest) -> Any:
        """Answer a query over the current aggregate (property 1)."""

    @abc.abstractmethod
    def combine(self, other: "ComputingPrimitive") -> None:
        """Merge another primitive's aggregate into this one (property 2).

        Implementations must call :meth:`_check_combinable` first.
        """

    def _check_combinable(self, other: "ComputingPrimitive") -> None:
        if type(other) is not type(self):
            raise SchemaMismatchError(
                f"cannot combine {self.kind!r} with {other.kind!r}"
            )
        if self.items_ingested == 0 or other.items_ingested == 0:
            # an empty summary combines with anything: adopt the other
            # side's metadata wholesale
            if self.items_ingested == 0 and other.items_ingested > 0:
                self._epoch_start = other._epoch_start
                self._epoch_end = other._epoch_end
                self.location = other.location
            self.items_ingested += other.items_ingested
            return
        if not self.meta().combinable_with(other.meta()):
            raise SchemaMismatchError(
                "summaries share neither time nor location: "
                f"{self.meta()} vs {other.meta()}"
            )
        # the combined epoch spans both inputs
        merged = self.meta().combined(other.meta())
        self._epoch_start = merged.interval.start
        self._epoch_end = merged.interval.end
        self.location = merged.location
        self.items_ingested += other.items_ingested

    @abc.abstractmethod
    def set_granularity(self, granularity: float) -> None:
        """Re-target the aggregation granularity (property 3).

        The unit is primitive-specific: bin seconds for time-binned
        statistics, a sampling probability for samplers, a node budget
        for trees.  Implementations document theirs.
        """

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Self-adapt to observed data and queries (property 4).

        The default does nothing; adaptive primitives override it.
        """

    @property
    def uses_domain_knowledge(self) -> bool:
        """Whether aggregation levels are semantic (property 5)."""
        return False

    # -- resources -------------------------------------------------------

    @abc.abstractmethod
    def footprint_bytes(self) -> int:
        """Approximate in-memory/wire size of the current aggregate."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(location={self.location.path!r}, "
            f"items={self.items_ingested})"
        )

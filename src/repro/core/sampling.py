"""The paper's toy computing primitive (Section V.B): random sampling.

An aggregator that keeps each incoming time-series point with
probability ``rate``.  It demonstrates all five design properties in
their simplest form:

* **Query** — time-range selection with value predicates, and unbiased
  estimates of totals/means (scaled by the sampling rate).
* **Combine** — two sampled series combine by thinning the finer-sampled
  one down to the coarser rate, then concatenating.
* **Aggregate** — the granularity knob *is* the sampling rate.
* **Self-adapt** — the rate follows the observed ingest rate and the
  granularity requested by recent queries.
* **Domain knowledge** — deliberately none; the paper uses this
  primitive as the example of domain-agnostic aggregation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.errors import GranularityError
from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location

_POINT_BYTES = 16  # one float timestamp + one float value


@dataclass(frozen=True)
class SampledPoint:
    """One retained time-series observation."""

    timestamp: float
    value: float


class RandomSamplePrimitive(ComputingPrimitive):
    """Bernoulli sampling over a numeric time series.

    Supported query operators:

    * ``"select"`` — params ``start``, ``end`` (optional), ``min_value``
      (optional): the retained points matching the window/predicate.
    * ``"estimate_count"`` — unbiased estimate of the number of stream
      points in a window (retained count divided by the rate).
    * ``"estimate_sum"`` / ``"mean"`` — unbiased sum estimate / plain
      mean of retained values in a window.
    """

    kind = "sample"

    def __init__(
        self,
        location: Location,
        rate: float = 0.1,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(location)
        if not 0.0 < rate <= 1.0:
            raise GranularityError(f"sampling rate must be in (0, 1], got {rate}")
        self.rate = rate
        self._rng = random.Random(seed)
        self._points: List[SampledPoint] = []

    # -- ingest ----------------------------------------------------------

    def _ingest(self, item: Any, timestamp: float) -> None:
        value = float(item)
        if self._rng.random() < self.rate:
            self._points.append(SampledPoint(timestamp, value))

    def _reset(self) -> None:
        self._points = []

    # -- summaries -------------------------------------------------------

    @property
    def points(self) -> List[SampledPoint]:
        """The retained sample, in arrival order."""
        return list(self._points)

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=self.points,
            size_bytes=self.footprint_bytes(),
            attrs={"rate": self.rate},
        )

    def footprint_bytes(self) -> int:
        return _POINT_BYTES * len(self._points)

    # -- queries ---------------------------------------------------------

    def _window(
        self, start: Optional[float], end: Optional[float]
    ) -> List[SampledPoint]:
        selected = self._points
        if start is not None:
            selected = [p for p in selected if p.timestamp >= start]
        if end is not None:
            selected = [p for p in selected if p.timestamp < end]
        return selected

    def query(self, request: QueryRequest) -> Any:
        params = request.params
        window = self._window(params.get("start"), params.get("end"))
        if request.operator == "select":
            min_value = params.get("min_value")
            if min_value is not None:
                window = [p for p in window if p.value >= min_value]
            return window
        if request.operator == "estimate_count":
            return len(window) / self.rate
        if request.operator == "estimate_sum":
            return sum(p.value for p in window) / self.rate
        if request.operator == "mean":
            if not window:
                return None
            return sum(p.value for p in window) / len(window)
        raise ValueError(
            f"sample primitive does not support operator {request.operator!r}"
        )

    # -- combine -----------------------------------------------------------

    def combine(self, other: "ComputingPrimitive") -> None:
        """Concatenate two samples at the coarser of the two rates.

        The finer-sampled series is thinned with probability
        ``coarse/fine`` so both sides represent the stream at the same
        rate and estimates stay unbiased.
        """
        self._check_combinable(other)
        assert isinstance(other, RandomSamplePrimitive)
        target = min(self.rate, other.rate)
        self._points = self._thin(self._points, self.rate, target)
        merged = self._thin(other._points, other.rate, target)
        self._points.extend(merged)
        self._points.sort(key=lambda p: p.timestamp)
        self.rate = target

    def _thin(
        self, points: List[SampledPoint], rate: float, target: float
    ) -> List[SampledPoint]:
        if target >= rate:
            return list(points)
        keep = target / rate
        return [p for p in points if self._rng.random() < keep]

    # -- granularity / adaptation -------------------------------------------

    def set_granularity(self, granularity: float) -> None:
        """Set the sampling rate directly (granularity == probability).

        Lowering the rate retroactively thins the retained sample so the
        summary stays consistent with the new rate.
        """
        if not 0.0 < granularity <= 1.0:
            raise GranularityError(
                f"sampling rate must be in (0, 1], got {granularity}"
            )
        if granularity < self.rate:
            self._points = self._thin(self._points, self.rate, granularity)
        self.rate = granularity

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Track the rate queries need, bounded by storage pressure.

        With a requested granularity of ``g`` seconds between points and
        an observed ingest rate ``r`` points/second, a rate of
        ``1/(g*r)`` retains roughly one point per requested interval.
        Storage pressure (0..1) scales the rate down proportionally.
        """
        rate = self.rate
        if feedback.requested_granularity and feedback.ingest_rate > 0:
            wanted = 1.0 / (feedback.requested_granularity * feedback.ingest_rate)
            rate = min(1.0, wanted)
        if feedback.storage_pressure > 0:
            rate *= max(0.0, 1.0 - feedback.storage_pressure)
        rate = min(1.0, max(rate, 1e-6))
        self.set_granularity(rate)

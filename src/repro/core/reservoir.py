"""Reservoir sampling: a fixed-size uniform sample of a stream.

Complements the rate-based :mod:`repro.core.sampling` primitive: where
Bernoulli sampling bounds the *rate*, the reservoir bounds the *size*,
which is what a data store wants when its storage budget is fixed and
the stream rate is not.
"""

from __future__ import annotations

import random
from typing import Any, Generic, List, Optional, TypeVar

from repro.errors import GranularityError
from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location

T = TypeVar("T")

_ITEM_BYTES = 24


class ReservoirSample(Generic[T]):
    """Algorithm R over arbitrary items."""

    def __init__(self, capacity: int, seed: Optional[int] = None) -> None:
        if capacity < 1:
            raise GranularityError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._items: List[T] = []
        self.seen = 0

    def offer(self, item: T) -> None:
        """Consider one stream item for the reservoir."""
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._items[slot] = item

    @property
    def items(self) -> List[T]:
        """The current sample (order is not meaningful)."""
        return list(self._items)

    def merge(self, other: "ReservoirSample[T]") -> None:
        """Combine two reservoirs into a sample of the united stream.

        Items are drawn from each side proportionally to how much of the
        combined stream it saw, preserving uniformity.
        """
        combined_seen = self.seen + other.seen
        if combined_seen == 0:
            return
        pool: List[T] = []
        take = min(self.capacity, combined_seen)
        for _ in range(take):
            pick_mine = (
                self._rng.random() < self.seen / combined_seen
                if other._items
                else True
            )
            source = self._items if pick_mine and self._items else other._items
            if not source:
                source = self._items or other._items
            if not source:
                break
            pool.append(source[self._rng.randrange(len(source))])
        self._items = pool
        self.seen = combined_seen

    def resize(self, capacity: int) -> None:
        """Change the reservoir size, subsampling if shrinking."""
        if capacity < 1:
            raise GranularityError(f"capacity must be >= 1, got {capacity}")
        if capacity < len(self._items):
            self._items = self._rng.sample(self._items, capacity)
        self.capacity = capacity

    def footprint_bytes(self) -> int:
        """Approximate memory footprint."""
        return _ITEM_BYTES * max(len(self._items), 1)


class ReservoirPrimitive(ComputingPrimitive):
    """A reservoir sample as a computing primitive.

    Supported query operators: ``"sample"`` (the retained items),
    ``"seen"`` (stream length), ``"estimate_fraction"`` (param
    ``predicate``: fraction of stream items matching, estimated from the
    sample).
    """

    kind = "reservoir"

    def __init__(
        self,
        location: Location,
        capacity: int = 1024,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(location)
        self._seed = seed
        self.reservoir: ReservoirSample[Any] = ReservoirSample(capacity, seed)

    def _ingest(self, item: Any, timestamp: float) -> None:
        self.reservoir.offer(item)

    def _reset(self) -> None:
        self.reservoir = ReservoirSample(self.reservoir.capacity, self._seed)

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=self.reservoir.items,
            size_bytes=self.footprint_bytes(),
            attrs={
                "capacity": self.reservoir.capacity,
                "seen": self.reservoir.seen,
            },
        )

    def footprint_bytes(self) -> int:
        return self.reservoir.footprint_bytes()

    def query(self, request: QueryRequest) -> Any:
        if request.operator == "sample":
            return self.reservoir.items
        if request.operator == "seen":
            return self.reservoir.seen
        if request.operator == "estimate_fraction":
            predicate = request.params["predicate"]
            items = self.reservoir.items
            if not items:
                return 0.0
            return sum(1 for item in items if predicate(item)) / len(items)
        raise ValueError(
            f"reservoir primitive does not support operator "
            f"{request.operator!r}"
        )

    def combine(self, other: "ComputingPrimitive") -> None:
        self._check_combinable(other)
        assert isinstance(other, ReservoirPrimitive)
        self.reservoir.merge(other.reservoir)

    def set_granularity(self, granularity: float) -> None:
        """Granularity is the reservoir capacity."""
        self.reservoir.resize(int(granularity))

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Shrink the reservoir under storage pressure."""
        if feedback.storage_pressure > 0.5 and self.reservoir.capacity > 16:
            self.reservoir.resize(max(16, self.reservoir.capacity // 2))

"""Mergeable quantile sketches (KLL-style compactors).

Section V's "simple statistics over time bins (e.g., sum, mean, median,
and standard deviation)" needs a *mergeable* median/percentile summary
to work across the hierarchy — exact medians do not combine.  This is a
simplified KLL sketch: a stack of capacity-bounded compactors, where
level ``h`` stores items each standing for ``2^h`` stream items.  When
a level overflows, it sorts itself and promotes every other element
(random offset) to the level above — halving its footprint while
keeping rank estimates unbiased.

Accuracy is controlled by the per-level capacity ``k``: rank error
concentrates around ``O(1/k)`` of the stream length, verified
empirically in the tests.  Merging concatenates levels pairwise and
re-compacts, which is what lets quantile summaries roll up data stores.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional

from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location
from repro.errors import GranularityError

_ITEM_BYTES = 8


class KLLSketch:
    """A KLL-style quantile sketch over floats."""

    def __init__(self, k: int = 128, seed: Optional[int] = None) -> None:
        if k < 8:
            raise GranularityError(f"k must be >= 8, got {k}")
        self.k = k
        self._rng = random.Random(seed)
        self._levels: List[List[float]] = [[]]
        self.count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- ingest ----------------------------------------------------------

    def add(self, value: float) -> None:
        """Insert one value."""
        value = float(value)
        self.count += 1
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        self._levels[0].append(value)
        self._compact_if_needed()

    def _capacity(self, level: int) -> int:
        # geometrically decaying capacities, floor of 8
        height = len(self._levels)
        return max(8, int(self.k * (2.0 / 3.0) ** (height - 1 - level)))

    def _compact_if_needed(self) -> None:
        level = 0
        while level < len(self._levels):
            if len(self._levels[level]) <= self._capacity(level):
                level += 1
                continue
            items = sorted(self._levels[level])
            offset = self._rng.randrange(2)
            promoted = items[offset::2]
            self._levels[level] = []
            if level + 1 == len(self._levels):
                self._levels.append([])
            self._levels[level + 1].extend(promoted)
            level += 1

    # -- queries ---------------------------------------------------------

    def _weighted_items(self) -> List[tuple]:
        pairs = []
        for level, items in enumerate(self._levels):
            weight = 1 << level
            for value in items:
                pairs.append((value, weight))
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def quantile(self, q: float) -> Optional[float]:
        """The value at quantile ``q`` in [0, 1] (None when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        target = q * self.count
        running = 0
        pairs = self._weighted_items()
        for value, weight in pairs:
            running += weight
            if running >= target:
                return value
        return pairs[-1][0]

    def rank(self, value: float) -> float:
        """Estimated number of stream items <= ``value``."""
        return float(
            sum(weight for item, weight in self._weighted_items()
                if item <= value)
        )

    def cdf(self, value: float) -> float:
        """Estimated fraction of stream items <= ``value``."""
        if self.count == 0:
            return 0.0
        return min(1.0, self.rank(value) / self.count)

    # -- merge / resize -----------------------------------------------------

    def merge(self, other: "KLLSketch") -> None:
        """Fold another sketch in (level-wise concatenation + compaction)."""
        while len(self._levels) < len(other._levels):
            self._levels.append([])
        for level, items in enumerate(other._levels):
            self._levels[level].extend(items)
        self.count += other.count
        if other._min is not None:
            self._min = (
                other._min if self._min is None
                else min(self._min, other._min)
            )
        if other._max is not None:
            self._max = (
                other._max if self._max is None
                else max(self._max, other._max)
            )
        self._compact_if_needed()

    def resize(self, k: int) -> None:
        """Change the accuracy parameter (shrinking compacts eagerly)."""
        if k < 8:
            raise GranularityError(f"k must be >= 8, got {k}")
        self.k = k
        self._compact_if_needed()

    def retained(self) -> int:
        """Number of items physically stored."""
        return sum(len(items) for items in self._levels)

    def footprint_bytes(self) -> int:
        """Approximate memory footprint."""
        return _ITEM_BYTES * max(1, self.retained())


class QuantilePrimitive(ComputingPrimitive):
    """A KLL sketch as a computing primitive.

    Supported query operators: ``"quantile"`` (param ``q``),
    ``"quantiles"`` (param ``qs``: list), ``"median"``, ``"cdf"`` (param
    ``value``), ``"count"``.
    """

    kind = "quantile"

    def __init__(
        self,
        location: Location,
        k: int = 128,
        seed: Optional[int] = None,
        value_of=None,
    ) -> None:
        super().__init__(location)
        self._seed = seed
        self._value_of = value_of
        self.sketch = KLLSketch(k=k, seed=seed)

    def _ingest(self, item: Any, timestamp: float) -> None:
        value = self._value_of(item) if self._value_of else item
        self.sketch.add(float(value))

    def _reset(self) -> None:
        self.sketch = KLLSketch(k=self.sketch.k, seed=self._seed)

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=self.sketch,
            size_bytes=self.footprint_bytes(),
            attrs={"k": self.sketch.k, "count": self.sketch.count},
        )

    def footprint_bytes(self) -> int:
        return self.sketch.footprint_bytes()

    def query(self, request: QueryRequest) -> Any:
        params = request.params
        if request.operator == "quantile":
            return self.sketch.quantile(params["q"])
        if request.operator == "quantiles":
            return [self.sketch.quantile(q) for q in params["qs"]]
        if request.operator == "median":
            return self.sketch.quantile(0.5)
        if request.operator == "cdf":
            return self.sketch.cdf(params["value"])
        if request.operator == "count":
            return self.sketch.count
        raise ValueError(
            f"quantile primitive does not support operator "
            f"{request.operator!r}"
        )

    def combine(self, other: "ComputingPrimitive") -> None:
        self._check_combinable(other)
        assert isinstance(other, QuantilePrimitive)
        self.sketch.merge(other.sketch)

    def set_granularity(self, granularity: float) -> None:
        """Granularity is the accuracy parameter ``k``."""
        self.sketch.resize(int(granularity))

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Halve ``k`` under storage pressure (floor 16)."""
        if feedback.storage_pressure > 0.5 and self.sketch.k > 16:
            self.sketch.resize(max(16, self.sketch.k // 2))

"""Hierarchical heavy hitters over generalized flows.

Section V names "hierarchical heavy hitter detection" among the existing
streaming algorithms; Figure 4 shows an "HHH" aggregator inside the data
store.  This implementation runs one Space-Saving sketch per canonical
generalization depth: each ingested flow is projected to every depth and
offered to that depth's sketch.  HHH extraction then walks from the
deepest level upward, discounting mass already attributed to reported
descendants — the same discounted semantics as
:meth:`repro.flows.tree.Flowtree.hhh`, but with sketch-bounded memory
independent of the number of distinct flows.

Contrast with the Flowtree primitive: this one answers *only* HHH-style
questions (the paper's point — existing methods are narrow), while the
Flowtree supports the full Table II operator set.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.heavy_hitters import SpaceSaving
from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location
from repro.errors import SchemaMismatchError
from repro.flows.flowkey import FlowKey, GeneralizationPolicy
from repro.flows.records import FlowRecord


class HierarchicalHeavyHitterPrimitive(ComputingPrimitive):
    """Per-depth Space-Saving sketches over a generalization policy.

    Ingested items are :class:`~repro.flows.records.FlowRecord` objects;
    weights are the record's byte count.

    Supported query operators:

    * ``"hhh"`` — param ``threshold`` (absolute weight): discounted
      hierarchical heavy hitters as ``(FlowKey, estimate)`` pairs.
    * ``"top_k"`` — params ``k``, ``depth``: heaviest flows at one depth.
    * ``"count"`` — param ``key``: estimated weight of one on-chain key.
    """

    kind = "hhh"

    def __init__(
        self,
        location: Location,
        policy: GeneralizationPolicy,
        capacity_per_level: int = 128,
    ) -> None:
        super().__init__(location)
        self.policy = policy
        self.capacity_per_level = capacity_per_level
        self._sketches: Dict[int, SpaceSaving] = {
            depth: SpaceSaving(capacity_per_level)
            for depth in range(policy.depth + 1)
        }

    def _ingest(self, item: Any, timestamp: float) -> None:
        record: FlowRecord = item
        weight = float(max(record.bytes, 1))
        values = record.key.values
        for depth, sketch in self._sketches.items():
            sketch.offer(self.policy.project(values, depth), weight)

    def _reset(self) -> None:
        self._sketches = {
            depth: SpaceSaving(self.capacity_per_level)
            for depth in range(self.policy.depth + 1)
        }

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=self._sketches,
            size_bytes=self.footprint_bytes(),
            attrs={"capacity_per_level": self.capacity_per_level},
        )

    def footprint_bytes(self) -> int:
        return sum(sketch.footprint_bytes() for sketch in self._sketches.values())

    def _key_for(self, depth: int, values: Tuple[int, ...]) -> FlowKey:
        return FlowKey(self.policy.schema, values, self.policy.levels_at(depth))

    def query(self, request: QueryRequest) -> Any:
        params = request.params
        if request.operator == "hhh":
            return self._hhh(params["threshold"])
        if request.operator == "top_k":
            depth = params.get("depth", self.policy.depth)
            triples = self._sketches[depth].top(params.get("k", 10))
            return [
                (self._key_for(depth, values), count)
                for values, count, _ in triples
            ]
        if request.operator == "count":
            key: FlowKey = params["key"]
            depth = self.policy.depth_of(key.levels)
            if depth is None:
                raise ValueError(f"key levels {key.levels} are off-chain")
            estimate, _ = self._sketches[depth].estimate(key.values)
            return estimate
        raise ValueError(
            f"hhh primitive does not support operator {request.operator!r}"
        )

    def _hhh(self, threshold: float) -> List[Tuple[FlowKey, float]]:
        """Discounted HHH across the per-depth sketches."""
        results: List[Tuple[FlowKey, float]] = []
        # discount[depth][values] = mass already attributed below
        discount: Dict[int, Dict[Tuple[int, ...], float]] = {
            depth: {} for depth in range(self.policy.depth + 1)
        }
        for depth in range(self.policy.depth, -1, -1):
            sketch = self._sketches[depth]
            level_discount = discount[depth]
            for values, count, _error in sketch.top(sketch.capacity):
                residual = count - level_discount.get(values, 0.0)
                if residual >= threshold:
                    results.append((self._key_for(depth, values), count))
                    attributed = residual
                else:
                    attributed = 0.0
                carried = level_discount.get(values, 0.0) + attributed
                if depth > 0 and carried > 0:
                    parent_values = self.policy.project(values, depth - 1)
                    parents = discount[depth - 1]
                    parents[parent_values] = parents.get(parent_values, 0.0) + carried
        results.sort(key=lambda pair: (-pair[1], pair[0].values))
        return results

    def combine(self, other: "ComputingPrimitive") -> None:
        self._check_combinable(other)
        assert isinstance(other, HierarchicalHeavyHitterPrimitive)
        if not self.policy.compatible_with(other.policy):
            raise SchemaMismatchError(
                "cannot combine HHH primitives over different policies"
            )
        for depth, sketch in self._sketches.items():
            sketch.merge(other._sketches[depth])

    def set_granularity(self, granularity: float) -> None:
        """Granularity is the per-level counter budget."""
        capacity = int(granularity)
        self.capacity_per_level = capacity
        for sketch in self._sketches.values():
            sketch.resize(capacity)

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Shrink the per-level budget under storage pressure."""
        if feedback.storage_pressure > 0.5 and self.capacity_per_level > 16:
            self.set_granularity(max(16, self.capacity_per_level // 2))

    @property
    def uses_domain_knowledge(self) -> bool:
        """The generalization hierarchy *is* network-domain knowledge."""
        return True

"""Computing primitives: the paper's core contribution.

Section V demands primitives that (1) support arbitrary queries,
(2) produce combinable summaries, (3) have adjustable aggregation
granularity, (4) self-adapt to data and queries, and (5) can use domain
knowledge.  :class:`~repro.core.primitive.ComputingPrimitive` encodes
those properties as an interface; the concrete primitives range from the
"existing methods" the paper contrasts against (time-binned statistics,
sampling, heavy hitters, sketches) to the novel, domain-aware
:class:`~repro.core.flowtree.FlowtreePrimitive`.
"""

from repro.core.summary import (
    DataSummary,
    LineageLog,
    LineageRecord,
    Location,
    SummaryMeta,
    TimeInterval,
)
from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.sampling import RandomSamplePrimitive, SampledPoint
from repro.core.timebin import TimeBinStatistics, BinStats
from repro.core.heavy_hitters import SpaceSaving, HeavyHitterPrimitive
from repro.core.hhh_primitive import HierarchicalHeavyHitterPrimitive
from repro.core.sketches import CountMinSketch, CountMinPrimitive
from repro.core.reservoir import ReservoirSample, ReservoirPrimitive
from repro.core.flowtree import FlowtreePrimitive
from repro.core.quantiles import KLLSketch, QuantilePrimitive
from repro.core.rawstore import RawStorePrimitive
from repro.core.registry import PrimitiveRegistry, default_registry

__all__ = [
    "TimeInterval",
    "Location",
    "SummaryMeta",
    "DataSummary",
    "LineageRecord",
    "LineageLog",
    "ComputingPrimitive",
    "AdaptationFeedback",
    "QueryRequest",
    "RandomSamplePrimitive",
    "SampledPoint",
    "TimeBinStatistics",
    "BinStats",
    "SpaceSaving",
    "HeavyHitterPrimitive",
    "HierarchicalHeavyHitterPrimitive",
    "CountMinSketch",
    "CountMinPrimitive",
    "ReservoirSample",
    "ReservoirPrimitive",
    "FlowtreePrimitive",
    "RawStorePrimitive",
    "KLLSketch",
    "QuantilePrimitive",
    "PrimitiveRegistry",
    "default_registry",
]

"""Primitive registry: how the Manager turns an application requirement
("I need a histogram at 60 s bins of stream X at location Y") into an
installed aggregator.

The registry maps kind names to factories.  Factories receive the target
:class:`~repro.core.summary.Location` plus the requirement's
configuration dict and return a fresh
:class:`~repro.core.primitive.ComputingPrimitive`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from repro.core.primitive import ComputingPrimitive
from repro.core.summary import Location
from repro.errors import PlacementError
from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy

PrimitiveFactory = Callable[[Location, dict], ComputingPrimitive]


class PrimitiveRegistry:
    """A name → factory mapping with helpful failure modes."""

    def __init__(self) -> None:
        self._factories: Dict[str, PrimitiveFactory] = {}

    def register(self, kind: str, factory: PrimitiveFactory) -> None:
        """Register a factory; re-registration replaces (for testing)."""
        self._factories[kind] = factory

    def kinds(self) -> Iterable[str]:
        """All registered kind names."""
        return sorted(self._factories)

    def create(
        self, kind: str, location: Location, config: dict
    ) -> ComputingPrimitive:
        """Instantiate a primitive of ``kind`` at ``location``."""
        factory = self._factories.get(kind)
        if factory is None:
            raise PlacementError(
                f"no computing primitive registered for kind {kind!r}; "
                f"known kinds: {list(self.kinds())}"
            )
        return factory(location, config)


def _make_sample(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.sampling import RandomSamplePrimitive

    return RandomSamplePrimitive(
        location,
        rate=config.get("rate", 0.1),
        seed=config.get("seed"),
    )


def _make_timebin(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.timebin import TimeBinStatistics

    return TimeBinStatistics(
        location,
        bin_seconds=config.get("bin_seconds", 1.0),
        reservoir_size=config.get("reservoir_size", 32),
        seed=config.get("seed"),
    )


def _make_heavy_hitter(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.heavy_hitters import HeavyHitterPrimitive

    return HeavyHitterPrimitive(
        location,
        capacity=config.get("capacity", 256),
        weight_of=config.get("weight_of"),
        key_of=config.get("key_of"),
    )


def _make_count_min(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.sketches import CountMinPrimitive

    return CountMinPrimitive(
        location,
        width=config.get("width", 1024),
        depth=config.get("depth", 4),
        seed=config.get("seed", 0),
        weight_of=config.get("weight_of"),
    )


def _make_reservoir(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.reservoir import ReservoirPrimitive

    return ReservoirPrimitive(
        location,
        capacity=config.get("capacity", 1024),
        seed=config.get("seed"),
    )


def _policy_from_config(config: dict) -> GeneralizationPolicy:
    policy = config.get("policy")
    if policy is not None:
        return policy
    schema = config.get("schema", FIVE_TUPLE)
    return GeneralizationPolicy.default_for(schema)


def _make_flowtree(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.flowtree import FlowtreePrimitive

    return FlowtreePrimitive(
        location,
        policy=_policy_from_config(config),
        node_budget=config.get("node_budget", 4096),
        metric=config.get("metric", "bytes"),
    )


def _make_hhh(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.hhh_primitive import HierarchicalHeavyHitterPrimitive

    return HierarchicalHeavyHitterPrimitive(
        location,
        policy=_policy_from_config(config),
        capacity_per_level=config.get("capacity_per_level", 128),
    )


def _make_quantile(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.quantiles import QuantilePrimitive

    return QuantilePrimitive(
        location,
        k=config.get("k", 128),
        seed=config.get("seed"),
        value_of=config.get("value_of"),
    )


def _make_raw(location: Location, config: dict) -> ComputingPrimitive:
    from repro.core.rawstore import RawStorePrimitive

    return RawStorePrimitive(
        location,
        budget_bytes=config.get("budget_bytes", 1_000_000),
        size_of=config.get("size_of"),
    )


def default_registry() -> PrimitiveRegistry:
    """A registry with every primitive shipped by the library."""
    registry = PrimitiveRegistry()
    registry.register("sample", _make_sample)
    registry.register("timebin", _make_timebin)
    registry.register("heavy_hitter", _make_heavy_hitter)
    registry.register("count_min", _make_count_min)
    registry.register("reservoir", _make_reservoir)
    registry.register("flowtree", _make_flowtree)
    registry.register("hhh", _make_hhh)
    registry.register("raw", _make_raw)
    registry.register("quantile", _make_quantile)
    return registry

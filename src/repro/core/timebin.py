"""Time-binned statistics: the "simple statistics over time bins"
aggregation method of Section V (sum, mean, min/max, standard deviation,
and an approximate median).

Values are folded into fixed-width time bins.  Each bin keeps streaming
moments (count/sum/min/max and Welford's M2 for variance) plus a small
bounded reservoir for quantile estimates.  Bins re-aggregate losslessly
(for the moments) to any integer multiple of the current width, which is
what the data store's hierarchical storage strategy and the merge rule
rely on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import GranularityError
from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location

_BIN_BYTES = 48
_RESERVOIR_BYTES = 8


@dataclass
class BinStats:
    """Streaming statistics for one time bin."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    mean: float = 0.0
    m2: float = 0.0
    reservoir: List[float] = field(default_factory=list)
    reservoir_seen: int = 0

    def observe(self, value: float, rng: random.Random, reservoir_size: int) -> None:
        """Fold one value into the bin."""
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.reservoir_seen += 1
        if len(self.reservoir) < reservoir_size:
            self.reservoir.append(value)
        else:
            slot = rng.randrange(self.reservoir_seen)
            if slot < reservoir_size:
                self.reservoir[slot] = value

    def merge(self, other: "BinStats", rng: random.Random, reservoir_size: int) -> None:
        """Fold another bin into this one (parallel-variance formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.mean = other.mean
            self.m2 = other.m2
            self.reservoir = list(other.reservoir)
            self.reservoir_seen = other.reservoir_seen
            return
        combined = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / combined
        self.mean = (self.mean * self.count + other.mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        # weighted subsample of the union keeps the reservoir representative
        pool = self.reservoir + other.reservoir
        self.reservoir_seen += other.reservoir_seen
        if len(pool) > reservoir_size:
            pool = rng.sample(pool, reservoir_size)
        self.reservoir = pool

    @property
    def variance(self) -> float:
        """Population variance of the bin's values."""
        if self.count == 0:
            return 0.0
        return self.m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile from the reservoir (None when empty)."""
        if not self.reservoir:
            return None
        ordered = sorted(self.reservoir)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def median(self) -> Optional[float]:
        """Approximate median from the reservoir."""
        return self.quantile(0.5)


class TimeBinStatistics(ComputingPrimitive):
    """Per-bin statistics over a numeric stream.

    Supported query operators:

    * ``"series"`` — params ``field`` (``mean``/``total``/``count``/
      ``min``/``max``/``stddev``/``median``), ``start``/``end``: a list of
      ``(bin_start, value)`` pairs.
    * ``"stats"`` — aggregate :class:`BinStats` over a window.
    * ``"bins"`` — raw window bins as ``(bin_start, BinStats)`` pairs.
    """

    kind = "timebin"

    def __init__(
        self,
        location: Location,
        bin_seconds: float = 1.0,
        reservoir_size: int = 32,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(location)
        if bin_seconds <= 0:
            raise GranularityError(f"bin width must be positive, got {bin_seconds}")
        self.bin_seconds = bin_seconds
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._bins: Dict[int, BinStats] = {}

    # -- ingest ----------------------------------------------------------

    def _bin_index(self, timestamp: float) -> int:
        return int(timestamp // self.bin_seconds)

    def _ingest(self, item: Any, timestamp: float) -> None:
        value = float(item)
        stats = self._bins.setdefault(self._bin_index(timestamp), BinStats())
        stats.observe(value, self._rng, self.reservoir_size)

    def _reset(self) -> None:
        self._bins = {}

    # -- summaries -------------------------------------------------------

    def bins(self) -> Dict[float, BinStats]:
        """Bins keyed by their start timestamp, in time order."""
        return {
            index * self.bin_seconds: stats
            for index, stats in sorted(self._bins.items())
        }

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=self.bins(),
            size_bytes=self.footprint_bytes(),
            attrs={"bin_seconds": self.bin_seconds},
        )

    def footprint_bytes(self) -> int:
        reservoir_total = sum(len(b.reservoir) for b in self._bins.values())
        return _BIN_BYTES * len(self._bins) + _RESERVOIR_BYTES * reservoir_total

    # -- queries ---------------------------------------------------------

    def _window_bins(
        self, start: Optional[float], end: Optional[float]
    ) -> List[tuple]:
        pairs = []
        for index, stats in sorted(self._bins.items()):
            bin_start = index * self.bin_seconds
            if start is not None and bin_start + self.bin_seconds <= start:
                continue
            if end is not None and bin_start >= end:
                continue
            pairs.append((bin_start, stats))
        return pairs

    def query(self, request: QueryRequest) -> Any:
        params = request.params
        window = self._window_bins(params.get("start"), params.get("end"))
        if request.operator == "bins":
            return window
        if request.operator == "series":
            field_name = params.get("field", "mean")
            series = []
            for bin_start, stats in window:
                if field_name == "median":
                    value = stats.median
                elif field_name == "min":
                    value = stats.minimum
                elif field_name == "max":
                    value = stats.maximum
                else:
                    value = getattr(stats, field_name)
                series.append((bin_start, value))
            return series
        if request.operator == "stats":
            aggregate = BinStats()
            for _, stats in window:
                aggregate.merge(stats, self._rng, self.reservoir_size)
            return aggregate
        raise ValueError(
            f"timebin primitive does not support operator {request.operator!r}"
        )

    # -- combine -----------------------------------------------------------

    def combine(self, other: "ComputingPrimitive") -> None:
        """Merge bins; the result uses the coarser of the two widths.

        Widths must be integer multiples of each other (the library's
        default ladder — 1s, 60s, 3600s … — guarantees this)."""
        self._check_combinable(other)
        assert isinstance(other, TimeBinStatistics)
        coarse = max(self.bin_seconds, other.bin_seconds)
        self.set_granularity(coarse)
        rebinned = other._rebinned(coarse)
        for index, stats in rebinned.items():
            mine = self._bins.setdefault(index, BinStats())
            mine.merge(stats, self._rng, self.reservoir_size)

    def _rebinned(self, bin_seconds: float) -> Dict[int, BinStats]:
        ratio = bin_seconds / self.bin_seconds
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise GranularityError(
                f"cannot rebin width {self.bin_seconds} to {bin_seconds}: "
                "target must be an integer multiple"
            )
        rebinned: Dict[int, BinStats] = {}
        for index, stats in self._bins.items():
            new_index = int((index * self.bin_seconds) // bin_seconds)
            target = rebinned.setdefault(new_index, BinStats())
            target.merge(stats, self._rng, self.reservoir_size)
        return rebinned

    # -- granularity / adaptation -------------------------------------------

    def set_granularity(self, granularity: float) -> None:
        """Widen bins to ``granularity`` seconds (an integer multiple)."""
        if granularity == self.bin_seconds:
            return
        self._bins = self._rebinned(granularity)
        self.bin_seconds = granularity

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Match queried granularity; widen bins under storage pressure."""
        width = self.bin_seconds
        if feedback.requested_granularity:
            requested = feedback.requested_granularity
            if requested > width:
                multiple = max(1, int(requested // width))
                width = width * multiple
        if feedback.storage_pressure > 0.5:
            width *= 2
        if width != self.bin_seconds:
            self.set_granularity(width)

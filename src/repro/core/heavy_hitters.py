"""Heavy-hitter detection via the Space-Saving algorithm.

This is one of the "more complicated streaming algorithms" Section V
lists among existing aggregation methods.  Space-Saving keeps exactly
``capacity`` counters; each counter carries the item's estimated count
and the maximum overestimation error, so answers come with guarantees:
``estimate - error <= true count <= estimate``.

Summaries are mergeable (counter-wise sum, then truncation back to
capacity), which is what lets heavy-hitter reports combine across the
data-store hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Tuple

from repro.errors import GranularityError
from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location

_COUNTER_BYTES = 32


@dataclass
class _Counter:
    count: float
    error: float


class SpaceSaving:
    """The Metwally et al. Space-Saving sketch over hashable items."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise GranularityError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counters: Dict[Hashable, _Counter] = {}
        self.total_weight = 0.0

    def __len__(self) -> int:
        return len(self._counters)

    def offer(self, item: Hashable, weight: float = 1.0) -> None:
        """Count one occurrence (or ``weight`` of them) of ``item``."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total_weight += weight
        counter = self._counters.get(item)
        if counter is not None:
            counter.count += weight
            return
        if len(self._counters) < self.capacity:
            self._counters[item] = _Counter(count=weight, error=0.0)
            return
        victim_item = min(self._counters, key=lambda i: self._counters[i].count)
        victim = self._counters.pop(victim_item)
        self._counters[item] = _Counter(
            count=victim.count + weight, error=victim.count
        )

    def estimate(self, item: Hashable) -> Tuple[float, float]:
        """``(estimated count, max error)`` for an item.

        For untracked items the estimate is the minimum counter value
        (the classic upper bound), with an equal error term.
        """
        counter = self._counters.get(item)
        if counter is not None:
            return counter.count, counter.error
        if not self._counters or len(self._counters) < self.capacity:
            return 0.0, 0.0
        floor = min(c.count for c in self._counters.values())
        return floor, floor

    def top(self, k: int) -> List[Tuple[Hashable, float, float]]:
        """The ``k`` largest items as ``(item, count, error)`` triples."""
        ordered = sorted(
            self._counters.items(),
            key=lambda pair: (-pair[1].count, repr(pair[0])),
        )
        return [(item, c.count, c.error) for item, c in ordered[:k]]

    def heavy_hitters(
        self, phi: float, guaranteed_only: bool = False
    ) -> List[Tuple[Hashable, float, float]]:
        """Items whose frequency exceeds ``phi * total_weight``.

        With ``guaranteed_only`` the lower bound (count − error) must
        clear the threshold, eliminating false positives.
        """
        if not 0.0 < phi < 1.0:
            raise ValueError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self.total_weight
        hitters = []
        for item, counter in self._counters.items():
            bound = counter.count - counter.error if guaranteed_only else counter.count
            if bound > threshold:
                hitters.append((item, counter.count, counter.error))
        hitters.sort(key=lambda triple: (-triple[1], repr(triple[0])))
        return hitters

    def merge(self, other: "SpaceSaving") -> None:
        """Fold another sketch in; capacity stays at this sketch's value.

        Counts and errors add for shared items; an item tracked on only
        one side inherits the other side's minimum counter as additional
        error (it may have been evicted there).  The union is then
        truncated back to capacity, with evicted mass folded into the
        survivors' error bounds implicitly via the standard argument.
        """
        self.total_weight += other.total_weight
        other_floor = (
            min((c.count for c in other._counters.values()), default=0.0)
            if len(other._counters) >= other.capacity
            else 0.0
        )
        my_floor = (
            min((c.count for c in self._counters.values()), default=0.0)
            if len(self._counters) >= self.capacity
            else 0.0
        )
        merged: Dict[Hashable, _Counter] = {}
        for item, counter in self._counters.items():
            extra = other._counters.get(item)
            if extra is not None:
                merged[item] = _Counter(
                    count=counter.count + extra.count,
                    error=counter.error + extra.error,
                )
            else:
                merged[item] = _Counter(
                    count=counter.count + other_floor,
                    error=counter.error + other_floor,
                )
        for item, counter in other._counters.items():
            if item in merged:
                continue
            merged[item] = _Counter(
                count=counter.count + my_floor, error=counter.error + my_floor
            )
        survivors = sorted(
            merged.items(), key=lambda pair: (-pair[1].count, repr(pair[0]))
        )[: self.capacity]
        self._counters = {item: counter for item, counter in survivors}

    def resize(self, capacity: int) -> None:
        """Shrink (or grow) the counter budget."""
        if capacity < 1:
            raise GranularityError(f"capacity must be >= 1, got {capacity}")
        if capacity < len(self._counters):
            survivors = sorted(
                self._counters.items(),
                key=lambda pair: (-pair[1].count, repr(pair[0])),
            )[:capacity]
            self._counters = {item: counter for item, counter in survivors}
        self.capacity = capacity

    def footprint_bytes(self) -> int:
        """Approximate memory footprint."""
        return _COUNTER_BYTES * max(len(self._counters), 1)


class HeavyHitterPrimitive(ComputingPrimitive):
    """Space-Saving wrapped as a computing primitive.

    Stream items must be hashable (flow keys, machine ids …) or reduced
    to something hashable by the optional ``key_of`` extractor; the
    optional ``weight_of`` callable extracts a weight (e.g. bytes) per
    item.  Both see the *raw* stream item.

    Supported query operators: ``"top_k"`` (param ``k``), ``"count"``
    (param ``item``), ``"heavy_hitters"`` (params ``phi``,
    ``guaranteed_only``), ``"total"``.
    """

    kind = "heavy_hitter"

    def __init__(
        self,
        location: Location,
        capacity: int = 256,
        weight_of=None,
        key_of=None,
    ) -> None:
        super().__init__(location)
        self._weight_of = weight_of
        self._key_of = key_of
        self.sketch = SpaceSaving(capacity)

    def _ingest(self, item: Any, timestamp: float) -> None:
        weight = float(self._weight_of(item)) if self._weight_of else 1.0
        key = self._key_of(item) if self._key_of else item
        self.sketch.offer(key, weight)

    def _reset(self) -> None:
        self.sketch = SpaceSaving(self.sketch.capacity)

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=self.sketch,
            size_bytes=self.footprint_bytes(),
            attrs={"capacity": self.sketch.capacity},
        )

    def footprint_bytes(self) -> int:
        return self.sketch.footprint_bytes()

    def query(self, request: QueryRequest) -> Any:
        params = request.params
        if request.operator == "top_k":
            return self.sketch.top(params.get("k", 10))
        if request.operator == "count":
            return self.sketch.estimate(params["item"])
        if request.operator == "heavy_hitters":
            return self.sketch.heavy_hitters(
                params.get("phi", 0.01),
                guaranteed_only=params.get("guaranteed_only", False),
            )
        if request.operator == "total":
            return self.sketch.total_weight
        raise ValueError(
            f"heavy-hitter primitive does not support operator "
            f"{request.operator!r}"
        )

    def combine(self, other: "ComputingPrimitive") -> None:
        self._check_combinable(other)
        assert isinstance(other, HeavyHitterPrimitive)
        self.sketch.merge(other.sketch)

    def set_granularity(self, granularity: float) -> None:
        """Granularity is the counter budget (a positive integer)."""
        self.sketch.resize(int(granularity))

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Shrink the counter budget under storage pressure."""
        if feedback.storage_pressure > 0.5 and self.sketch.capacity > 16:
            self.sketch.resize(max(16, self.sketch.capacity // 2))

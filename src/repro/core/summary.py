"""Summary metadata: time intervals, locations, lineage, and the
:class:`DataSummary` envelope.

The paper's combination rule — "each summary represents a single time
interval and a collection of data streams at a single location" and two
summaries combine when they share either the time period or the location
— lives here, as does schema-level lineage (Section III.C): every summary
records which operation produced it from which inputs, so a faulty sensor
can be traced to every summary it contaminated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import LineageError


@dataclass(frozen=True)
class TimeInterval:
    """A half-open interval ``[start, end)`` in simulation seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end {self.end} precedes start {self.start}"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        """True if ``timestamp`` falls inside the interval."""
        return self.start <= timestamp < self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """True if the two intervals share any time."""
        return self.start < other.end and other.start < self.end

    def adjacent_to(self, other: "TimeInterval") -> bool:
        """True if one interval starts exactly where the other ends."""
        return self.end == other.start or other.end == self.start

    def union(self, other: "TimeInterval") -> "TimeInterval":
        """The smallest interval covering both (inputs may be disjoint)."""
        return TimeInterval(
            min(self.start, other.start), max(self.end, other.end)
        )

    def __str__(self) -> str:
        return f"[{self.start:g}, {self.end:g})"


@dataclass(frozen=True)
class Location:
    """A position in the physical hierarchy, as a slash-separated path.

    ``Location("factory1/line2/machine3")`` sits below
    ``Location("factory1/line2")``.  The common-ancestor operation is what
    merged summaries use as their combined location.
    """

    path: str

    def __post_init__(self) -> None:
        if not self.path or self.path.startswith("/") or self.path.endswith("/"):
            raise ValueError(f"bad location path {self.path!r}")

    @property
    def parts(self) -> Tuple[str, ...]:
        """The path segments, root first."""
        return tuple(self.path.split("/"))

    @property
    def level(self) -> int:
        """Depth in the hierarchy (the root is level 0)."""
        return len(self.parts) - 1

    @property
    def parent(self) -> Optional["Location"]:
        """The enclosing location, or None at the root."""
        parts = self.parts
        if len(parts) == 1:
            return None
        return Location("/".join(parts[:-1]))

    def is_ancestor_of(self, other: "Location") -> bool:
        """True if ``other`` lies strictly below this location."""
        mine, theirs = self.parts, other.parts
        return len(mine) < len(theirs) and theirs[: len(mine)] == mine

    def common_ancestor(self, other: "Location") -> "Location":
        """The deepest location containing both (root at minimum)."""
        common: List[str] = []
        for a, b in zip(self.parts, other.parts):
            if a != b:
                break
            common.append(a)
        if not common:
            raise ValueError(
                f"locations {self.path!r} and {other.path!r} share no root"
            )
        return Location("/".join(common))

    def child(self, name: str) -> "Location":
        """The location one level below with segment ``name``."""
        return Location(f"{self.path}/{name}")

    def __str__(self) -> str:
        return self.path


_lineage_counter = itertools.count(1)


@dataclass(frozen=True)
class LineageRecord:
    """Schema-level lineage: one transformation step.

    ``operation`` names the transformation (``ingest``, ``merge``,
    ``compress``, ``replicate`` …), ``inputs`` are the lineage ids of the
    consumed summaries (empty for sensor ingest), and ``location`` is
    where the step ran.
    """

    lineage_id: int
    operation: str
    inputs: Tuple[int, ...]
    location: Optional[Location]
    timestamp: float
    detail: str = ""


class LineageLog:
    """An append-only log of lineage records with ancestry queries."""

    def __init__(self) -> None:
        self._records: Dict[int, LineageRecord] = {}

    def record(
        self,
        operation: str,
        inputs: Iterable[int] = (),
        location: Optional[Location] = None,
        timestamp: float = 0.0,
        detail: str = "",
    ) -> LineageRecord:
        """Append a record and return it (its id is globally unique)."""
        input_ids = tuple(inputs)
        for input_id in input_ids:
            if input_id not in self._records:
                raise LineageError(f"unknown lineage input id {input_id}")
        entry = LineageRecord(
            lineage_id=next(_lineage_counter),
            operation=operation,
            inputs=input_ids,
            location=location,
            timestamp=timestamp,
            detail=detail,
        )
        self._records[entry.lineage_id] = entry
        return entry

    def get(self, lineage_id: int) -> LineageRecord:
        """Fetch one record by id."""
        try:
            return self._records[lineage_id]
        except KeyError as exc:
            raise LineageError(f"unknown lineage id {lineage_id}") from exc

    def ancestry(self, lineage_id: int) -> List[LineageRecord]:
        """All records the given one (transitively) derives from,
        including itself, in discovery order."""
        seen: Dict[int, LineageRecord] = {}
        frontier = [lineage_id]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            record = self.get(current)
            seen[current] = record
            frontier.extend(record.inputs)
        return list(seen.values())

    def descendants(self, lineage_id: int) -> List[LineageRecord]:
        """All records that (transitively) derive from the given one.

        This is the "how does faulty data propagate" query of
        Section III.C.
        """
        self.get(lineage_id)
        children: Dict[int, List[int]] = {}
        for record in self._records.values():
            for parent in record.inputs:
                children.setdefault(parent, []).append(record.lineage_id)
        result: List[LineageRecord] = []
        seen = set()
        frontier = list(children.get(lineage_id, []))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            result.append(self.get(current))
            frontier.extend(children.get(current, []))
        return result

    def __len__(self) -> int:
        return len(self._records)


@dataclass(frozen=True)
class SummaryMeta:
    """Where and when a summary comes from, plus its lineage id."""

    interval: TimeInterval
    location: Location
    lineage_id: Optional[int] = None

    def combinable_with(self, other: "SummaryMeta") -> bool:
        """The paper's Merge precondition: shared time or shared location.

        "Shared time" accepts overlapping or adjacent intervals (merging
        hour 1 and hour 2 of the same site is the canonical use)."""
        same_location = self.location == other.location
        shared_time = self.interval.overlaps(
            other.interval
        ) or self.interval.adjacent_to(other.interval)
        return same_location or shared_time

    def combined(self, other: "SummaryMeta") -> "SummaryMeta":
        """Metadata of the merged summary: union interval, common-ancestor
        location."""
        if self.location == other.location:
            location = self.location
        else:
            location = self.location.common_ancestor(other.location)
        return SummaryMeta(
            interval=self.interval.union(other.interval),
            location=location,
        )


@dataclass
class DataSummary:
    """The envelope a primitive hands to the data store.

    ``payload`` is primitive-specific (a Flowtree, a list of sampled
    points, a table of bin statistics …); ``size_bytes`` is the
    approximate wire footprint used for storage budgeting and transfer
    accounting; ``attrs`` carries primitive-specific facts a query planner
    may need (e.g. sampling rate).
    """

    kind: str
    meta: SummaryMeta
    payload: Any
    size_bytes: int
    attrs: Dict[str, Any] = field(default_factory=dict)

"""Count-Min sketch: fixed-size frequency estimation.

Another of Section V's "existing methods".  The Count-Min sketch answers
point frequency queries with one-sided error (always overestimates, by
at most ``eps * total`` with probability ``1 - delta``), and merges by
cell-wise addition — making it a natural building block for combinable
summaries when the key universe is too large for per-key counters.
"""

from __future__ import annotations

import math
import random
from typing import Any, Hashable, List, Optional

from repro.errors import GranularityError, SchemaMismatchError
from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location

_CELL_BYTES = 8
_MERSENNE_PRIME = (1 << 61) - 1


class CountMinSketch:
    """A ``depth x width`` Count-Min sketch with pairwise-independent
    hashing.

    Construct either from explicit dimensions or from accuracy targets
    via :meth:`from_error`.
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise GranularityError(
                f"sketch dimensions must be positive, got {width}x{depth}"
            )
        self.width = width
        self.depth = depth
        self.seed = seed
        rng = random.Random(seed)
        self._hash_params = [
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(_MERSENNE_PRIME))
            for _ in range(depth)
        ]
        self._cells: List[List[float]] = [[0.0] * width for _ in range(depth)]
        self.total = 0.0

    @classmethod
    def from_error(
        cls, eps: float, delta: float, seed: int = 0
    ) -> "CountMinSketch":
        """Dimension the sketch for error ``eps`` at confidence
        ``1 - delta`` (standard ``w = ceil(e/eps)``, ``d = ceil(ln 1/delta)``)."""
        if not 0 < eps < 1 or not 0 < delta < 1:
            raise GranularityError(
                f"eps and delta must be in (0, 1), got {eps}, {delta}"
            )
        width = math.ceil(math.e / eps)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=max(1, depth), seed=seed)

    def _row_index(self, row: int, item: Hashable) -> int:
        a, b = self._hash_params[row]
        return ((a * hash(item) + b) % _MERSENNE_PRIME) % self.width

    def add(self, item: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` occurrences of ``item``."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.total += weight
        for row in range(self.depth):
            self._cells[row][self._row_index(row, item)] += weight

    def estimate(self, item: Hashable) -> float:
        """Point frequency estimate (never underestimates)."""
        return min(
            self._cells[row][self._row_index(row, item)]
            for row in range(self.depth)
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Cell-wise addition; dimensions and seeds must match."""
        if (
            self.width != other.width
            or self.depth != other.depth
            or self.seed != other.seed
        ):
            raise SchemaMismatchError(
                "cannot merge Count-Min sketches with different shapes/seeds"
            )
        for row in range(self.depth):
            mine, theirs = self._cells[row], other._cells[row]
            for column in range(self.width):
                mine[column] += theirs[column]
        self.total += other.total

    def footprint_bytes(self) -> int:
        """Approximate memory footprint."""
        return _CELL_BYTES * self.width * self.depth


class CountMinPrimitive(ComputingPrimitive):
    """Count-Min wrapped as a computing primitive.

    Supported query operators: ``"count"`` (param ``item``), ``"total"``.
    Granularity is the sketch width (a budget, adjustable only between
    epochs because cells cannot be re-hashed in place).
    """

    kind = "count_min"

    def __init__(
        self,
        location: Location,
        width: int = 1024,
        depth: int = 4,
        seed: int = 0,
        weight_of=None,
    ) -> None:
        super().__init__(location)
        self._weight_of = weight_of
        self._pending_width: Optional[int] = None
        self.sketch = CountMinSketch(width=width, depth=depth, seed=seed)

    def _ingest(self, item: Any, timestamp: float) -> None:
        weight = float(self._weight_of(item)) if self._weight_of else 1.0
        self.sketch.add(item, weight)

    def _reset(self) -> None:
        width = self._pending_width or self.sketch.width
        self._pending_width = None
        self.sketch = CountMinSketch(
            width=width, depth=self.sketch.depth, seed=self.sketch.seed
        )

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=self.sketch,
            size_bytes=self.footprint_bytes(),
            attrs={"width": self.sketch.width, "depth": self.sketch.depth},
        )

    def footprint_bytes(self) -> int:
        return self.sketch.footprint_bytes()

    def query(self, request: QueryRequest) -> Any:
        if request.operator == "count":
            return self.sketch.estimate(request.params["item"])
        if request.operator == "total":
            return self.sketch.total
        raise ValueError(
            f"count-min primitive does not support operator "
            f"{request.operator!r}"
        )

    def combine(self, other: "ComputingPrimitive") -> None:
        self._check_combinable(other)
        assert isinstance(other, CountMinPrimitive)
        self.sketch.merge(other.sketch)

    def set_granularity(self, granularity: float) -> None:
        """Schedule a new width for the next epoch."""
        width = int(granularity)
        if width < 1:
            raise GranularityError(f"width must be >= 1, got {width}")
        self._pending_width = width

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Halve the width next epoch under storage pressure."""
        if feedback.storage_pressure > 0.5 and self.sketch.width > 64:
            self.set_granularity(self.sketch.width // 2)

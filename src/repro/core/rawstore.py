"""Raw access: the no-aggregation aggregator of Figure 4.

The data-store figure lists "Raw Access" alongside Sample/HHH/Flowtree:
some applications need original items (e.g. to replay an incident).
This primitive retains raw items verbatim up to a byte budget, dropping
oldest-first once full — the in-primitive analogue of round-robin
storage.  It exists mainly as the baseline the other primitives are
measured against: maximal fidelity, maximal footprint, no combination
across sites beyond concatenation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.core.primitive import (
    AdaptationFeedback,
    ComputingPrimitive,
    QueryRequest,
)
from repro.core.summary import DataSummary, Location
from repro.errors import GranularityError

_DEFAULT_ITEM_BYTES = 48


class RawStorePrimitive(ComputingPrimitive):
    """Verbatim retention under a byte budget.

    Supported query operators:

    * ``"items"`` — params ``start``/``end``: the retained (timestamp,
      item) pairs in a window.
    * ``"count"`` — retained item count.
    * ``"replay"`` — param ``consumer``: feed every retained item to a
      callable, oldest first; returns how many were replayed.
    """

    kind = "raw"

    def __init__(
        self,
        location: Location,
        budget_bytes: int = 1_000_000,
        size_of: Optional[Callable[[Any], int]] = None,
    ) -> None:
        super().__init__(location)
        if budget_bytes <= 0:
            raise GranularityError(
                f"budget must be positive, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._size_of = size_of
        self._items: Deque[Tuple[float, Any, int]] = deque()
        self._stored_bytes = 0
        self.dropped = 0

    def _item_size(self, item: Any) -> int:
        if self._size_of is not None:
            return int(self._size_of(item))
        return getattr(item, "size_bytes", None) or _DEFAULT_ITEM_BYTES

    def _ingest(self, item: Any, timestamp: float) -> None:
        size = self._item_size(item)
        self._items.append((timestamp, item, size))
        self._stored_bytes += size
        while self._stored_bytes > self.budget_bytes and len(self._items) > 1:
            _, _, dropped_size = self._items.popleft()
            self._stored_bytes -= dropped_size
            self.dropped += 1

    def _reset(self) -> None:
        self._items.clear()
        self._stored_bytes = 0

    def summary(self) -> DataSummary:
        return DataSummary(
            kind=self.kind,
            meta=self.meta(),
            payload=[(t, item) for t, item, _ in self._items],
            size_bytes=self._stored_bytes,
            attrs={"budget_bytes": self.budget_bytes,
                   "dropped": self.dropped},
        )

    def footprint_bytes(self) -> int:
        return self._stored_bytes

    def query(self, request: QueryRequest) -> Any:
        params = request.params
        if request.operator == "items":
            start, end = params.get("start"), params.get("end")
            selected: List[Tuple[float, Any]] = []
            for timestamp, item, _size in self._items:
                if start is not None and timestamp < start:
                    continue
                if end is not None and timestamp >= end:
                    continue
                selected.append((timestamp, item))
            return selected
        if request.operator == "count":
            return len(self._items)
        if request.operator == "replay":
            consumer = params["consumer"]
            for _timestamp, item, _size in self._items:
                consumer(item)
            return len(self._items)
        raise ValueError(
            f"raw primitive does not support operator {request.operator!r}"
        )

    def combine(self, other: "ComputingPrimitive") -> None:
        """Concatenate retained items (time-ordered), re-applying the
        budget."""
        self._check_combinable(other)
        assert isinstance(other, RawStorePrimitive)
        merged = sorted(
            list(self._items) + list(other._items), key=lambda t: t[0]
        )
        self._items = deque()
        self._stored_bytes = 0
        for timestamp, item, size in merged:
            self._items.append((timestamp, item, size))
            self._stored_bytes += size
        while self._stored_bytes > self.budget_bytes and len(self._items) > 1:
            _, _, dropped_size = self._items.popleft()
            self._stored_bytes -= dropped_size
            self.dropped += 1

    def set_granularity(self, granularity: float) -> None:
        """Granularity is the byte budget."""
        budget = int(granularity)
        if budget <= 0:
            raise GranularityError(f"budget must be positive, got {budget}")
        self.budget_bytes = budget
        while self._stored_bytes > self.budget_bytes and len(self._items) > 1:
            _, _, dropped_size = self._items.popleft()
            self._stored_bytes -= dropped_size
            self.dropped += 1

    def adapt(self, feedback: AdaptationFeedback) -> None:
        """Halve the budget under storage pressure."""
        if feedback.storage_pressure > 0.5 and self.budget_bytes > 1024:
            self.set_granularity(self.budget_bytes // 2)

"""The data store (Figure 4): collect, aggregate, store, trigger, query.

One :class:`DataStore` manages one mega-dataset at one location.  It is
the only component that persists data; everything else (analytics,
applications) sees summaries or query results.

Federation: stores know their peers.  A query for data held elsewhere is
either **shipped to the data** (the peer executes it and returns the
result over the network, accounted on the fabric) or answered **on a
local replica** if the partition has been replicated here — the two
sides of the Section VII trade-off that the adaptive-replication engine
arbitrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.primitive import QueryRequest
from repro.core.summary import DataSummary, LineageLog, Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.partitions import Partition, PartitionCatalog
from repro.datastore.recombine import combine_summaries
from repro.datastore.storage import StorageStrategy
from repro.datastore.summary_query import (
    approx_result_bytes,
    can_rehydrate,
    rehydrate,
)
from repro.datastore.triggers import (
    RawTrigger,
    SummaryTrigger,
    TriggerEngine,
    TriggerSink,
)
from repro.errors import StorageError
from repro.hierarchy.network import NetworkFabric

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datastore.privacy import PrivacyGuard


@dataclass
class QueryResult:
    """Outcome of a data-store query."""

    value: Any
    aggregator: str
    partitions_used: List[str] = field(default_factory=list)
    used_live: bool = False
    result_bytes: int = 0
    shipped_bytes: int = 0
    source: str = "local"
    latency: float = 0.0


@dataclass
class IngestStats:
    """Running ingest accounting for one store."""

    items: int = 0
    bytes: int = 0

    def observe(self, size_bytes: int) -> None:
        """Count one ingested item."""
        self.items += 1
        self.bytes += size_bytes

    def observe_many(self, size_bytes: int, count: int) -> None:
        """Count ``count`` items of ``size_bytes`` each at once."""
        self.items += count
        self.bytes += size_bytes * count


class DataStore:
    """One mega-dataset: aggregators + storage + triggers + query API."""

    def __init__(
        self,
        location: Location,
        storage: StorageStrategy,
        fabric: Optional[NetworkFabric] = None,
        lineage: Optional[LineageLog] = None,
        privacy: Optional["PrivacyGuard"] = None,
    ) -> None:
        self.location = location
        self.storage = storage
        self.fabric = fabric
        self.privacy = privacy
        self.lineage = lineage or LineageLog()
        #: optional reactive result cache for federated queries
        #: (Section VII: caching combines with replication)
        self.cache = None
        self.catalog = PartitionCatalog()
        self.replicas = PartitionCatalog()
        self.triggers = TriggerEngine()
        self._aggregators: Dict[str, Aggregator] = {}
        self._peers: Dict[str, "DataStore"] = {}
        self.ingest_stats = IngestStats()
        self.evictions: List[Partition] = []

    def relocate(self, location: Location, now: float = 0.0) -> Location:
        """Move this store to a new hierarchy location (reparenting).

        The store keeps every aggregator, partition, and replica — only
        its address changes.  Live primitives are re-addressed too, so
        summaries cut after the move carry the new location.  Returns
        the old location; callers re-key any path-indexed state
        (runtime store maps, pending queues, peer tables).
        """
        old = self.location
        self.location = location
        for aggregator in self._aggregators.values():
            primitive = aggregator.primitive
            if getattr(primitive, "location", None) is not None:
                primitive.location = location
        self.lineage.record(
            operation="relocate",
            location=location,
            timestamp=now,
            detail=f"{old.path}->{location.path}",
        )
        return old

    # ------------------------------------------------------------------
    # aggregators

    def install_aggregator(self, aggregator: Aggregator) -> None:
        """Install a named aggregator (names are unique per store)."""
        if aggregator.name in self._aggregators:
            raise StorageError(
                f"aggregator {aggregator.name!r} already installed at "
                f"{self.location.path!r}"
            )
        self._aggregators[aggregator.name] = aggregator

    def remove_aggregator(self, name: str) -> Aggregator:
        """Uninstall an aggregator; its stored partitions remain."""
        try:
            return self._aggregators.pop(name)
        except KeyError as exc:
            raise StorageError(
                f"no aggregator {name!r} at {self.location.path!r}"
            ) from exc

    def aggregator(self, name: str) -> Aggregator:
        """Fetch one installed aggregator."""
        try:
            return self._aggregators[name]
        except KeyError as exc:
            raise StorageError(
                f"no aggregator {name!r} at {self.location.path!r}"
            ) from exc

    def aggregators(self) -> List[Aggregator]:
        """All installed aggregators."""
        return list(self._aggregators.values())

    def owns(self, aggregator: str) -> bool:
        """Whether this store produces or stores data for ``aggregator``."""
        return (
            aggregator in self._aggregators
            or bool(self.catalog.for_aggregator(aggregator))
        )

    # ------------------------------------------------------------------
    # ingest path (Figure 4, left side)

    def ingest(
        self,
        stream_id: str,
        records: Any,
        timestamp: Optional[float] = None,
        size_bytes: int = 0,
        exclude: Optional[str] = None,
    ) -> int:
        """Push raw data through triggers and subscribed aggregators.

        One signature for both shapes:

        * ``ingest(stream, item, timestamp)`` — a single item with its
          timestamp (the historical per-item call).
        * ``ingest(stream, timed_items)`` — an iterable of
          ``(item, timestamp)`` pairs; stats and raw triggers still see
          every item, but subscribed aggregators get the whole batch at
          once, letting budgeted primitives amortize their compression
          checks.

        ``size_bytes`` is the per-item raw size either way.  ``exclude``
        names one aggregator to skip — the parallel ingest path feeds
        that aggregator through its worker process while this call still
        covers stats, triggers, and any other subscribers.  Returns the
        number of items ingested.
        """
        if timestamp is not None:
            timed_items: List[Tuple[Any, float]] = [(records, timestamp)]
        else:
            timed_items = list(records)
        if not timed_items:
            return 0
        if self.triggers.has_raw():
            for item, at_time in timed_items:
                self.ingest_stats.observe(size_bytes)
                self.triggers.evaluate_raw(stream_id, item, at_time)
        else:
            # no raw triggers installed: identical accounting, one call
            self.ingest_stats.observe_many(size_bytes, len(timed_items))
        subscribed = [
            aggregator
            for aggregator in self._aggregators.values()
            if aggregator.name != exclude and aggregator.wants(stream_id)
        ]
        if len(timed_items) == 1:
            for aggregator in subscribed:
                aggregator.ingest(*timed_items[0])
        else:
            for aggregator in subscribed:
                aggregator.ingest_many(timed_items)
        return len(timed_items)

    def storage_pressure(self) -> float:
        """Current storage pressure from the strategy."""
        return self.storage.pressure(self.catalog)

    def close_epoch(self, now: float) -> List[Partition]:
        """Cut summaries from every aggregator, store them, fire triggers.

        Returns the newly created partitions.  Evictions performed by
        the storage strategy are appended to :attr:`evictions`.
        """
        created: List[Partition] = []
        pressure = self.storage_pressure()
        for aggregator in self._aggregators.values():
            if aggregator.items_this_epoch == 0:
                continue
            summary = aggregator.close_epoch(now, pressure)
            record = self.lineage.record(
                operation="aggregate",
                location=self.location,
                timestamp=now,
                detail=f"{aggregator.name}:{summary.kind}",
            )
            summary.meta = type(summary.meta)(
                interval=summary.meta.interval,
                location=summary.meta.location,
                lineage_id=record.lineage_id,
            )
            partition = Partition(
                partition_id=Partition.fresh_id(aggregator.name),
                aggregator=aggregator.name,
                summary=summary,
                created_at=now,
            )
            self.evictions.extend(
                self.storage.admit(partition, self.catalog, now)
            )
            created.append(partition)
            self.triggers.evaluate_summary(aggregator.name, summary, now)
        self.evictions.extend(self.storage.maintain(self.catalog, now))
        return created

    # ------------------------------------------------------------------
    # triggers (installed by applications via the controller/manager)

    def install_raw_trigger(self, trigger: RawTrigger) -> None:
        """Install a per-item trigger."""
        self.triggers.install_raw(trigger)

    def install_summary_trigger(self, trigger: SummaryTrigger) -> None:
        """Install an epoch-summary trigger."""
        self.triggers.install_summary(trigger)

    def subscribe_triggers(self, sink: TriggerSink) -> None:
        """Route trigger firings to a controller."""
        self.triggers.subscribe(sink)

    # ------------------------------------------------------------------
    # local queries

    def window_summary(
        self,
        aggregator: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        record_access: bool = False,
        now: float = 0.0,
        remote: bool = False,
    ) -> Tuple[Optional[DataSummary], List[str]]:
        """Combine stored partitions overlapping a window into one summary.

        Returns ``(summary, partition ids used)``; summary is None when
        no partition overlaps the window.
        """
        partitions = self.catalog.in_interval(aggregator, start, end)
        if not partitions:
            return None, []
        combined = combine_summaries(
            [p.summary for p in partitions], shrink=1.0
        )
        if record_access:
            share = combined.size_bytes // max(1, len(partitions))
            for partition in partitions:
                partition.record_access(now, share, remote)
        return combined, [p.partition_id for p in partitions]

    def query(
        self,
        aggregator: str,
        request: QueryRequest,
        start: Optional[float] = None,
        end: Optional[float] = None,
        include_live: bool = True,
        now: float = 0.0,
        _remote: bool = False,
    ) -> QueryResult:
        """Answer a query from local data (live aggregator + history).

        With a time window, stored partitions overlapping it are merged
        and rehydrated; without one, only the live aggregator answers.
        Every touched partition's access is recorded — the raw material
        for replication decisions.
        """
        live = self._aggregators.get(aggregator)
        use_history = start is not None or end is not None
        partitions_used: List[str] = []
        if use_history:
            summary, partitions_used = self.window_summary(
                aggregator, start, end, record_access=True, now=now,
                remote=_remote,
            )
            if summary is None or not can_rehydrate(summary.kind):
                if live is None:
                    raise StorageError(
                        f"no data for aggregator {aggregator!r} in window at "
                        f"{self.location.path!r}"
                    )
                value = live.primitive.query(request)
                live.note_query()
                return QueryResult(
                    value=value,
                    aggregator=aggregator,
                    used_live=True,
                    result_bytes=approx_result_bytes(value),
                )
            primitive = rehydrate(summary)
            value = primitive.query(request)
            if live is not None:
                live.note_query()
            return QueryResult(
                value=value,
                aggregator=aggregator,
                partitions_used=partitions_used,
                result_bytes=approx_result_bytes(value),
            )
        if live is None:
            raise StorageError(
                f"no live aggregator {aggregator!r} at {self.location.path!r}"
            )
        value = live.primitive.query(request)
        live.note_query()
        return QueryResult(
            value=value,
            aggregator=aggregator,
            used_live=True,
            result_bytes=approx_result_bytes(value),
        )

    def query_composite(
        self,
        subqueries: Dict[str, Tuple[str, QueryRequest]],
        start: Optional[float] = None,
        end: Optional[float] = None,
        now: float = 0.0,
    ) -> Dict[str, QueryResult]:
        """Break a composite query into per-aggregator sub-queries.

        Section IV: "Queries received by the data store are broken into
        sub-queries and are forwarded to the respective aggregator.
        Sub-queries for aggregators stored at other data stores are
        forwarded or resolved on a local replicate."  Each entry maps a
        caller-chosen label to ``(aggregator name, request)``; local
        aggregators answer directly, everything else goes through the
        federated path (replica, then peer).
        """
        results: Dict[str, QueryResult] = {}
        for label, (aggregator, request) in subqueries.items():
            if self.owns(aggregator):
                results[label] = self.query(
                    aggregator, request, start=start, end=end, now=now
                )
            else:
                results[label] = self.query_federated(
                    aggregator, request, start=start, end=end, now=now
                )
        return results

    # ------------------------------------------------------------------
    # federation (peers, remote queries, replicas)

    def add_peer(self, store: "DataStore") -> None:
        """Register a peer store (and vice versa)."""
        if store.location.path == self.location.path:
            return
        self._peers[store.location.path] = store
        store._peers[self.location.path] = self

    def peers(self) -> List["DataStore"]:
        """All registered peers."""
        return list(self._peers.values())

    def _replica_for(
        self,
        aggregator: str,
        start: Optional[float],
        end: Optional[float],
    ) -> List[Partition]:
        selected = []
        for partition in self.replicas.all():
            if partition.aggregator != aggregator:
                continue
            interval = partition.summary.meta.interval
            if start is not None and interval.end <= start:
                continue
            if end is not None and interval.start >= end:
                continue
            selected.append(partition)
        return selected

    def query_federated(
        self,
        aggregator: str,
        request: QueryRequest,
        start: Optional[float] = None,
        end: Optional[float] = None,
        now: float = 0.0,
    ) -> QueryResult:
        """Answer a query wherever the data lives.

        Resolution order mirrors Section IV: local data, then local
        replicas of the remote aggregator, then shipping the query to
        the owning peer (accounting the result transfer on the fabric).
        """
        if self.owns(aggregator):
            return self.query(
                aggregator, request, start=start, end=end, now=now
            )
        cache_key = None
        if self.cache is not None:
            cache_key = self.cache.key_for(aggregator, request, start, end)
            entry = self.cache.get(cache_key, now)
            if entry is not None:
                return QueryResult(
                    value=entry.value,
                    aggregator=aggregator,
                    result_bytes=entry.result_bytes,
                    source="cache",
                )
        replicas = self._replica_for(aggregator, start, end)
        if replicas:
            combined = combine_summaries(
                [p.summary for p in replicas], shrink=1.0
            )
            primitive = rehydrate(combined)
            value = primitive.query(request)
            for replica in replicas:
                replica.record_access(
                    now,
                    combined.size_bytes // max(1, len(replicas)),
                    remote=False,
                )
            return QueryResult(
                value=value,
                aggregator=aggregator,
                partitions_used=[p.partition_id for p in replicas],
                result_bytes=approx_result_bytes(value),
                source="replica",
            )
        for peer in self._peers.values():
            if not peer.owns(aggregator):
                continue
            result = peer.query(
                aggregator, request, start=start, end=end, now=now,
                _remote=True,
            )
            latency = 0.0
            if self.fabric is not None:
                transfer = self.fabric.transfer(
                    peer.location, self.location, result.result_bytes, now
                )
                latency = transfer.duration
            result.shipped_bytes = result.result_bytes
            result.source = "remote"
            result.latency = latency
            if self.cache is not None:
                self.cache.put(
                    cache_key, result.value, result.result_bytes, now
                )
            return result
        raise StorageError(
            f"no store (local, replica, or peer) holds aggregator "
            f"{aggregator!r}"
        )

    def replicate_partition(
        self, partition_id: str, to_store: "DataStore", now: float = 0.0
    ) -> float:
        """Copy one partition to a peer; returns the transfer duration.

        The replica lands in the peer's replica catalog and will satisfy
        its future queries locally — replication "buys the ski-set".
        """
        partition = self.catalog.get(partition_id)
        outgoing = partition.summary
        if self.privacy is not None:
            # Section III.C: a replica leaves the store's trust domain,
            # so it gets the policy-degraded view; local data stays full
            # fidelity
            outgoing = self.privacy.export(partition.aggregator, outgoing)
        duration = 0.0
        if self.fabric is not None:
            transfer = self.fabric.transfer(
                self.location, to_store.location, outgoing.size_bytes, now
            )
            duration = transfer.duration
        record = self.lineage.record(
            operation="replicate",
            inputs=(
                (partition.summary.meta.lineage_id,)
                if partition.summary.meta.lineage_id
                else ()
            ),
            location=to_store.location,
            timestamp=now,
            detail=partition.partition_id,
        )
        replica_summary = DataSummary(
            kind=outgoing.kind,
            meta=type(outgoing.meta)(
                interval=outgoing.meta.interval,
                location=outgoing.meta.location,
                lineage_id=record.lineage_id,
            ),
            payload=outgoing.payload,
            size_bytes=outgoing.size_bytes,
            attrs=dict(outgoing.attrs),
        )
        replica = Partition(
            partition_id=f"{partition.partition_id}@{to_store.location.path}",
            aggregator=partition.aggregator,
            summary=replica_summary,
            created_at=now,
        )
        to_store.replicas.add(replica)
        partition.replicated_to.append(to_store.location.path)
        return duration

    # ------------------------------------------------------------------
    # export up the hierarchy (Figure 5, step 3)

    def export_summaries(
        self,
        aggregator: str,
        to_store: "DataStore",
        into_aggregator: Optional[str] = None,
        now: float = 0.0,
    ) -> Optional[float]:
        """Ship the aggregator's latest summary to a parent store.

        The receiving store combines it into its own live aggregator of
        the same (or the named) kind.  Returns the transfer duration, or
        None when there was nothing to export.
        """
        source = self.aggregator(aggregator)
        if source.primitive.items_ingested == 0:
            return None
        summary = source.primitive.summary()
        exported_primitive = source.primitive
        if self.privacy is not None:
            from repro.datastore.summary_query import rehydrate

            summary = self.privacy.export(aggregator, summary)
            exported_primitive = rehydrate(summary)
            exported_primitive.items_ingested = source.primitive.items_ingested
        duration = 0.0
        if self.fabric is not None:
            transfer = self.fabric.transfer(
                self.location, to_store.location, summary.size_bytes, now
            )
            duration = transfer.duration
        target = to_store.aggregator(into_aggregator or aggregator)
        target.primitive.combine(exported_primitive)
        target.items_this_epoch += source.items_this_epoch
        if target.epoch_opened_at is None:
            target.epoch_opened_at = now
        self.lineage.record(
            operation="export",
            location=to_store.location,
            timestamp=now,
            detail=f"{aggregator}->{to_store.location.path}",
        )
        return duration

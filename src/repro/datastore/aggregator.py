"""Aggregators: named primitive instances subscribed to streams.

Figure 4 shows a data store feeding sensor streams into several
aggregators ("Sample", "HHH", "Flow Tree", "Raw Access").  An
:class:`Aggregator` binds one computing primitive to a stream-id
predicate, tracks its observed ingest rate and query load (the inputs to
self-adaptation), and cuts epoch summaries.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.primitive import AdaptationFeedback, ComputingPrimitive
from repro.core.summary import DataSummary

#: Decides whether a stream belongs to this aggregator.
StreamFilter = Callable[[str], bool]


def match_all(stream_id: str) -> bool:
    """The default stream filter: subscribe to everything."""
    return True


def prefix_filter(prefix: str) -> StreamFilter:
    """A filter matching stream ids beginning with ``prefix``."""

    def matches(stream_id: str) -> bool:
        return stream_id.startswith(prefix)

    return matches


class Aggregator:
    """One installed primitive plus its subscription and statistics."""

    def __init__(
        self,
        name: str,
        primitive: ComputingPrimitive,
        stream_filter: StreamFilter = match_all,
        item_of: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.name = name
        self.primitive = primitive
        self.stream_filter = stream_filter
        #: Optional projection from the raw stream item to what the
        #: primitive ingests (e.g. ``reading.value`` for numeric
        #: primitives fed from :class:`SensorReading` objects).
        self.item_of = item_of
        self.items_this_epoch = 0
        self.queries_this_epoch = 0
        self.epoch_opened_at: Optional[float] = None
        self.epochs_closed = 0

    def wants(self, stream_id: str) -> bool:
        """Whether this aggregator subscribes to the stream."""
        return self.stream_filter(stream_id)

    def ingest(self, item: Any, timestamp: float) -> None:
        """Feed one stream item to the primitive."""
        if self.epoch_opened_at is None:
            self.epoch_opened_at = timestamp
        value = self.item_of(item) if self.item_of else item
        self.primitive.ingest(value, timestamp)
        self.items_this_epoch += 1

    def ingest_many(self, timed_items) -> int:
        """Feed a batch of ``(item, timestamp)`` pairs to the primitive.

        Delegates to the primitive's batched path (which amortizes
        budget checks); returns how many items were consumed.
        """
        if self.item_of:
            projection = self.item_of
            timed_items = [
                (projection(item), timestamp) for item, timestamp in timed_items
            ]
        else:
            timed_items = list(timed_items)
        if not timed_items:
            return 0
        if self.epoch_opened_at is None:
            self.epoch_opened_at = timed_items[0][1]
        count = self.primitive.ingest_many(timed_items)
        self.items_this_epoch += count
        return count

    def note_query(self) -> None:
        """Record one query against this aggregator (for adaptation)."""
        self.queries_this_epoch += 1

    def feedback(self, now: float, storage_pressure: float) -> AdaptationFeedback:
        """Summarize the epoch's conditions for self-adaptation."""
        opened = self.epoch_opened_at if self.epoch_opened_at is not None else now
        elapsed = max(1e-9, now - opened)
        return AdaptationFeedback(
            ingest_rate=self.items_this_epoch / elapsed,
            storage_pressure=storage_pressure,
            query_rate=self.queries_this_epoch / elapsed,
        )

    def close_epoch(self, now: float, storage_pressure: float) -> DataSummary:
        """Snapshot the epoch summary, adapt, and start a new epoch."""
        feedback = self.feedback(now, storage_pressure)
        summary = self.primitive.reset_epoch()
        self.primitive.adapt(feedback)
        self.items_this_epoch = 0
        self.queries_this_epoch = 0
        self.epoch_opened_at = now
        self.epochs_closed += 1
        return summary

"""Privacy and security enforcement (Section III.C).

    "Privacy can be enforced, by limiting what summaries can be shared
    with the analytics component and at what granularity.  Other
    summaries and more precise data may still be used by a local
    Controller.  Security can be achieved, by encrypting data along the
    Analytics pipelines, requiring updates to the Controller to be
    certified ..., and by requiring authorization prior to interaction
    with the manager."

This module implements the data-plane half of that sentence:

* :class:`PrivacyPolicy` — per-aggregator export rules: whether a
  summary kind may leave the store at all, and the *coarsest-allowed*
  granularity it must be degraded to first.  Local consumers (the
  controller) bypass the policy; remote consumers (analytics, peer
  stores, the cloud) get the degraded view.
* :class:`PrivacyGuard` — applies a policy to a
  :class:`~repro.core.summary.DataSummary` before export, recording an
  audit trail.

Controller certification lives in :mod:`repro.control.controller`
(``require_certification``); manager authorization in
:mod:`repro.control.manager` is modeled by
:class:`AuthorizationContext`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.summary import DataSummary
from repro.errors import ReproError


class PrivacyViolation(ReproError):
    """An export was blocked by the privacy policy."""


@dataclass(frozen=True)
class ExportRule:
    """Export constraints for one aggregator (or one summary kind).

    ``shareable`` gates export entirely.  ``min_ip_prefix`` truncates
    every IPv4 feature of a Flowtree summary to at most this many
    prefix bits (e.g. 24 anonymizes hosts into /24s).  ``min_bin_seconds``
    coarsens time-binned summaries.  ``max_sample_rate`` caps how much
    of a raw sample may leave.
    """

    shareable: bool = True
    min_ip_prefix: Optional[int] = None
    min_bin_seconds: Optional[float] = None
    max_sample_rate: Optional[float] = None


@dataclass
class PrivacyPolicy:
    """Per-aggregator export rules with a default."""

    default: ExportRule = field(default_factory=ExportRule)
    rules: Dict[str, ExportRule] = field(default_factory=dict)

    def rule_for(self, aggregator: str) -> ExportRule:
        """The rule applying to one aggregator."""
        return self.rules.get(aggregator, self.default)


@dataclass(frozen=True)
class ExportAudit:
    """One audited export decision."""

    aggregator: str
    kind: str
    allowed: bool
    degraded: bool
    detail: str


class PrivacyGuard:
    """Applies a :class:`PrivacyPolicy` to outgoing summaries."""

    def __init__(self, policy: PrivacyPolicy) -> None:
        self.policy = policy
        self.audit_log: List[ExportAudit] = []
        self._rng = random.Random(20190708)

    def export(self, aggregator: str, summary: DataSummary) -> DataSummary:
        """Return the privacy-degraded view of ``summary``.

        Raises :class:`PrivacyViolation` when the aggregator's data may
        not be shared at all.  The original summary is never mutated.
        """
        rule = self.policy.rule_for(aggregator)
        if not rule.shareable:
            self.audit_log.append(
                ExportAudit(aggregator, summary.kind, False, False,
                            "blocked by policy")
            )
            raise PrivacyViolation(
                f"summaries of aggregator {aggregator!r} may not be shared"
            )
        degraded, detail = self._degrade(summary, rule)
        self.audit_log.append(
            ExportAudit(
                aggregator, summary.kind, True, degraded is not summary,
                detail,
            )
        )
        return degraded

    # -- per-kind degradation ------------------------------------------------

    def _degrade(self, summary: DataSummary, rule: ExportRule):
        if summary.kind == "flowtree" and rule.min_ip_prefix is not None:
            return self._anonymize_flowtree(summary, rule.min_ip_prefix)
        if summary.kind == "timebin" and rule.min_bin_seconds is not None:
            return self._coarsen_timebin(summary, rule.min_bin_seconds)
        if summary.kind == "sample" and rule.max_sample_rate is not None:
            return self._thin_sample(summary, rule.max_sample_rate)
        return summary, "no degradation required"

    def _anonymize_flowtree(self, summary: DataSummary, max_prefix: int):
        """Compress the tree up to the depth where every IPv4 feature is
        at most ``max_prefix`` bits specific."""
        from repro.flows.features import IPv4Feature
        from repro.flows.tree import Flowtree

        tree: Flowtree = summary.payload
        ip_indices = [
            index
            for index, feature in enumerate(tree.schema.features)
            if isinstance(feature, IPv4Feature)
        ]
        allowed_depth = 0
        for depth, vector in enumerate(tree.policy.level_vectors):
            if all(vector[i] <= max_prefix for i in ip_indices):
                allowed_depth = depth
        anonymized = Flowtree(
            tree.policy, node_budget=None, metric=tree.metric
        )
        for node in sorted(tree.nodes(), key=lambda n: n.depth):
            depth = min(node.depth, allowed_depth)
            contribution = node.own + node.folded
            if contribution.is_zero():
                continue
            key = tree.policy.key_at(tree.key_of(node), depth)
            anonymized.add(key, contribution)
        degraded = DataSummary(
            kind=summary.kind,
            meta=summary.meta,
            payload=anonymized,
            size_bytes=anonymized.estimated_size_bytes(),
            attrs=dict(summary.attrs, anonymized_to_prefix=max_prefix),
        )
        return degraded, f"IPs truncated to /{max_prefix}"

    def _coarsen_timebin(self, summary: DataSummary, min_width: float):
        from repro.core.timebin import BinStats

        current = summary.attrs["bin_seconds"]
        if current >= min_width:
            return summary, "bins already coarse enough"
        factor = max(1, int(round(min_width / current)))
        width = current * factor
        merged: Dict[float, BinStats] = {}
        for bin_start, stats in summary.payload.items():
            slot = (bin_start // width) * width
            target = merged.setdefault(slot, BinStats())
            target.merge(stats, self._rng, reservoir_size=32)
        degraded = DataSummary(
            kind=summary.kind,
            meta=summary.meta,
            payload=dict(sorted(merged.items())),
            size_bytes=48 * len(merged),
            attrs=dict(summary.attrs, bin_seconds=width),
        )
        return degraded, f"bins widened to {width:g} s"

    def _thin_sample(self, summary: DataSummary, max_rate: float):
        rate = summary.attrs["rate"]
        if rate <= max_rate:
            return summary, "sample already sparse enough"
        keep = max_rate / rate
        points = [p for p in summary.payload if self._rng.random() < keep]
        degraded = DataSummary(
            kind=summary.kind,
            meta=summary.meta,
            payload=points,
            size_bytes=16 * len(points),
            attrs=dict(summary.attrs, rate=max_rate),
        )
        return degraded, f"sample thinned to rate {max_rate:g}"


@dataclass(frozen=True)
class AuthorizationContext:
    """Who is talking to the manager (Section III.C's last clause).

    The manager-facing API surfaces accept a context; ``require`` is the
    single enforcement point so tests can cover the policy once.
    """

    principal: str
    roles: frozenset = frozenset()

    def require(self, role: str) -> None:
        """Raise unless the principal holds ``role``."""
        if role not in self.roles:
            raise PrivacyViolation(
                f"principal {self.principal!r} lacks role {role!r}"
            )

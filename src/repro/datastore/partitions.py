"""Partitions: the unit of storage, query, and replication.

Section VII: "the data maintained by a data store can be partitioned to
allow partial replication."  In this library one partition is one epoch
summary from one aggregator.  The catalog records every access (when,
and how many result bytes it produced) because that history is exactly
what the manager's replication predictor consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.summary import DataSummary
from repro.errors import PartitionNotFoundError

_partition_counter = itertools.count(1)


@dataclass(frozen=True)
class PartitionAccess:
    """One read of a partition."""

    time: float
    result_bytes: int
    remote: bool


@dataclass
class Partition:
    """One stored summary plus its access history."""

    partition_id: str
    aggregator: str
    summary: DataSummary
    created_at: float
    accesses: List[PartitionAccess] = field(default_factory=list)
    replicated_to: List[str] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """The partition's storage footprint."""
        return self.summary.size_bytes

    def record_access(
        self, time: float, result_bytes: int, remote: bool
    ) -> None:
        """Log one read."""
        self.accesses.append(PartitionAccess(time, result_bytes, remote))

    def remote_bytes_served(self) -> int:
        """Total result bytes shipped to remote stores so far —
        the 'rent paid' in ski-rental terms."""
        return sum(a.result_bytes for a in self.accesses if a.remote)

    def remote_access_count(self) -> int:
        """Number of remote reads so far."""
        return sum(1 for a in self.accesses if a.remote)

    @staticmethod
    def fresh_id(aggregator: str) -> str:
        """Generate a unique partition id."""
        return f"{aggregator}#{next(_partition_counter):06d}"


class PartitionCatalog:
    """All partitions held by one data store, in creation order."""

    def __init__(self) -> None:
        self._partitions: Dict[str, Partition] = {}
        self._order: List[str] = []

    def add(self, partition: Partition) -> None:
        """Register a new partition."""
        self._partitions[partition.partition_id] = partition
        self._order.append(partition.partition_id)

    def remove(self, partition_id: str) -> Partition:
        """Drop a partition (storage eviction or re-aggregation)."""
        partition = self.get(partition_id)
        del self._partitions[partition_id]
        self._order.remove(partition_id)
        return partition

    def get(self, partition_id: str) -> Partition:
        """Fetch one partition by id."""
        try:
            return self._partitions[partition_id]
        except KeyError as exc:
            raise PartitionNotFoundError(
                f"unknown partition {partition_id!r}"
            ) from exc

    def __contains__(self, partition_id: str) -> bool:
        return partition_id in self._partitions

    def __len__(self) -> int:
        return len(self._partitions)

    def all(self) -> List[Partition]:
        """Partitions oldest-first (by ``created_at``, then insertion).

        Compacted partitions inherit the oldest input's ``created_at``,
        so they stay at the front of the round-robin queue rather than
        being treated as fresh data.
        """
        order_index = {pid: i for i, pid in enumerate(self._order)}
        return sorted(
            self._partitions.values(),
            key=lambda p: (p.created_at, order_index[p.partition_id]),
        )

    def for_aggregator(self, aggregator: str) -> List[Partition]:
        """Partitions produced by one aggregator, oldest first."""
        return [p for p in self.all() if p.aggregator == aggregator]

    def in_interval(
        self,
        aggregator: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Partition]:
        """Partitions of one aggregator overlapping a time window."""
        selected = []
        for partition in self.for_aggregator(aggregator):
            interval = partition.summary.meta.interval
            if start is not None and interval.end <= start:
                continue
            if end is not None and interval.start >= end:
                continue
            selected.append(partition)
        return selected

    def total_bytes(self) -> int:
        """Total storage footprint."""
        return sum(p.size_bytes for p in self._partitions.values())

"""The three storage strategies of Section IV.

    "(1) storage with predefined expiration, (2) storage using a
    round-robin mechanism, and (3) storage using a round-robin mechanism
    and hierarchical aggregation."

A strategy decides what happens when partitions accumulate: expire them
by age, evict oldest-first against a byte budget, or re-aggregate the
oldest partitions to a coarser granularity so long-term history survives
with a smaller footprint.  The data store is the *only* component that
persists data — an evicted partition is gone for good — so eviction
decisions are surfaced to the caller for accounting.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.datastore.partitions import Partition, PartitionCatalog
from repro.datastore.recombine import combine_summaries
from repro.errors import StorageError


class StorageStrategy(abc.ABC):
    """Decides retention for a data store's partition catalog."""

    @abc.abstractmethod
    def admit(
        self, partition: Partition, catalog: PartitionCatalog, now: float
    ) -> List[Partition]:
        """Add a partition, returning any partitions evicted to make room."""

    @abc.abstractmethod
    def maintain(self, catalog: PartitionCatalog, now: float) -> List[Partition]:
        """Periodic upkeep (age-based purging); returns evictions."""

    def pressure(self, catalog: PartitionCatalog) -> float:
        """Storage pressure in [0, 1] for primitive self-adaptation."""
        return 0.0


class ExpirationStorage(StorageStrategy):
    """Strategy 1: partitions live for a fixed time, then expire.

    Gives applications a retention guarantee; the paper notes the
    difficulty is choosing the period well in advance — storage use is
    unbounded if the data rate grows.
    """

    def __init__(self, ttl_seconds: float) -> None:
        if ttl_seconds <= 0:
            raise StorageError(f"ttl must be positive, got {ttl_seconds}")
        self.ttl_seconds = ttl_seconds

    def admit(
        self, partition: Partition, catalog: PartitionCatalog, now: float
    ) -> List[Partition]:
        catalog.add(partition)
        return self.maintain(catalog, now)

    def maintain(self, catalog: PartitionCatalog, now: float) -> List[Partition]:
        expired = [
            p for p in catalog.all() if now - p.created_at >= self.ttl_seconds
        ]
        for partition in expired:
            catalog.remove(partition.partition_id)
        return expired


class RoundRobinStorage(StorageStrategy):
    """Strategy 2: fully utilize a byte budget, evicting oldest first.

    Retention duration floats with the data rate — fast streams overwrite
    history sooner.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise StorageError(f"budget must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes

    def admit(
        self, partition: Partition, catalog: PartitionCatalog, now: float
    ) -> List[Partition]:
        catalog.add(partition)
        evicted: List[Partition] = []
        while catalog.total_bytes() > self.budget_bytes and len(catalog) > 1:
            oldest = catalog.all()[0]
            catalog.remove(oldest.partition_id)
            evicted.append(oldest)
        return evicted

    def maintain(self, catalog: PartitionCatalog, now: float) -> List[Partition]:
        return []

    def pressure(self, catalog: PartitionCatalog) -> float:
        return min(1.0, catalog.total_bytes() / self.budget_bytes)


class HierarchicalStorage(StorageStrategy):
    """Strategy 3: round-robin plus hierarchical re-aggregation.

    Over budget, the oldest ``merge_group`` same-aggregator partitions
    are combined into one summary at ``shrink`` times their joint
    footprint.  History is never dropped outright until re-aggregation
    can no longer shrink it (the compacted partition is itself eligible
    for further compaction later — detail decays with age, the paper's
    "long-term storage but at the price of reduced detail").
    """

    def __init__(
        self,
        budget_bytes: int,
        merge_group: int = 4,
        shrink: float = 0.5,
        max_rounds: int = 32,
    ) -> None:
        if budget_bytes <= 0:
            raise StorageError(f"budget must be positive, got {budget_bytes}")
        if merge_group < 2:
            raise StorageError(f"merge group must be >= 2, got {merge_group}")
        if not 0.0 < shrink < 1.0:
            raise StorageError(f"shrink must be in (0, 1), got {shrink}")
        self.budget_bytes = budget_bytes
        self.merge_group = merge_group
        self.shrink = shrink
        self.max_rounds = max_rounds
        self.compactions = 0

    def admit(
        self, partition: Partition, catalog: PartitionCatalog, now: float
    ) -> List[Partition]:
        catalog.add(partition)
        return self._compact(catalog, now)

    def maintain(self, catalog: PartitionCatalog, now: float) -> List[Partition]:
        return self._compact(catalog, now)

    def _oldest_group(
        self, catalog: PartitionCatalog
    ) -> Optional[List[Partition]]:
        """The oldest run of >= 2 partitions sharing an aggregator."""
        for partition in catalog.all():
            group = catalog.for_aggregator(partition.aggregator)[
                : self.merge_group
            ]
            if len(group) >= 2:
                return group
        return None

    def _compact(self, catalog: PartitionCatalog, now: float) -> List[Partition]:
        evicted: List[Partition] = []
        rounds = 0
        while catalog.total_bytes() > self.budget_bytes and rounds < self.max_rounds:
            rounds += 1
            group = self._oldest_group(catalog)
            if group is None:
                # nothing left to merge: degrade to round-robin eviction
                if len(catalog) <= 1:
                    break
                oldest = catalog.all()[0]
                catalog.remove(oldest.partition_id)
                evicted.append(oldest)
                continue
            combined = combine_summaries(
                [p.summary for p in group], shrink=self.shrink
            )
            accesses = []
            for partition in group:
                catalog.remove(partition.partition_id)
                accesses.extend(partition.accesses)
            compacted = Partition(
                partition_id=Partition.fresh_id(group[0].aggregator),
                aggregator=group[0].aggregator,
                summary=combined,
                created_at=group[0].created_at,
                accesses=accesses,
            )
            catalog.add(compacted)
            self.compactions += 1
        return evicted

    def pressure(self, catalog: PartitionCatalog) -> float:
        return min(1.0, catalog.total_bytes() / self.budget_bytes)
